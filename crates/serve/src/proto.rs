//! Typed request/response messages and their JSON object codec.
//!
//! One frame ([`crate::wire`]) carries one flat JSON object, reusing the
//! `dda_obs::event` codec (the same escaping/parsing the trace files
//! use, already cross-checked byte-for-byte against `dda_core::json`).
//! Requests use the verb as the `"ev"` kind:
//!
//! ```json
//! {"ev": "score", "id": 7, "priority": "high", "deadline_ms": 2000,
//!  "source": "module simple_wire(...); ... endmodule", "problem": "simple_wire"}
//! ```
//!
//! Responses are `"ev": "response"` objects echoing the request id and
//! verb with a `status` of `"ok"` or `"error"`; errors carry a stable
//! machine-readable `code` (see [`ErrorCode`]) plus a human message:
//!
//! ```json
//! {"ev": "response", "id": 7, "verb": "score", "status": "ok",
//!  "verdict": "scored", "pass_rate": 1}
//! {"ev": "response", "id": 9, "verb": "augment", "status": "error",
//!  "code": "overloaded", "message": "pool queue full (64 jobs queued)"}
//! ```
//!
//! Decoding is strict where it matters (unknown verbs, missing required
//! fields, wrong field types are [`ProtoError`]s that become structured
//! `bad_request` responses, never panics) and lenient where it helps
//! (unknown *extra* fields are ignored, so the protocol can grow).

use dda_obs::event::{encode, parse, Event, Value};
use dda_runtime::Priority;

/// Ceiling on the simulator deadline a request may ask for, so one
/// request cannot park a worker for minutes (`deadline_ms` is clamped to
/// this at decode time).
pub const MAX_DEADLINE_MS: u64 = 60_000;

/// Ceiling on the hit count a `retrieve` request may ask for (`k` is
/// clamped to this at decode time, and zero means 1).
pub const MAX_RETRIEVE_K: u64 = 64;

/// Ceiling on the candidate chains an `agent` request may ask for (`k`
/// is clamped to this at decode time, and zero means 1).
pub const MAX_AGENT_K: u64 = 16;

/// Ceiling on the tool-feedback rounds an `agent` request may ask for
/// (`rounds` is clamped to this at decode time).
pub const MAX_AGENT_ROUNDS: u64 = 8;

/// Default chains per `agent` request (the paper's pass@5 protocol).
pub const DEFAULT_AGENT_K: u64 = 5;

/// Default tool-feedback round budget per `agent` chain.
pub const DEFAULT_AGENT_ROUNDS: u64 = 3;

/// Default prompt detail level for `agent` requests (the most detailed
/// of the three levels each benchmark problem carries).
pub const DEFAULT_AGENT_LEVEL: u64 = 2;

/// Default `agent` sampling seed (matches `dda_eval::AgentProtocol`).
pub const DEFAULT_AGENT_SEED: u64 = 7331;

/// The work a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum ReqBody {
    /// Liveness probe; answered inline, bypassing admission control.
    Ping,
    /// Service/cache/pool counters; answered inline.
    Stats,
    /// Liveness + provenance probe: uptime, supervisor generation,
    /// replay count, failpoint build flavor. Answered inline.
    Health,
    /// Readiness probe: whether the daemon is accepting data-plane work
    /// (journal replay submitted, not draining). Answered inline.
    Ready,
    /// Begin graceful drain; answered inline, then the daemon stops
    /// accepting, finishes admitted work, and exits.
    Shutdown,
    /// Run the augmentation pipeline over one Verilog module.
    Augment {
        /// Module (file-stem) name, used in diagnostics and repair pairs.
        name: String,
        /// Verilog source text.
        source: String,
        /// Pipeline RNG seed.
        seed: u64,
    },
    /// Sample the service's SLM.
    Generate {
        /// Instruction (defaults to the NL→Verilog alignment instruct).
        instruct: String,
        /// Prompt / input text.
        prompt: String,
        /// Sampling temperature.
        temperature: f64,
        /// Sampling seed.
        seed: u64,
    },
    /// Lint-guided repair search on a broken module.
    Repair {
        /// Module name (for diagnostics).
        name: String,
        /// Broken source.
        source: String,
        /// Checker-call budget.
        budget: u64,
    },
    /// Score a candidate against a named benchmark problem's testbench,
    /// or against an inline testbench.
    Score {
        /// Candidate module source.
        source: String,
        /// Benchmark problem id (`thakur`/`rtllm` suites); mutually
        /// exclusive with `testbench`.
        problem: Option<String>,
        /// Inline self-checking testbench (prints `RESULT <pass> <total>`).
        testbench: Option<String>,
        /// Top module of the inline testbench (default `tb`).
        top: String,
        /// Simulation lanes to score in one batched run (default 1 =
        /// scalar scoring; clamped to [`dda_sim::MAX_BATCH_LANES`] at
        /// decode time). Lane results are bit-identical to scalar runs;
        /// the field exists to exercise and benchmark the batch engine
        /// through the daemon.
        runs: u64,
    },
    /// K-nearest corpus modules for a free-text query, from the resident
    /// sharded retrieval index (RAG candidates for few-shot prompting).
    Retrieve {
        /// Free-text query (a description, an interface, a broken file).
        query: String,
        /// How many hits to return (clamped to [`MAX_RETRIEVE_K`] at
        /// decode time).
        k: u64,
    },
    /// Run a pass@k tool-in-the-loop agent batch against a named
    /// benchmark problem: k candidate chains of generate → lint →
    /// simulate → feed-diagnostics → repair on the supervised engine
    /// (see `dda_eval::agent_batch`).
    Agent {
        /// Benchmark problem id (`thakur`/`rtllm` suites).
        problem: String,
        /// Prompt detail level (default [`DEFAULT_AGENT_LEVEL`]).
        level: u64,
        /// Candidate chains (clamped to [`MAX_AGENT_K`]).
        k: u64,
        /// Tool-feedback rounds per chain after the first draft (clamped
        /// to [`MAX_AGENT_ROUNDS`]).
        rounds: u64,
        /// Commit the lowest-indexed passing chain early and cancel the
        /// chains above it (default off = every chain runs).
        early_exit: bool,
        /// Few-shot context documents pulled from the resident retrieval
        /// index into each chain's repair prompts (0 = no RAG).
        rag_k: u64,
        /// Lockstep lanes per candidate scoring (default 1 = scalar;
        /// clamped to [`dda_sim::MAX_BATCH_LANES`]).
        runs: u64,
        /// Chain RNG seed (default [`DEFAULT_AGENT_SEED`]).
        seed: u64,
    },
    /// Deliberately panics the worker. Only honored when the service was
    /// started with fault injection enabled (chaos tests / storm bench);
    /// otherwise a `bad_request` error.
    Poison,
}

impl ReqBody {
    /// The wire verb for this body.
    pub fn verb(&self) -> &'static str {
        match self {
            ReqBody::Ping => "ping",
            ReqBody::Stats => "stats",
            ReqBody::Health => "health",
            ReqBody::Ready => "ready",
            ReqBody::Shutdown => "shutdown",
            ReqBody::Augment { .. } => "augment",
            ReqBody::Generate { .. } => "generate",
            ReqBody::Repair { .. } => "repair",
            ReqBody::Score { .. } => "score",
            ReqBody::Retrieve { .. } => "retrieve",
            ReqBody::Agent { .. } => "agent",
            ReqBody::Poison => "poison",
        }
    }

    /// Whether the service answers this verb inline on the connection
    /// thread (control plane) rather than queueing it (data plane). The
    /// control plane stays responsive under overload by construction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            ReqBody::Ping | ReqBody::Stats | ReqBody::Health | ReqBody::Ready | ReqBody::Shutdown
        )
    }
}

/// One request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Scheduling class (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Wall-clock budget in milliseconds, measured from admission
    /// (`None` = the service default). Clamped to [`MAX_DEADLINE_MS`].
    pub deadline_ms: Option<u64>,
    /// The work itself.
    pub body: ReqBody,
}

/// Machine-readable failure class on an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The bounded queue was full; the request was shed, not queued.
    /// Back off and retry.
    Overloaded,
    /// The request was malformed (unknown verb, missing field, bad type,
    /// unknown problem id, ...).
    BadRequest,
    /// The request's wall-clock deadline expired (in queue or mid-work).
    Deadline,
    /// The handler panicked; the panic was isolated and the daemon lives.
    Panic,
    /// The daemon is draining and no longer admits data-plane work.
    Shutdown,
}

impl ErrorCode {
    /// Stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Panic => "panic",
            ErrorCode::Shutdown => "shutdown",
        }
    }

    fn from_str(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "overloaded" => ErrorCode::Overloaded,
            "bad_request" => ErrorCode::BadRequest,
            "deadline" => ErrorCode::Deadline,
            "panic" => ErrorCode::Panic,
            "shutdown" => ErrorCode::Shutdown,
            _ => return None,
        })
    }
}

/// Service/cache/pool counters returned by a `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsBody {
    /// Requests admitted to the queue since startup.
    pub admitted: u64,
    /// Data-plane requests answered successfully.
    pub completed: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests that died to their deadline.
    pub timed_out: u64,
    /// Handler panics isolated.
    pub panics: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Design-cache hits (both tiers).
    pub cache_hits: u64,
    /// Design-cache frontend computes.
    pub cache_misses: u64,
    /// Design-cache evictions from the global tier.
    pub cache_evictions: u64,
    /// Designs resident in the global cache tier.
    pub cache_resident: u64,
    /// Admitted-but-unstarted jobs discarded by a crash-stop
    /// ([`crate::service::Server::abort`] / an escaped dispatch panic).
    /// Their requests sit unanswered in the journal until replay.
    pub dropped: u64,
    /// Journaled requests re-executed by startup replay this generation.
    pub replayed: u64,
}

/// Response payloads, one per verb (plus the error case).
#[derive(Debug, Clone, PartialEq)]
pub enum RespBody {
    /// `ping` answer.
    Pong,
    /// `stats` answer.
    Stats(StatsBody),
    /// `shutdown` acknowledged; drain begins.
    ShuttingDown,
    /// `health` answer.
    Health {
        /// Milliseconds since this service generation started.
        uptime_ms: u64,
        /// Supervisor restart generation (0 = first start).
        generation: u64,
        /// Journaled requests replayed when this generation started.
        replayed: u64,
        /// Whether the daemon was built with `dda-fail` failpoints.
        failpoints: bool,
    },
    /// `ready` answer.
    Ready {
        /// Whether data-plane work is being accepted (startup replay
        /// fully submitted and not draining/crashed).
        ready: bool,
    },
    /// `augment` result.
    Augmented {
        /// Dataset entries produced.
        entries: u64,
        /// Units quarantined by the pipeline's panic isolation.
        quarantined: u64,
        /// The entries as JSONL (one `{"instruct", "input", "output"}`
        /// object per line).
        jsonl: String,
    },
    /// `generate` result.
    Generated {
        /// Sampled output.
        output: String,
    },
    /// `repair` result.
    Repaired {
        /// Best source found.
        source: String,
        /// Whether it lints clean.
        clean: bool,
        /// Checker calls spent.
        cost: u64,
    },
    /// `score` result.
    Scored {
        /// Verdict class: `scored`, `parse_error`, `elab_error`,
        /// `timeout`, or `crash`.
        verdict: String,
        /// Functional pass rate in `[0, 1]` (zero for failure verdicts).
        pass_rate: f64,
        /// Failure detail (empty for `scored`).
        detail: String,
        /// Simulation lanes actually scored (1 for scalar runs; echoes a
        /// batched request's `runs`).
        lanes: u64,
    },
    /// `retrieve` result.
    Retrieved {
        /// Hits returned (may be fewer than the requested `k`).
        count: u64,
        /// The hits as JSONL (one `{"id", "score", "name", "source"}`
        /// object per line, best first).
        jsonl: String,
    },
    /// `agent` result.
    AgentReport {
        /// Whether any chain passed the problem's testbench.
        passed: bool,
        /// Lowest-indexed passing chain, when one exists.
        winner: Option<u64>,
        /// Chains run (echoes the request's clamped `k`).
        chains: u64,
        /// Tool-feedback rounds summed over the committed chains — the
        /// batch's deterministic work measure.
        rounds_total: u64,
        /// Chains lost to panics or per-chain deadline trips (0 on a
        /// healthy run; omitted from the wire when 0).
        quarantined: u64,
        /// Per-chain detail as JSONL (one `{"chain", "rounds", "lint",
        /// "function", "repaired", "cancelled"}` object per line, in
        /// chain order).
        jsonl: String,
    },
    /// Any verb's failure.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One response frame: the echoed id/verb plus the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Correlation id echoed from the request (0 when the request was so
    /// malformed no id could be recovered).
    pub id: u64,
    /// Echoed verb (`"?"` when unrecoverable).
    pub verb: String,
    /// Payload.
    pub body: RespBody,
}

/// A decode failure; the service turns this into a `bad_request` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtoError {}

fn bad(message: impl Into<String>) -> ProtoError {
    ProtoError {
        message: message.into(),
    }
}

fn req_str(ev: &Event, name: &str) -> Result<String, ProtoError> {
    match ev.field(name) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(bad(format!("field `{name}` must be a string"))),
        None => Err(bad(format!("missing field `{name}`"))),
    }
}

fn opt_str(ev: &Event, name: &str) -> Result<Option<String>, ProtoError> {
    match ev.field(name) {
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(bad(format!("field `{name}` must be a string"))),
        None => Ok(None),
    }
}

fn opt_u64(ev: &Event, name: &str) -> Result<Option<u64>, ProtoError> {
    match ev.field(name) {
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("field `{name}` must be a non-negative integer"))),
        None => Ok(None),
    }
}

fn opt_f64(ev: &Event, name: &str) -> Result<Option<f64>, ProtoError> {
    match ev.field(name) {
        Some(Value::F64(v)) => Ok(Some(*v)),
        Some(Value::U64(v)) => Ok(Some(*v as f64)),
        Some(Value::I64(v)) => Ok(Some(*v as f64)),
        Some(_) => Err(bad(format!("field `{name}` must be a number"))),
        None => Ok(None),
    }
}

impl Request {
    /// Encodes to one JSON line (the frame payload).
    pub fn to_line(&self) -> String {
        let mut ev = Event::new(self.body.verb()).u64("id", self.id);
        if self.priority == Priority::High {
            ev = ev.str("priority", "high");
        }
        if let Some(ms) = self.deadline_ms {
            ev = ev.u64("deadline_ms", ms);
        }
        ev = match &self.body {
            ReqBody::Ping
            | ReqBody::Stats
            | ReqBody::Health
            | ReqBody::Ready
            | ReqBody::Shutdown
            | ReqBody::Poison => ev,
            ReqBody::Augment { name, source, seed } => ev
                .str("name", name.clone())
                .str("source", source.clone())
                .u64("seed", *seed),
            ReqBody::Generate {
                instruct,
                prompt,
                temperature,
                seed,
            } => ev
                .str("instruct", instruct.clone())
                .str("prompt", prompt.clone())
                .f64("temperature", *temperature)
                .u64("seed", *seed),
            ReqBody::Repair {
                name,
                source,
                budget,
            } => ev
                .str("name", name.clone())
                .str("source", source.clone())
                .u64("budget", *budget),
            ReqBody::Score {
                source,
                problem,
                testbench,
                top,
                runs,
            } => {
                let mut ev = ev.str("source", source.clone());
                if let Some(p) = problem {
                    ev = ev.str("problem", p.clone());
                }
                if let Some(t) = testbench {
                    ev = ev.str("testbench", t.clone());
                }
                // `runs: 1` stays off the wire so pre-batch frames (and
                // their goldens) are byte-identical.
                if *runs != 1 {
                    ev = ev.u64("runs", *runs);
                }
                ev.str("top", top.clone())
            }
            ReqBody::Retrieve { query, k } => ev.str("query", query.clone()).u64("k", *k),
            ReqBody::Agent {
                problem,
                level,
                k,
                rounds,
                early_exit,
                rag_k,
                runs,
                seed,
            } => {
                // Default-valued knobs stay off the wire so the common
                // frame (paper protocol, no RAG, scalar scoring) is
                // minimal and byte-stable.
                let mut ev = ev.str("problem", problem.clone());
                if *level != DEFAULT_AGENT_LEVEL {
                    ev = ev.u64("level", *level);
                }
                if *k != DEFAULT_AGENT_K {
                    ev = ev.u64("k", *k);
                }
                if *rounds != DEFAULT_AGENT_ROUNDS {
                    ev = ev.u64("rounds", *rounds);
                }
                if *early_exit {
                    ev = ev.bool("early_exit", true);
                }
                if *rag_k != 0 {
                    ev = ev.u64("rag_k", *rag_k);
                }
                if *runs != 1 {
                    ev = ev.u64("runs", *runs);
                }
                if *seed != DEFAULT_AGENT_SEED {
                    ev = ev.u64("seed", *seed);
                }
                ev
            }
        };
        encode(&ev)
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for malformed JSON, unknown verbs, missing or
    /// mistyped fields — the caller answers with `bad_request`.
    pub fn from_line(line: &str) -> Result<Request, ProtoError> {
        let ev = parse(line).ok_or_else(|| bad("invalid JSON object"))?;
        let id = opt_u64(&ev, "id")?.ok_or_else(|| bad("missing field `id`"))?;
        let priority = match opt_str(&ev, "priority")?.as_deref() {
            None | Some("normal") => Priority::Normal,
            Some("high") => Priority::High,
            Some(other) => return Err(bad(format!("unknown priority `{other}`"))),
        };
        let deadline_ms = opt_u64(&ev, "deadline_ms")?.map(|ms| ms.min(MAX_DEADLINE_MS));
        let body = match ev.kind.as_str() {
            "ping" => ReqBody::Ping,
            "stats" => ReqBody::Stats,
            "health" => ReqBody::Health,
            "ready" => ReqBody::Ready,
            "shutdown" => ReqBody::Shutdown,
            "poison" => ReqBody::Poison,
            "augment" => ReqBody::Augment {
                name: req_str(&ev, "name")?,
                source: req_str(&ev, "source")?,
                seed: opt_u64(&ev, "seed")?.unwrap_or(2024),
            },
            "generate" => ReqBody::Generate {
                instruct: opt_str(&ev, "instruct")?
                    .unwrap_or_else(|| dda_core::align::ALIGN_INSTRUCT.to_string()),
                prompt: req_str(&ev, "prompt")?,
                temperature: opt_f64(&ev, "temperature")?.unwrap_or(0.1),
                seed: opt_u64(&ev, "seed")?.unwrap_or(99),
            },
            "repair" => ReqBody::Repair {
                name: opt_str(&ev, "name")?.unwrap_or_else(|| "broken".to_string()),
                source: req_str(&ev, "source")?,
                budget: opt_u64(&ev, "budget")?.unwrap_or(200),
            },
            "score" => {
                let problem = opt_str(&ev, "problem")?;
                let testbench = opt_str(&ev, "testbench")?;
                if problem.is_some() == testbench.is_some() {
                    return Err(bad("score needs exactly one of `problem` or `testbench`"));
                }
                ReqBody::Score {
                    source: req_str(&ev, "source")?,
                    problem,
                    testbench,
                    top: opt_str(&ev, "top")?.unwrap_or_else(|| "tb".to_string()),
                    runs: opt_u64(&ev, "runs")?
                        .unwrap_or(1)
                        .clamp(1, dda_sim::MAX_BATCH_LANES as u64),
                }
            }
            "retrieve" => ReqBody::Retrieve {
                query: req_str(&ev, "query")?,
                k: opt_u64(&ev, "k")?.unwrap_or(5).clamp(1, MAX_RETRIEVE_K),
            },
            "agent" => ReqBody::Agent {
                problem: req_str(&ev, "problem")?,
                level: opt_u64(&ev, "level")?.unwrap_or(DEFAULT_AGENT_LEVEL),
                k: opt_u64(&ev, "k")?
                    .unwrap_or(DEFAULT_AGENT_K)
                    .clamp(1, MAX_AGENT_K),
                rounds: opt_u64(&ev, "rounds")?
                    .unwrap_or(DEFAULT_AGENT_ROUNDS)
                    .min(MAX_AGENT_ROUNDS),
                early_exit: matches!(ev.field("early_exit"), Some(Value::Bool(true))),
                rag_k: opt_u64(&ev, "rag_k")?.unwrap_or(0).min(MAX_RETRIEVE_K),
                runs: opt_u64(&ev, "runs")?
                    .unwrap_or(1)
                    .clamp(1, dda_sim::MAX_BATCH_LANES as u64),
                seed: opt_u64(&ev, "seed")?.unwrap_or(DEFAULT_AGENT_SEED),
            },
            other => return Err(bad(format!("unknown verb `{other}`"))),
        };
        Ok(Request {
            id,
            priority,
            deadline_ms,
            body,
        })
    }
}

impl Response {
    /// Convenience constructor for an error response.
    pub fn error(
        id: u64,
        verb: impl Into<String>,
        code: ErrorCode,
        message: impl Into<String>,
    ) -> Response {
        Response {
            id,
            verb: verb.into(),
            body: RespBody::Error {
                code,
                message: message.into(),
            },
        }
    }

    /// Encodes to one JSON line (the frame payload).
    pub fn to_line(&self) -> String {
        let ev = Event::new("response")
            .u64("id", self.id)
            .str("verb", self.verb.clone());
        let ev = match &self.body {
            RespBody::Error { code, message } => ev
                .str("status", "error")
                .str("code", code.as_str())
                .str("message", message.clone()),
            ok => {
                let ev = ev.str("status", "ok");
                match ok {
                    RespBody::Pong | RespBody::ShuttingDown => ev,
                    RespBody::Stats(s) => ev
                        .u64("admitted", s.admitted)
                        .u64("completed", s.completed)
                        .u64("shed", s.shed)
                        .u64("timed_out", s.timed_out)
                        .u64("panics", s.panics)
                        .u64("queue_depth", s.queue_depth)
                        .u64("cache_hits", s.cache_hits)
                        .u64("cache_misses", s.cache_misses)
                        .u64("cache_evictions", s.cache_evictions)
                        .u64("cache_resident", s.cache_resident)
                        .u64("dropped", s.dropped)
                        .u64("replayed", s.replayed),
                    RespBody::Health {
                        uptime_ms,
                        generation,
                        replayed,
                        failpoints,
                    } => ev
                        .u64("uptime_ms", *uptime_ms)
                        .u64("generation", *generation)
                        .u64("replayed", *replayed)
                        .bool("failpoints", *failpoints),
                    RespBody::Ready { ready } => ev.bool("ready", *ready),
                    RespBody::Augmented {
                        entries,
                        quarantined,
                        jsonl,
                    } => ev
                        .u64("entries", *entries)
                        .u64("quarantined", *quarantined)
                        .str("jsonl", jsonl.clone()),
                    RespBody::Generated { output } => ev.str("output", output.clone()),
                    RespBody::Repaired {
                        source,
                        clean,
                        cost,
                    } => ev
                        .str("source", source.clone())
                        .bool("clean", *clean)
                        .u64("cost", *cost),
                    RespBody::Scored {
                        verdict,
                        pass_rate,
                        detail,
                        lanes,
                    } => {
                        let ev = ev
                            .str("verdict", verdict.clone())
                            .f64("pass_rate", *pass_rate)
                            .str("detail", detail.clone());
                        if *lanes != 1 {
                            ev.u64("lanes", *lanes)
                        } else {
                            ev
                        }
                    }
                    RespBody::Retrieved { count, jsonl } => {
                        ev.u64("count", *count).str("jsonl", jsonl.clone())
                    }
                    RespBody::AgentReport {
                        passed,
                        winner,
                        chains,
                        rounds_total,
                        quarantined,
                        jsonl,
                    } => {
                        let mut ev = ev.bool("passed", *passed);
                        if let Some(w) = winner {
                            ev = ev.u64("winner", *w);
                        }
                        ev = ev.u64("chains", *chains).u64("rounds_total", *rounds_total);
                        if *quarantined != 0 {
                            ev = ev.u64("quarantined", *quarantined);
                        }
                        ev.str("jsonl", jsonl.clone())
                    }
                    RespBody::Error { .. } => unreachable!("handled above"),
                }
            }
        };
        encode(&ev)
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for anything that is not a well-formed response
    /// object.
    pub fn from_line(line: &str) -> Result<Response, ProtoError> {
        let ev = parse(line).ok_or_else(|| bad("invalid JSON object"))?;
        if ev.kind != "response" {
            return Err(bad(format!("expected a response, got `{}`", ev.kind)));
        }
        let id = opt_u64(&ev, "id")?.ok_or_else(|| bad("missing field `id`"))?;
        let verb = req_str(&ev, "verb")?;
        let status = req_str(&ev, "status")?;
        let body = match status.as_str() {
            "error" => {
                let code_s = req_str(&ev, "code")?;
                RespBody::Error {
                    code: ErrorCode::from_str(&code_s)
                        .ok_or_else(|| bad(format!("unknown error code `{code_s}`")))?,
                    message: req_str(&ev, "message")?,
                }
            }
            "ok" => match verb.as_str() {
                "ping" => RespBody::Pong,
                "shutdown" => RespBody::ShuttingDown,
                "stats" => RespBody::Stats(StatsBody {
                    admitted: opt_u64(&ev, "admitted")?.unwrap_or(0),
                    completed: opt_u64(&ev, "completed")?.unwrap_or(0),
                    shed: opt_u64(&ev, "shed")?.unwrap_or(0),
                    timed_out: opt_u64(&ev, "timed_out")?.unwrap_or(0),
                    panics: opt_u64(&ev, "panics")?.unwrap_or(0),
                    queue_depth: opt_u64(&ev, "queue_depth")?.unwrap_or(0),
                    cache_hits: opt_u64(&ev, "cache_hits")?.unwrap_or(0),
                    cache_misses: opt_u64(&ev, "cache_misses")?.unwrap_or(0),
                    cache_evictions: opt_u64(&ev, "cache_evictions")?.unwrap_or(0),
                    cache_resident: opt_u64(&ev, "cache_resident")?.unwrap_or(0),
                    dropped: opt_u64(&ev, "dropped")?.unwrap_or(0),
                    replayed: opt_u64(&ev, "replayed")?.unwrap_or(0),
                }),
                "health" => RespBody::Health {
                    uptime_ms: opt_u64(&ev, "uptime_ms")?.unwrap_or(0),
                    generation: opt_u64(&ev, "generation")?.unwrap_or(0),
                    replayed: opt_u64(&ev, "replayed")?.unwrap_or(0),
                    failpoints: matches!(ev.field("failpoints"), Some(Value::Bool(true))),
                },
                "ready" => RespBody::Ready {
                    ready: matches!(ev.field("ready"), Some(Value::Bool(true))),
                },
                "augment" => RespBody::Augmented {
                    entries: opt_u64(&ev, "entries")?.unwrap_or(0),
                    quarantined: opt_u64(&ev, "quarantined")?.unwrap_or(0),
                    jsonl: req_str(&ev, "jsonl")?,
                },
                "generate" => RespBody::Generated {
                    output: req_str(&ev, "output")?,
                },
                "repair" => RespBody::Repaired {
                    source: req_str(&ev, "source")?,
                    clean: matches!(ev.field("clean"), Some(Value::Bool(true))),
                    cost: opt_u64(&ev, "cost")?.unwrap_or(0),
                },
                "score" => RespBody::Scored {
                    verdict: req_str(&ev, "verdict")?,
                    pass_rate: opt_f64(&ev, "pass_rate")?.unwrap_or(0.0),
                    detail: opt_str(&ev, "detail")?.unwrap_or_default(),
                    lanes: opt_u64(&ev, "lanes")?.unwrap_or(1),
                },
                "retrieve" => RespBody::Retrieved {
                    count: opt_u64(&ev, "count")?.unwrap_or(0),
                    jsonl: req_str(&ev, "jsonl")?,
                },
                "agent" => RespBody::AgentReport {
                    passed: matches!(ev.field("passed"), Some(Value::Bool(true))),
                    winner: opt_u64(&ev, "winner")?,
                    chains: opt_u64(&ev, "chains")?.unwrap_or(0),
                    rounds_total: opt_u64(&ev, "rounds_total")?.unwrap_or(0),
                    quarantined: opt_u64(&ev, "quarantined")?.unwrap_or(0),
                    jsonl: req_str(&ev, "jsonl")?,
                },
                other => return Err(bad(format!("unknown response verb `{other}`"))),
            },
            other => return Err(bad(format!("unknown status `{other}`"))),
        };
        Ok(Response { id, verb, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request {
                id: 1,
                priority: Priority::Normal,
                deadline_ms: None,
                body: ReqBody::Ping,
            },
            Request {
                id: 2,
                priority: Priority::High,
                deadline_ms: Some(1500),
                body: ReqBody::Augment {
                    name: "ctr".into(),
                    source: "module ctr;\nendmodule\n".into(),
                    seed: 7,
                },
            },
            Request {
                id: 3,
                priority: Priority::Normal,
                deadline_ms: Some(10),
                body: ReqBody::Score {
                    source: "module m(input a, output b);\nassign b = a;\nendmodule".into(),
                    problem: Some("simple_wire".into()),
                    testbench: None,
                    top: "tb".into(),
                    runs: 1,
                },
            },
            Request {
                id: 4,
                priority: Priority::Normal,
                deadline_ms: None,
                body: ReqBody::Score {
                    source: "module m(input a, output b);\nassign b = a;\nendmodule".into(),
                    problem: Some("simple_wire".into()),
                    testbench: None,
                    top: "tb".into(),
                    runs: 8,
                },
            },
            Request {
                id: 5,
                priority: Priority::Normal,
                deadline_ms: Some(250),
                body: ReqBody::Retrieve {
                    query: "an eight bit counter with enable".into(),
                    k: 3,
                },
            },
            Request {
                id: 6,
                priority: Priority::Normal,
                deadline_ms: None,
                body: ReqBody::Agent {
                    problem: "simple_wire".into(),
                    level: DEFAULT_AGENT_LEVEL,
                    k: DEFAULT_AGENT_K,
                    rounds: DEFAULT_AGENT_ROUNDS,
                    early_exit: false,
                    rag_k: 0,
                    runs: 1,
                    seed: DEFAULT_AGENT_SEED,
                },
            },
            Request {
                id: 7,
                priority: Priority::High,
                deadline_ms: Some(5000),
                body: ReqBody::Agent {
                    problem: "counter".into(),
                    level: 1,
                    k: 3,
                    rounds: 2,
                    early_exit: true,
                    rag_k: 4,
                    runs: 8,
                    seed: 42,
                },
            },
        ];
        for r in reqs {
            let back = Request::from_line(&r.to_line()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response {
                id: 1,
                verb: "ping".into(),
                body: RespBody::Pong,
            },
            Response {
                id: 2,
                verb: "score".into(),
                body: RespBody::Scored {
                    verdict: "scored".into(),
                    pass_rate: 0.5,
                    detail: String::new(),
                    lanes: 1,
                },
            },
            Response {
                id: 3,
                verb: "score".into(),
                body: RespBody::Scored {
                    verdict: "scored".into(),
                    pass_rate: 1.0,
                    detail: String::new(),
                    lanes: 8,
                },
            },
            Response {
                id: 4,
                verb: "retrieve".into(),
                body: RespBody::Retrieved {
                    count: 2,
                    jsonl: "{\"id\": 7, \"score\": 0.5, \"name\": \"ctr\", \
                            \"source\": \"module ctr;\\nendmodule\\n\"}\n"
                        .into(),
                },
            },
            Response {
                id: 5,
                verb: "agent".into(),
                body: RespBody::AgentReport {
                    passed: true,
                    winner: Some(2),
                    chains: 5,
                    rounds_total: 9,
                    quarantined: 0,
                    jsonl: "{\"chain\": 0, \"rounds\": 3, \"lint\": true, \
                            \"function\": 0.5, \"repaired\": true, \"cancelled\": false}\n"
                        .into(),
                },
            },
            Response {
                id: 6,
                verb: "agent".into(),
                body: RespBody::AgentReport {
                    passed: false,
                    winner: None,
                    chains: 2,
                    rounds_total: 8,
                    quarantined: 1,
                    jsonl: String::new(),
                },
            },
            Response::error(9, "augment", ErrorCode::Overloaded, "pool queue full"),
        ];
        for r in resps {
            let back = Response::from_line(&r.to_line()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        for bad_line in [
            "",
            "not json",
            "{\"ev\": \"nope\", \"id\": 1}",
            "{\"ev\": \"score\", \"id\": 1, \"source\": \"m\"}", // neither problem nor testbench
            "{\"ev\": \"augment\", \"id\": 1}",                  // missing source
            "{\"ev\": \"retrieve\", \"id\": 1}",                 // missing query
            "{\"ev\": \"retrieve\", \"id\": 1, \"query\": \"q\", \"k\": -1}",
            "{\"ev\": \"ping\"}",             // missing id
            "{\"ev\": \"ping\", \"id\": -3}", // negative id
            "{\"ev\": \"ping\", \"id\": 1, \"priority\": \"urgent\"}",
        ] {
            assert!(
                Request::from_line(bad_line).is_err(),
                "accepted {bad_line:?}"
            );
        }
    }

    #[test]
    fn score_runs_is_lenient_and_clamped() {
        // Absent on old-client frames: defaults to 1 (scalar scoring).
        let line = "{\"ev\": \"score\", \"id\": 1, \"source\": \"m\", \"problem\": \"p\"}";
        match Request::from_line(line).unwrap().body {
            ReqBody::Score { runs, .. } => assert_eq!(runs, 1),
            other => panic!("{other:?}"),
        }
        // Oversized asks clamp to the engine's lane ceiling; zero means 1.
        for (asked, want) in [(0u64, 1u64), (7, 7), (10_000, 64)] {
            let line = format!(
                "{{\"ev\": \"score\", \"id\": 1, \"source\": \"m\", \
                 \"problem\": \"p\", \"runs\": {asked}}}"
            );
            match Request::from_line(&line).unwrap().body {
                ReqBody::Score { runs, .. } => assert_eq!(runs, want, "asked {asked}"),
                other => panic!("{other:?}"),
            }
        }
        // Old-server responses without `lanes` decode to 1.
        let line = "{\"ev\": \"response\", \"id\": 1, \"verb\": \"score\", \
                    \"status\": \"ok\", \"verdict\": \"scored\", \"pass_rate\": 1}";
        match Response::from_line(line).unwrap().body {
            RespBody::Scored { lanes, .. } => assert_eq!(lanes, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn retrieve_k_is_lenient_and_clamped() {
        // Absent: defaults to 5; zero means 1; oversized clamps.
        for (line_k, want) in [(None, 5u64), (Some(0), 1), (Some(9), 9), (Some(10_000), 64)] {
            let line = match line_k {
                None => "{\"ev\": \"retrieve\", \"id\": 1, \"query\": \"q\"}".to_string(),
                Some(k) => {
                    format!("{{\"ev\": \"retrieve\", \"id\": 1, \"query\": \"q\", \"k\": {k}}}")
                }
            };
            match Request::from_line(&line).unwrap().body {
                ReqBody::Retrieve { k, .. } => assert_eq!(k, want, "asked {line_k:?}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn agent_defaults_are_lenient_and_clamped() {
        // A bare frame gets the paper protocol: level 2, pass@5, 3
        // rounds, no early-exit, no RAG, scalar scoring, seed 7331.
        let line = "{\"ev\": \"agent\", \"id\": 1, \"problem\": \"p\"}";
        match Request::from_line(line).unwrap().body {
            ReqBody::Agent {
                level,
                k,
                rounds,
                early_exit,
                rag_k,
                runs,
                seed,
                ..
            } => {
                assert_eq!(level, DEFAULT_AGENT_LEVEL);
                assert_eq!(k, DEFAULT_AGENT_K);
                assert_eq!(rounds, DEFAULT_AGENT_ROUNDS);
                assert!(!early_exit);
                assert_eq!(rag_k, 0);
                assert_eq!(runs, 1);
                assert_eq!(seed, DEFAULT_AGENT_SEED);
            }
            other => panic!("{other:?}"),
        }
        // Default-valued fields stay off the wire.
        let req = Request {
            id: 1,
            priority: Priority::Normal,
            deadline_ms: None,
            body: ReqBody::Agent {
                problem: "p".into(),
                level: DEFAULT_AGENT_LEVEL,
                k: DEFAULT_AGENT_K,
                rounds: DEFAULT_AGENT_ROUNDS,
                early_exit: false,
                rag_k: 0,
                runs: 1,
                seed: DEFAULT_AGENT_SEED,
            },
        };
        let wire = req.to_line();
        for absent in ["level", "rounds", "early_exit", "rag_k", "runs", "seed"] {
            assert!(!wire.contains(absent), "`{absent}` leaked onto {wire}");
        }
        // Oversized asks clamp; zero k means 1.
        let line = "{\"ev\": \"agent\", \"id\": 1, \"problem\": \"p\", \
                    \"k\": 0, \"rounds\": 99, \"rag_k\": 10000, \"runs\": 10000}";
        match Request::from_line(line).unwrap().body {
            ReqBody::Agent {
                k,
                rounds,
                rag_k,
                runs,
                ..
            } => {
                assert_eq!(k, 1);
                assert_eq!(rounds, MAX_AGENT_ROUNDS);
                assert_eq!(rag_k, MAX_RETRIEVE_K);
                assert_eq!(runs, dda_sim::MAX_BATCH_LANES as u64);
            }
            other => panic!("{other:?}"),
        }
        // Missing problem is a structured error.
        assert!(Request::from_line("{\"ev\": \"agent\", \"id\": 1}").is_err());
    }

    #[test]
    fn deadline_is_clamped() {
        let line = format!(
            "{{\"ev\": \"ping\", \"id\": 1, \"deadline_ms\": {}}}",
            u64::MAX
        );
        let r = Request::from_line(&line).unwrap();
        assert_eq!(r.deadline_ms, Some(MAX_DEADLINE_MS));
    }

    #[test]
    fn health_and_ready_round_trip() {
        for r in [
            Request {
                id: 4,
                priority: Priority::Normal,
                deadline_ms: None,
                body: ReqBody::Health,
            },
            Request {
                id: 5,
                priority: Priority::High,
                deadline_ms: None,
                body: ReqBody::Ready,
            },
        ] {
            assert_eq!(Request::from_line(&r.to_line()).unwrap(), r);
        }
        for resp in [
            Response {
                id: 4,
                verb: "health".into(),
                body: RespBody::Health {
                    uptime_ms: 1234,
                    generation: 2,
                    replayed: 7,
                    failpoints: true,
                },
            },
            Response {
                id: 5,
                verb: "ready".into(),
                body: RespBody::Ready { ready: false },
            },
        ] {
            assert_eq!(Response::from_line(&resp.to_line()).unwrap(), resp);
        }
    }

    #[test]
    fn control_plane_classification() {
        assert!(ReqBody::Ping.is_control());
        assert!(ReqBody::Stats.is_control());
        assert!(ReqBody::Health.is_control());
        assert!(ReqBody::Ready.is_control());
        assert!(ReqBody::Shutdown.is_control());
        assert!(!ReqBody::Poison.is_control());
        assert!(!ReqBody::Retrieve {
            query: String::new(),
            k: 5
        }
        .is_control());
        assert!(!ReqBody::Generate {
            instruct: String::new(),
            prompt: String::new(),
            temperature: 0.1,
            seed: 0
        }
        .is_control());
        assert!(!ReqBody::Agent {
            problem: String::new(),
            level: DEFAULT_AGENT_LEVEL,
            k: DEFAULT_AGENT_K,
            rounds: DEFAULT_AGENT_ROUNDS,
            early_exit: false,
            rag_k: 0,
            runs: 1,
            seed: DEFAULT_AGENT_SEED,
        }
        .is_control());
    }
}
