//! Property-based tests for the Verilog front-end: lexer totality and
//! round trips, number decoding, printer fixed points, and four-state
//! algebraic laws.

use dda_verilog::lexer::lex;
use dda_verilog::parser::{decode_number, parse_expr};
use dda_verilog::printer::print_expr;
use dda_verilog::{LogicBit, LogicVec};
use proptest::prelude::*;

proptest! {
    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(src in "\\PC{0,300}") {
        let _ = lex(&src);
    }

    /// Re-rendering a token stream and re-lexing yields the same kinds
    /// (token spellings are self-delimiting under single-space joining).
    #[test]
    fn lex_render_relex(src in "[a-z0-9_ ;()\\[\\]{}<>=+\\-*&|^~!,.:@#]{0,120}") {
        if let Ok(tokens) = lex(&src) {
            let rendered: Vec<String> = tokens.iter().map(|t| t.kind.render()).collect();
            let joined = rendered.join(" ");
            if let Ok(again) = lex(&joined) {
                let kinds1: Vec<_> = tokens.iter().map(|t| t.kind.clone()).collect();
                let kinds2: Vec<_> = again.iter().map(|t| t.kind.clone()).collect();
                prop_assert_eq!(kinds1, kinds2);
            }
        }
    }

    /// Sized based literals decode to the declared width.
    #[test]
    fn based_literal_width(width in 1u32..64, value in any::<u64>()) {
        let spelled = format!("{width}'h{:x}", value);
        let n = decode_number(&spelled).expect("valid literal");
        prop_assert_eq!(n.value.width(), width as usize);
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        prop_assert_eq!(n.value.to_u64(), Some(value & mask));
    }

    /// Decimal spelling round-trips through decode.
    #[test]
    fn decimal_decode(value in 0u64..1_000_000_000) {
        let n = decode_number(&value.to_string()).expect("decimal");
        prop_assert_eq!(n.value.to_u64(), Some(value));
        prop_assert!(n.signed, "unsized decimals are signed");
    }

    /// print(parse(print(parse(e)))) is a fixed point for expressions built
    /// from a safe grammar.
    #[test]
    fn expr_print_parse_fixed_point(
        a in "[a-d]",
        b in "[w-z]",
        op in prop::sample::select(vec!["+", "-", "&", "|", "^", "<<", "==", "&&"]),
        n in 0u64..100,
    ) {
        let src = format!("{a} {op} ({b} + {n})");
        let e1 = parse_expr(&src).expect("grammar is safe");
        let p1 = print_expr(&e1);
        let e2 = parse_expr(&p1).expect("printed form parses");
        prop_assert_eq!(p1, print_expr(&e2));
    }

    /// Bitwise AND/OR/XOR are commutative and associative on 4-state
    /// vectors of equal width.
    #[test]
    fn fourstate_bitwise_laws(
        a in prop::collection::vec(0u8..4, 1..24),
        b in prop::collection::vec(0u8..4, 1..24),
        c in prop::collection::vec(0u8..4, 1..24),
    ) {
        fn v(bits: &[u8]) -> LogicVec {
            bits.iter()
                .map(|b| match b {
                    0 => LogicBit::Zero,
                    1 => LogicBit::One,
                    2 => LogicBit::X,
                    _ => LogicBit::Z,
                })
                .collect()
        }
        let (a, b, c) = (v(&a), v(&b), v(&c));
        use dda_sim::ops::{bit_and, bit_or, bit_xor};
        prop_assert_eq!(bit_and(&a, &b), bit_and(&b, &a));
        prop_assert_eq!(bit_or(&a, &b), bit_or(&b, &a));
        prop_assert_eq!(bit_xor(&a, &b), bit_xor(&b, &a));
        prop_assert_eq!(
            bit_and(&bit_and(&a, &b), &c),
            bit_and(&a, &bit_and(&b, &c))
        );
        prop_assert_eq!(bit_or(&bit_or(&a, &b), &c), bit_or(&a, &bit_or(&b, &c)));
    }

    /// Case equality is reflexive, symmetric, and implies logical equality
    /// on fully-known vectors.
    #[test]
    fn case_eq_laws(a in any::<u64>(), b in any::<u64>(), w in 1usize..32) {
        let va = LogicVec::from_u64(a, w);
        let vb = LogicVec::from_u64(b, w);
        prop_assert!(va.case_eq(&va));
        prop_assert_eq!(va.case_eq(&vb), vb.case_eq(&va));
        use dda_sim::ops::log_eq;
        prop_assert_eq!(va.case_eq(&vb), log_eq(&va, &vb).to_u64() == Some(1));
    }

    /// Shifting left then right by the same known amount clears the top
    /// bits and keeps the rest.
    #[test]
    fn shift_round_trip(v in any::<u64>(), w in 8usize..48, s in 0usize..8) {
        use dda_sim::ops::{shl, shr};
        let val = LogicVec::from_u64(v, w);
        let amt = LogicVec::from_u64(s as u64, 8);
        let round = shr(&shl(&val, &amt), &amt);
        for i in 0..w.saturating_sub(s) {
            prop_assert_eq!(round.bit(i), val.bit(i));
        }
        for i in w.saturating_sub(s)..w {
            prop_assert_eq!(round.bit(i), LogicBit::Zero);
        }
    }
}
