//! Constant-expression evaluation over the AST.
//!
//! Used during elaboration to resolve parameter values, port/net ranges and
//! replication counts. Works on `i64` — constant expressions with `x`/`z`
//! bits are rejected.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::token::Span;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a constant expression could not be evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstEvalError {
    /// Human-readable reason.
    pub reason: String,
    /// Where evaluation failed.
    pub span: Span,
}

impl ConstEvalError {
    fn new(reason: impl Into<String>, span: Span) -> Self {
        ConstEvalError {
            reason: reason.into(),
            span,
        }
    }
}

impl fmt::Display for ConstEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constant evaluation failed at {}: {}",
            self.span, self.reason
        )
    }
}

impl Error for ConstEvalError {}

/// Evaluates `expr` with `params` bound to integer values.
///
/// # Errors
///
/// Returns [`ConstEvalError`] for references to unbound identifiers,
/// literals containing `x`/`z`, division by zero, and operators that are not
/// constant-foldable (selects, calls, concatenation of unsized values).
///
/// ```
/// # use std::collections::HashMap;
/// let e = dda_verilog::parse_expr("WIDTH * 2 - 1").unwrap();
/// let mut env = HashMap::new();
/// env.insert("WIDTH".to_string(), 8i64);
/// assert_eq!(dda_verilog::consteval::eval_const(&e, &env).unwrap(), 15);
/// ```
pub fn eval_const(expr: &Expr, params: &HashMap<String, i64>) -> Result<i64, ConstEvalError> {
    match expr {
        Expr::Number(n, span) => n
            .value
            .to_i64()
            .filter(|_| !n.value.has_unknown())
            .map(|v| {
                if n.signed {
                    v
                } else {
                    n.value.to_u64().unwrap_or(0) as i64
                }
            })
            .ok_or_else(|| ConstEvalError::new("literal contains x/z bits", *span)),
        Expr::Ident(i) => params
            .get(&i.name)
            .copied()
            .ok_or_else(|| ConstEvalError::new(format!("`{}` is not a constant", i.name), i.span)),
        Expr::Unary { op, expr, span } => {
            let v = eval_const(expr, params)?;
            Ok(match op {
                UnaryOp::Plus => v,
                UnaryOp::Neg => -v,
                UnaryOp::LogicNot => (v == 0) as i64,
                UnaryOp::BitNot => !v,
                UnaryOp::RedOr => (v != 0) as i64,
                UnaryOp::RedAnd => {
                    return Err(ConstEvalError::new(
                        "reduction over unsized constant",
                        *span,
                    ))
                }
                _ => {
                    return Err(ConstEvalError::new(
                        format!("operator `{}` is not constant-foldable", op.as_str()),
                        *span,
                    ))
                }
            })
        }
        Expr::Binary { op, lhs, rhs, span } => {
            let a = eval_const(lhs, params)?;
            let b = eval_const(rhs, params)?;
            Ok(match op {
                BinaryOp::Add => a.wrapping_add(b),
                BinaryOp::Sub => a.wrapping_sub(b),
                BinaryOp::Mul => a.wrapping_mul(b),
                BinaryOp::Div => {
                    if b == 0 {
                        return Err(ConstEvalError::new("division by zero", *span));
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        return Err(ConstEvalError::new("modulo by zero", *span));
                    }
                    a % b
                }
                BinaryOp::Pow => {
                    let e = u32::try_from(b)
                        .map_err(|_| ConstEvalError::new("negative constant exponent", *span))?;
                    a.wrapping_pow(e)
                }
                BinaryOp::Shl => a.wrapping_shl(b as u32),
                BinaryOp::Shr => ((a as u64) >> (b as u32 & 63)) as i64,
                BinaryOp::AShr => a.wrapping_shr(b as u32),
                BinaryOp::Lt => (a < b) as i64,
                BinaryOp::Le => (a <= b) as i64,
                BinaryOp::Gt => (a > b) as i64,
                BinaryOp::Ge => (a >= b) as i64,
                BinaryOp::Eq | BinaryOp::CaseEq => (a == b) as i64,
                BinaryOp::Ne | BinaryOp::CaseNe => (a != b) as i64,
                BinaryOp::BitAnd => a & b,
                BinaryOp::BitOr => a | b,
                BinaryOp::BitXor => a ^ b,
                BinaryOp::BitXnor => !(a ^ b),
                BinaryOp::LogicAnd => ((a != 0) && (b != 0)) as i64,
                BinaryOp::LogicOr => ((a != 0) || (b != 0)) as i64,
            })
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            if eval_const(cond, params)? != 0 {
                eval_const(then_expr, params)
            } else {
                eval_const(else_expr, params)
            }
        }
        Expr::Call { name, args, span } if name.name == "$clog2" && args.len() == 1 => {
            let v = eval_const(&args[0], params)?;
            if v < 0 {
                return Err(ConstEvalError::new("$clog2 of negative value", *span));
            }
            Ok(64 - (v.max(1) as u64 - 1).leading_zeros() as i64)
        }
        other => Err(ConstEvalError::new(
            "expression is not constant",
            other.span(),
        )),
    }
}

/// Evaluates a `[msb:lsb]` range to `(msb, lsb)`.
///
/// # Errors
///
/// Propagates [`ConstEvalError`] from either bound.
pub fn eval_range(
    range: &crate::ast::Range,
    params: &HashMap<String, i64>,
) -> Result<(i64, i64), ConstEvalError> {
    Ok((
        eval_const(&range.msb, params)?,
        eval_const(&range.lsb, params)?,
    ))
}

/// The bit width implied by an optional range (no range = 1 bit).
///
/// # Errors
///
/// Propagates [`ConstEvalError`] from the bounds.
pub fn range_width(
    range: &Option<crate::ast::Range>,
    params: &HashMap<String, i64>,
) -> Result<usize, ConstEvalError> {
    match range {
        None => Ok(1),
        Some(r) => {
            let (msb, lsb) = eval_range(r, params)?;
            Ok(msb.abs_diff(lsb) as usize + 1)
        }
    }
}

/// Whether `expr` is a *closed* constant: it references no identifiers and
/// no function/system calls, so its value cannot depend on signal state,
/// parameters, or call frames. Closed constants evaluate to the same value
/// at elaboration time as at any point during simulation, which is what
/// lets the simulator's compile pass fold select bounds and replication
/// counts once instead of re-evaluating them per event.
pub fn is_const_expr(expr: &Expr) -> bool {
    match expr {
        Expr::Number(..) | Expr::Str(..) => true,
        Expr::Ident(_) | Expr::Call { .. } => false,
        Expr::Unary { expr, .. } => is_const_expr(expr),
        Expr::Binary { lhs, rhs, .. } => is_const_expr(lhs) && is_const_expr(rhs),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => is_const_expr(cond) && is_const_expr(then_expr) && is_const_expr(else_expr),
        Expr::Concat(parts, _) => parts.iter().all(is_const_expr),
        Expr::Repeat { count, exprs, .. } => {
            is_const_expr(count) && exprs.iter().all(is_const_expr)
        }
        Expr::Index { base, index, .. } => is_const_expr(base) && is_const_expr(index),
        Expr::PartSelect { base, msb, lsb, .. } => {
            is_const_expr(base) && is_const_expr(msb) && is_const_expr(lsb)
        }
        Expr::IndexedPart {
            base, start, width, ..
        } => is_const_expr(base) && is_const_expr(start) && is_const_expr(width),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn ev(src: &str) -> i64 {
        eval_const(&parse_expr(src).unwrap(), &HashMap::new()).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(ev("2 + 3 * 4"), 14);
        assert_eq!(ev("(2 + 3) * 4"), 20);
        assert_eq!(ev("7 / 2"), 3);
        assert_eq!(ev("7 % 2"), 1);
        assert_eq!(ev("2 ** 10"), 1024);
        assert_eq!(ev("1 << 4"), 16);
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(ev("3 < 4"), 1);
        assert_eq!(ev("3 >= 4"), 0);
        assert_eq!(ev("1 && 0"), 0);
        assert_eq!(ev("1 || 0"), 1);
        assert_eq!(ev("4 == 4 ? 10 : 20"), 10);
    }

    #[test]
    fn parameters_resolve() {
        let mut env = HashMap::new();
        env.insert("W".to_string(), 8);
        let e = parse_expr("W - 1").unwrap();
        assert_eq!(eval_const(&e, &env).unwrap(), 7);
    }

    #[test]
    fn clog2() {
        assert_eq!(ev("$clog2(1)"), 0);
        assert_eq!(ev("$clog2(2)"), 1);
        assert_eq!(ev("$clog2(256)"), 8);
        assert_eq!(ev("$clog2(257)"), 9);
    }

    #[test]
    fn errors() {
        assert!(eval_const(&parse_expr("x + 1").unwrap(), &HashMap::new()).is_err());
        assert!(eval_const(&parse_expr("1 / 0").unwrap(), &HashMap::new()).is_err());
        assert!(eval_const(&parse_expr("4'bxx00").unwrap(), &HashMap::new()).is_err());
    }

    #[test]
    fn range_widths() {
        let sf =
            crate::parse("module m(input [7:0] a, input b, input [0:3] c); endmodule").unwrap();
        let env = HashMap::new();
        let w: Vec<usize> = sf.modules[0]
            .ports
            .iter()
            .map(|p| range_width(&p.range, &env).unwrap())
            .collect();
        assert_eq!(w, vec![8, 1, 4]);
    }
}
