//! Four-state logic values (`0`, `1`, `x`, `z`).
//!
//! [`LogicVec`] is the shared value representation used by the parser for
//! number literals and by the simulator for signal values. Bit 0 is the
//! least-significant bit.

use std::fmt;

/// A single four-state logic bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum LogicBit {
    /// Logic low.
    #[default]
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl LogicBit {
    /// Returns `true` for [`LogicBit::X`] or [`LogicBit::Z`].
    pub fn is_unknown(self) -> bool {
        matches!(self, LogicBit::X | LogicBit::Z)
    }

    /// Converts a known bit to `bool`; `x`/`z` map to `None`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LogicBit::Zero => Some(false),
            LogicBit::One => Some(true),
            _ => None,
        }
    }

    /// IEEE 1364 bitwise AND.
    pub fn and(self, other: LogicBit) -> LogicBit {
        use LogicBit::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        }
    }

    /// IEEE 1364 bitwise OR.
    pub fn or(self, other: LogicBit) -> LogicBit {
        use LogicBit::*;
        match (self, other) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => X,
        }
    }

    /// IEEE 1364 bitwise XOR.
    pub fn xor(self, other: LogicBit) -> LogicBit {
        use LogicBit::*;
        match (self, other) {
            (Zero, Zero) | (One, One) => Zero,
            (Zero, One) | (One, Zero) => One,
            _ => X,
        }
    }

    /// IEEE 1364 bitwise NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> LogicBit {
        use LogicBit::*;
        match self {
            Zero => One,
            One => Zero,
            _ => X,
        }
    }
}

impl From<bool> for LogicBit {
    fn from(b: bool) -> Self {
        if b {
            LogicBit::One
        } else {
            LogicBit::Zero
        }
    }
}

impl fmt::Display for LogicBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            LogicBit::Zero => '0',
            LogicBit::One => '1',
            LogicBit::X => 'x',
            LogicBit::Z => 'z',
        };
        write!(f, "{c}")
    }
}

/// A fixed-width vector of four-state bits, LSB first.
///
/// ```
/// use dda_verilog::logic::LogicVec;
/// let v = LogicVec::from_u64(10, 4);
/// assert_eq!(v.to_string(), "1010");
/// assert_eq!(v.to_u64(), Some(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LogicVec {
    bits: Vec<LogicBit>,
}

impl LogicVec {
    /// Creates a vector of `width` zero bits.
    pub fn zeros(width: usize) -> Self {
        LogicVec {
            bits: vec![LogicBit::Zero; width],
        }
    }

    /// Creates a vector of `width` `x` bits (the value of an uninitialised reg).
    pub fn xs(width: usize) -> Self {
        LogicVec {
            bits: vec![LogicBit::X; width],
        }
    }

    /// Creates a vector of `width` `z` bits.
    pub fn zs(width: usize) -> Self {
        LogicVec {
            bits: vec![LogicBit::Z; width],
        }
    }

    /// Creates a vector from bits, LSB first.
    pub fn from_bits(bits: Vec<LogicBit>) -> Self {
        LogicVec { bits }
    }

    /// Creates a `width`-bit vector holding `value` (truncating high bits).
    pub fn from_u64(value: u64, width: usize) -> Self {
        let bits = (0..width)
            .map(|i| {
                if i < 64 {
                    LogicBit::from(value >> i & 1 == 1)
                } else {
                    LogicBit::Zero
                }
            })
            .collect();
        LogicVec { bits }
    }

    /// Creates a 1-bit vector from a boolean.
    pub fn from_bool(b: bool) -> Self {
        LogicVec {
            bits: vec![LogicBit::from(b)],
        }
    }

    /// Creates a 1-bit vector from a logic bit.
    pub fn from_bit(b: LogicBit) -> Self {
        LogicVec { bits: vec![b] }
    }

    /// Parses a binary digit string (MSB first), accepting `0 1 x z _`.
    ///
    /// # Errors
    ///
    /// Returns `None` on any other character.
    pub fn parse_binary(s: &str) -> Option<Self> {
        let mut bits = Vec::new();
        for c in s.chars().rev() {
            match c {
                '0' => bits.push(LogicBit::Zero),
                '1' => bits.push(LogicBit::One),
                'x' | 'X' => bits.push(LogicBit::X),
                'z' | 'Z' | '?' => bits.push(LogicBit::Z),
                '_' => {}
                _ => return None,
            }
        }
        Some(LogicVec { bits })
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` when the vector has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit at `idx` (LSB = 0), or `x` when out of range.
    pub fn bit(&self, idx: usize) -> LogicBit {
        self.bits.get(idx).copied().unwrap_or(LogicBit::X)
    }

    /// Sets bit `idx`, ignoring out-of-range indices.
    pub fn set_bit(&mut self, idx: usize, b: LogicBit) {
        if let Some(slot) = self.bits.get_mut(idx) {
            *slot = b;
        }
    }

    /// The underlying bits, LSB first.
    pub fn bits(&self) -> &[LogicBit] {
        &self.bits
    }

    /// Returns `true` if any bit is `x` or `z`.
    pub fn has_unknown(&self) -> bool {
        self.bits.iter().any(|b| b.is_unknown())
    }

    /// Interprets the vector as an unsigned integer; `None` if any bit is
    /// unknown or the width exceeds 64.
    pub fn to_u64(&self) -> Option<u64> {
        if self.bits.len() > 64 {
            // Accept wider vectors whose high bits are all zero.
            if self.bits[64..].iter().any(|b| *b != LogicBit::Zero) {
                return None;
            }
        }
        let mut v = 0u64;
        for (i, b) in self.bits.iter().take(64).enumerate() {
            match b.to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    /// Interprets the vector as a signed integer (two's complement).
    pub fn to_i64(&self) -> Option<i64> {
        let w = self.bits.len().min(64);
        if w == 0 {
            return Some(0);
        }
        let raw = self.to_u64()?;
        let sign = self.bits[self.bits.len() - 1] == LogicBit::One;
        if sign && self.bits.len() <= 64 {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            Some((raw | !mask) as i64)
        } else {
            Some(raw as i64)
        }
    }

    /// Truth value for conditions: `Some(true)` if any bit is 1, `Some(false)`
    /// if all bits are 0, `None` if unknown bits prevent a decision.
    pub fn truthy(&self) -> Option<bool> {
        if self.bits.contains(&LogicBit::One) {
            return Some(true);
        }
        if self.bits.iter().all(|b| *b == LogicBit::Zero) {
            return Some(false);
        }
        None
    }

    /// Resizes to `width`, zero-extending (or sign-extending when `signed`).
    pub fn resize(&self, width: usize, signed: bool) -> LogicVec {
        let mut bits = self.bits.clone();
        let fill = if signed {
            bits.last().copied().unwrap_or(LogicBit::Zero)
        } else {
            LogicBit::Zero
        };
        bits.resize(width, fill);
        bits.truncate(width);
        LogicVec { bits }
    }

    /// Concatenates `other` below `self` (i.e. `{self, other}` in Verilog).
    pub fn concat(&self, other: &LogicVec) -> LogicVec {
        let mut bits = other.bits.clone();
        bits.extend_from_slice(&self.bits);
        LogicVec { bits }
    }

    /// Extracts bits `[lo, lo+width)`, filling out-of-range positions with `x`.
    pub fn slice(&self, lo: usize, width: usize) -> LogicVec {
        let bits = (0..width).map(|i| self.bit(lo + i)).collect();
        LogicVec { bits }
    }

    /// Case-equality (`===`): exact match including `x`/`z`.
    pub fn case_eq(&self, other: &LogicVec) -> bool {
        let w = self.width().max(other.width());
        (0..w).all(|i| {
            self.bits.get(i).copied().unwrap_or(LogicBit::Zero)
                == other.bits.get(i).copied().unwrap_or(LogicBit::Zero)
        })
    }
}

impl fmt::Display for LogicVec {
    /// Formats MSB first, as in Verilog binary literals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return write!(f, "0");
        }
        for b in self.bits.iter().rev() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// One plane of a [`PackedVec`]: 64 bits per word, inline for vectors that
/// fit a single word (the common case — no heap allocation at all).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Plane {
    Inline([u64; 1]),
    Heap(Vec<u64>),
}

impl Plane {
    fn new(nwords: usize) -> Plane {
        if nwords <= 1 {
            Plane::Inline([0])
        } else {
            Plane::Heap(vec![0; nwords])
        }
    }

    fn words(&self, nwords: usize) -> &[u64] {
        match self {
            Plane::Inline(w) => &w[..nwords.min(1)],
            Plane::Heap(v) => v,
        }
    }

    fn words_mut(&mut self, nwords: usize) -> &mut [u64] {
        match self {
            Plane::Inline(w) => &mut w[..nwords.min(1)],
            Plane::Heap(v) => v,
        }
    }
}

impl Default for Plane {
    fn default() -> Self {
        Plane::Inline([0])
    }
}

fn nwords_for(width: usize) -> usize {
    width.div_ceil(64)
}

/// Mask covering the valid bits of the top word of a `width`-bit vector.
fn top_mask(width: usize) -> u64 {
    let r = width % 64;
    if r == 0 {
        u64::MAX
    } else {
        (1u64 << r) - 1
    }
}

/// A word-packed four-state vector: two `u64` bitplanes per 64 bits.
///
/// Encoding per bit (IEEE 1364 aval/bval): `0 = (a=0,b=0)`, `1 = (a=1,b=0)`,
/// `z = (a=0,b=1)`, `x = (a=1,b=1)`. Bits past `width` in the top word are
/// kept canonically zero in both planes, so derived equality and hashing are
/// exact. All operations are bit-identical to the per-bit [`LogicVec`]
/// reference path in the simulator (`dda-sim`'s `ops` module), including its
/// X-propagation corner cases; the differential property tests in `dda-sim`
/// enforce this.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PackedVec {
    width: usize,
    aval: Plane,
    bval: Plane,
}

impl PackedVec {
    /// Creates a vector of `width` zero bits.
    pub fn zeros(width: usize) -> Self {
        let n = nwords_for(width);
        PackedVec {
            width,
            aval: Plane::new(n),
            bval: Plane::new(n),
        }
    }

    /// Creates a vector of `width` `x` bits.
    pub fn xs(width: usize) -> Self {
        let mut v = Self::zeros(width);
        let n = v.nwords();
        for w in v.aval.words_mut(n) {
            *w = u64::MAX;
        }
        for w in v.bval.words_mut(n) {
            *w = u64::MAX;
        }
        v.mask_top();
        v
    }

    /// Creates a vector of `width` `z` bits.
    pub fn zs(width: usize) -> Self {
        let mut v = Self::zeros(width);
        let n = v.nwords();
        for w in v.bval.words_mut(n) {
            *w = u64::MAX;
        }
        v.mask_top();
        v
    }

    /// Creates a `width`-bit vector holding `value` (truncating high bits).
    pub fn from_u64(value: u64, width: usize) -> Self {
        let mut v = Self::zeros(width);
        if width > 0 {
            let n = v.nwords();
            v.aval.words_mut(n)[0] = value;
            v.mask_top();
        }
        v
    }

    /// Creates a `width.max(1)`-bit vector from a `u128`, truncating —
    /// mirrors the simulator's arithmetic result construction.
    pub fn from_u128(value: u128, width: usize) -> Self {
        let width = width.max(1);
        let mut v = Self::zeros(width);
        let n = v.nwords();
        {
            let a = v.aval.words_mut(n);
            a[0] = value as u64;
            if n > 1 {
                a[1] = (value >> 64) as u64;
            }
        }
        v.mask_top();
        v
    }

    /// Creates a 1-bit vector from a boolean.
    pub fn from_bool(b: bool) -> Self {
        Self::from_u64(b as u64, 1)
    }

    /// Creates a 1-bit vector from a logic bit.
    pub fn from_bit(b: LogicBit) -> Self {
        let mut v = Self::zeros(1);
        v.set_bit(0, b);
        v
    }

    /// Packs a per-bit [`LogicVec`].
    pub fn from_logic(lv: &LogicVec) -> Self {
        let mut v = Self::zeros(lv.width());
        let n = v.nwords();
        {
            let a = v.aval.words_mut(n);
            for (i, bit) in lv.bits().iter().enumerate() {
                let (ab, _) = encode(*bit);
                a[i / 64] |= (ab as u64) << (i % 64);
            }
        }
        {
            let b = v.bval.words_mut(n);
            for (i, bit) in lv.bits().iter().enumerate() {
                let (_, bb) = encode(*bit);
                b[i / 64] |= (bb as u64) << (i % 64);
            }
        }
        v
    }

    /// Unpacks to a per-bit [`LogicVec`].
    pub fn to_logic_vec(&self) -> LogicVec {
        (0..self.width).map(|i| self.bit(i)).collect()
    }

    fn nwords(&self) -> usize {
        nwords_for(self.width)
    }

    /// Clears the unused bits of the top word, restoring the canonical form.
    fn mask_top(&mut self) {
        let n = self.nwords();
        if n == 0 {
            return;
        }
        let m = top_mask(self.width);
        self.aval.words_mut(n)[n - 1] &= m;
        self.bval.words_mut(n)[n - 1] &= m;
    }

    /// The aval/bval planes as word slices.
    fn planes(&self) -> (&[u64], &[u64]) {
        let n = self.nwords();
        (self.aval.words(n), self.bval.words(n))
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns `true` when the vector has no bits.
    pub fn is_empty(&self) -> bool {
        self.width == 0
    }

    /// Bit at `idx` (LSB = 0), or `x` when out of range.
    pub fn bit(&self, idx: usize) -> LogicBit {
        if idx >= self.width {
            return LogicBit::X;
        }
        let (a, b) = self.planes();
        decode(
            a[idx / 64] >> (idx % 64) & 1 == 1,
            b[idx / 64] >> (idx % 64) & 1 == 1,
        )
    }

    /// Sets bit `idx`, ignoring out-of-range indices.
    pub fn set_bit(&mut self, idx: usize, bit: LogicBit) {
        if idx >= self.width {
            return;
        }
        let n = self.nwords();
        let (ab, bb) = encode(bit);
        let (w, s) = (idx / 64, idx % 64);
        let a = self.aval.words_mut(n);
        a[w] = a[w] & !(1 << s) | (ab as u64) << s;
        let b = self.bval.words_mut(n);
        b[w] = b[w] & !(1 << s) | (bb as u64) << s;
    }

    /// Writes `src` into bits `[lo, lo + width)`, mirroring the per-bit
    /// write path: out-of-range destination bits are dropped, and source
    /// reads past `src.width()` fill with `x`.
    pub fn set_range(&mut self, lo: usize, width: usize, src: &PackedVec) {
        for i in 0..width {
            self.set_bit(lo + i, src.bit(i));
        }
    }

    /// Returns `true` if any bit is `x` or `z`.
    pub fn has_unknown(&self) -> bool {
        self.planes().1.iter().any(|w| *w != 0)
    }

    /// Interprets the vector as an unsigned integer; `None` if any bit is
    /// unknown or a bit past 64 is nonzero.
    pub fn to_u64(&self) -> Option<u64> {
        let (a, b) = self.planes();
        for i in 1..a.len() {
            if a[i] | b[i] != 0 {
                return None;
            }
        }
        if a.is_empty() {
            return Some(0);
        }
        if b[0] != 0 {
            return None;
        }
        Some(a[0])
    }

    /// Interprets the vector as a `u128`; `None` when any bit is unknown or
    /// the width exceeds 128 with nonzero high bits.
    pub fn to_u128(&self) -> Option<u128> {
        let (a, b) = self.planes();
        for i in 2..a.len() {
            if a[i] | b[i] != 0 {
                return None;
            }
        }
        if b.iter().take(2).any(|w| *w != 0) {
            return None;
        }
        let mut v = a.first().copied().unwrap_or(0) as u128;
        if let Some(hi) = a.get(1) {
            v |= (*hi as u128) << 64;
        }
        Some(v)
    }

    /// As `u64`, allowing widths beyond 64 when the high bits are zero.
    pub fn to_u64_ext(&self) -> Option<u64> {
        u64::try_from(self.to_u128()?).ok()
    }

    /// Interprets the vector as a signed integer (two's complement),
    /// mirroring [`LogicVec::to_i64`] exactly.
    pub fn to_i64(&self) -> Option<i64> {
        if self.width == 0 {
            return Some(0);
        }
        let w = self.width.min(64);
        let raw = self.to_u64()?;
        let sign = self.bit(self.width - 1) == LogicBit::One;
        if sign && self.width <= 64 {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            Some((raw | !mask) as i64)
        } else {
            Some(raw as i64)
        }
    }

    /// Truth value: `Some(true)` if any bit is 1, `Some(false)` if all bits
    /// are 0, `None` when unknown bits prevent a decision.
    pub fn truthy(&self) -> Option<bool> {
        let (a, b) = self.planes();
        if a.iter().zip(b).any(|(aw, bw)| aw & !bw != 0) {
            return Some(true);
        }
        if a.iter().zip(b).all(|(aw, bw)| aw | bw == 0) {
            return Some(false);
        }
        None
    }

    /// Resizes to `width`, zero-extending (or extending with the current MSB
    /// — which may be `x`/`z` — when `signed`).
    pub fn resize(&self, width: usize, signed: bool) -> PackedVec {
        let fill = if signed && self.width > 0 {
            self.bit(self.width - 1)
        } else {
            LogicBit::Zero
        };
        let mut out = Self::zeros(width);
        let n = out.nwords();
        let copy = self.width.min(width);
        let copy_words = nwords_for(copy);
        let (sa, sb) = self.planes();
        {
            let a = out.aval.words_mut(n);
            a[..copy_words].copy_from_slice(&sa[..copy_words]);
        }
        {
            let b = out.bval.words_mut(n);
            b[..copy_words].copy_from_slice(&sb[..copy_words]);
        }
        if copy < width {
            // Clear any copied bits past `copy`, then paint the fill bit.
            let m = top_mask(copy);
            if copy_words > 0 {
                out.aval.words_mut(n)[copy_words - 1] &= m;
                out.bval.words_mut(n)[copy_words - 1] &= m;
            }
            if fill != LogicBit::Zero {
                let (fa, fb) = encode(fill);
                fill_bits(out.aval.words_mut(n), copy, width, fa);
                fill_bits(out.bval.words_mut(n), copy, width, fb);
            }
        }
        out.mask_top();
        out
    }

    /// 64 bits of each plane starting at bit `lo`, with positions past
    /// `width` reading as `x` (both planes set).
    fn word_at(&self, lo: usize) -> (u64, u64) {
        let (pa, pb) = self.planes();
        let (w0, sh) = (lo / 64, lo % 64);
        let get = |p: &[u64], i: usize| p.get(i).copied().unwrap_or(0);
        let mut a = get(pa, w0) >> sh;
        let mut b = get(pb, w0) >> sh;
        if sh > 0 {
            a |= get(pa, w0 + 1) << (64 - sh);
            b |= get(pb, w0 + 1) << (64 - sh);
        }
        if lo + 64 > self.width {
            let xmask = if self.width > lo {
                !0u64 << (self.width - lo)
            } else {
                !0u64
            };
            a |= xmask;
            b |= xmask;
        }
        (a, b)
    }

    /// Extracts bits `[lo, lo + width)`, filling out-of-range positions
    /// with `x`.
    pub fn slice(&self, lo: usize, width: usize) -> PackedVec {
        let mut out = Self::zeros(width);
        let n = out.nwords();
        for i in 0..n {
            let (a, b) = self.word_at(lo + i * 64);
            out.aval.words_mut(n)[i] = a;
            out.bval.words_mut(n)[i] = b;
        }
        out.mask_top();
        out
    }

    /// Concatenates `other` below `self` (i.e. `{self, other}` in Verilog).
    pub fn concat(&self, other: &PackedVec) -> PackedVec {
        let width = self.width + other.width;
        let mut out = Self::zeros(width);
        let n = out.nwords();
        let (oa, ob) = other.planes();
        {
            let a = out.aval.words_mut(n);
            a[..oa.len()].copy_from_slice(oa);
            blit(a, self.planes().0, other.width);
        }
        {
            let b = out.bval.words_mut(n);
            b[..ob.len()].copy_from_slice(ob);
            blit(b, self.planes().1, other.width);
        }
        out.mask_top();
        out
    }

    /// Replicates the vector `n` times (`{n{a}}`).
    pub fn replicate(&self, n: usize) -> PackedVec {
        let width = self.width * n;
        let mut out = Self::zeros(width);
        let nw = out.nwords();
        let (sa, sb) = self.planes();
        for i in 0..n {
            blit(out.aval.words_mut(nw), sa, i * self.width);
            blit(out.bval.words_mut(nw), sb, i * self.width);
        }
        out.mask_top();
        out
    }

    /// Case-equality (`===`): exact 4-state match with zero extension.
    pub fn case_eq(&self, other: &PackedVec) -> bool {
        let (sa, sb) = self.planes();
        let (oa, ob) = other.planes();
        let n = sa.len().max(oa.len());
        let get = |p: &[u64], i: usize| p.get(i).copied().unwrap_or(0);
        (0..n).all(|i| get(sa, i) == get(oa, i) && get(sb, i) == get(ob, i))
    }
}

/// Encodes a logic bit as (aval, bval).
fn encode(b: LogicBit) -> (bool, bool) {
    match b {
        LogicBit::Zero => (false, false),
        LogicBit::One => (true, false),
        LogicBit::Z => (false, true),
        LogicBit::X => (true, true),
    }
}

/// Decodes an (aval, bval) pair.
fn decode(a: bool, b: bool) -> LogicBit {
    match (a, b) {
        (false, false) => LogicBit::Zero,
        (true, false) => LogicBit::One,
        (false, true) => LogicBit::Z,
        (true, true) => LogicBit::X,
    }
}

/// Sets plane bits `[lo, hi)` to `value`.
fn fill_bits(words: &mut [u64], lo: usize, hi: usize, value: bool) {
    if !value || lo >= hi {
        return;
    }
    for (i, w) in words.iter_mut().enumerate() {
        let (wlo, whi) = (i * 64, i * 64 + 64);
        if whi <= lo || wlo >= hi {
            continue;
        }
        let from = lo.max(wlo) - wlo;
        let to = hi.min(whi) - wlo;
        let mask = if to == 64 { !0u64 } else { (1u64 << to) - 1 } & !((1u64 << from) - 1);
        *w |= mask;
    }
}

/// ORs canonical `src` words into `dst` starting at bit offset `ofs`.
fn blit(dst: &mut [u64], src: &[u64], ofs: usize) {
    let (ws, bs) = (ofs / 64, ofs % 64);
    for (i, &w) in src.iter().enumerate() {
        if w == 0 {
            continue;
        }
        if ws + i < dst.len() {
            dst[ws + i] |= w << bs;
        }
        if bs != 0 && ws + i + 1 < dst.len() {
            dst[ws + i + 1] |= w >> (64 - bs);
        }
    }
}

impl fmt::Display for PackedVec {
    /// Formats MSB first, like [`LogicVec`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 0 {
            return write!(f, "0");
        }
        for i in (0..self.width).rev() {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

/// Four-state operations, wordwise over the two bitplanes.
///
/// Per-word masks: `one = a & !b` (known 1), `zero = !a & !b` (known 0),
/// `unk = b` (x or z — both behave as unknown inside logic ops).
impl PackedVec {
    fn all_x(width: usize) -> PackedVec {
        PackedVec::xs(width.max(1))
    }

    fn binary_bitwise(
        a: &PackedVec,
        b: &PackedVec,
        f: impl Fn(u64, u64, u64, u64) -> (u64, u64),
    ) -> PackedVec {
        let width = a.width.max(b.width);
        let mut out = PackedVec::zeros(width);
        let n = out.nwords();
        let (xa, xb) = a.planes();
        let (ya, yb) = b.planes();
        let get = |p: &[u64], i: usize| p.get(i).copied().unwrap_or(0);
        for i in 0..n {
            let (ra, rb) = f(get(xa, i), get(xb, i), get(ya, i), get(yb, i));
            out.aval.words_mut(n)[i] = ra;
            out.bval.words_mut(n)[i] = rb;
        }
        out.mask_top();
        out
    }

    /// Bitwise AND.
    pub fn bit_and(&self, other: &PackedVec) -> PackedVec {
        Self::binary_bitwise(self, other, |xa, xb, ya, yb| {
            let r_one = (xa & !xb) & (ya & !yb);
            let r_zero = (!xa & !xb) | (!ya & !yb);
            let r_x = !(r_one | r_zero);
            (r_one | r_x, r_x)
        })
    }

    /// Bitwise OR.
    pub fn bit_or(&self, other: &PackedVec) -> PackedVec {
        Self::binary_bitwise(self, other, |xa, xb, ya, yb| {
            let r_one = (xa & !xb) | (ya & !yb);
            let r_zero = (!xa & !xb) & (!ya & !yb);
            let r_x = !(r_one | r_zero);
            (r_one | r_x, r_x)
        })
    }

    /// Bitwise XOR.
    pub fn bit_xor(&self, other: &PackedVec) -> PackedVec {
        Self::binary_bitwise(self, other, |xa, xb, ya, yb| {
            let known = !xb & !yb;
            let val = xa ^ ya;
            ((known & val) | !known, !known)
        })
    }

    /// Bitwise XNOR.
    pub fn bit_xnor(&self, other: &PackedVec) -> PackedVec {
        Self::binary_bitwise(self, other, |xa, xb, ya, yb| {
            let known = !xb & !yb;
            let val = !(xa ^ ya);
            ((known & val) | !known, !known)
        })
    }

    /// Bitwise NOT.
    pub fn bit_not(&self) -> PackedVec {
        let mut out = self.clone();
        let n = out.nwords();
        for i in 0..n {
            let (a, b) = (out.aval.words(n)[i], out.bval.words(n)[i]);
            out.aval.words_mut(n)[i] = !a | b;
        }
        out.mask_top();
        out
    }

    /// Wrapping addition; all-`x` on unknown operands.
    pub fn add(&self, other: &PackedVec) -> PackedVec {
        let w = self.width.max(other.width);
        match (self.to_u128(), other.to_u128()) {
            (Some(x), Some(y)) => Self::from_u128(x.wrapping_add(y), w),
            _ => Self::all_x(w),
        }
    }

    /// Wrapping subtraction; all-`x` on unknown operands.
    pub fn sub(&self, other: &PackedVec) -> PackedVec {
        let w = self.width.max(other.width);
        match (self.to_u128(), other.to_u128()) {
            (Some(x), Some(y)) => Self::from_u128(x.wrapping_sub(y), w),
            _ => Self::all_x(w),
        }
    }

    /// Wrapping multiplication; all-`x` on unknown operands.
    pub fn mul(&self, other: &PackedVec) -> PackedVec {
        let w = self.width.max(other.width);
        match (self.to_u128(), other.to_u128()) {
            (Some(x), Some(y)) => Self::from_u128(x.wrapping_mul(y), w),
            _ => Self::all_x(w),
        }
    }

    /// Unsigned division; all-`x` on unknown operands or division by zero.
    pub fn div(&self, other: &PackedVec) -> PackedVec {
        let w = self.width.max(other.width);
        match (self.to_u128(), other.to_u128()) {
            (Some(x), Some(y)) if y != 0 => Self::from_u128(x / y, w),
            _ => Self::all_x(w),
        }
    }

    /// Unsigned remainder; all-`x` on unknown operands or modulo by zero.
    pub fn rem(&self, other: &PackedVec) -> PackedVec {
        let w = self.width.max(other.width);
        match (self.to_u128(), other.to_u128()) {
            (Some(x), Some(y)) if y != 0 => Self::from_u128(x % y, w),
            _ => Self::all_x(w),
        }
    }

    /// Power; all-`x` on unknown operands. Result takes the base's width.
    pub fn pow(&self, other: &PackedVec) -> PackedVec {
        let w = self.width;
        match (self.to_u128(), other.to_u64_ext()) {
            (Some(x), Some(y)) => {
                let mut acc: u128 = 1;
                for _ in 0..y.min(200) {
                    acc = acc.wrapping_mul(x);
                }
                Self::from_u128(acc, w)
            }
            _ => Self::all_x(w),
        }
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> PackedVec {
        let w = self.width;
        match self.to_u128() {
            Some(x) => Self::from_u128(x.wrapping_neg(), w),
            None => Self::all_x(w),
        }
    }

    /// Logical shift left; an unknown amount yields all-`x`.
    pub fn shl(&self, amount: &PackedVec) -> PackedVec {
        match amount.to_u64_ext() {
            Some(n) => self.shift_words(n as usize, true, LogicBit::Zero),
            None => Self::all_x(self.width),
        }
    }

    /// Logical shift right.
    pub fn shr(&self, amount: &PackedVec) -> PackedVec {
        match amount.to_u64_ext() {
            Some(n) => self.shift_words(n as usize, false, LogicBit::Zero),
            None => Self::all_x(self.width),
        }
    }

    /// Arithmetic shift right, filling with the (possibly `x`/`z`) MSB.
    pub fn ashr(&self, amount: &PackedVec) -> PackedVec {
        let fill = if self.width > 0 {
            self.bit(self.width - 1)
        } else {
            LogicBit::Zero
        };
        match amount.to_u64_ext() {
            Some(n) => self.shift_words(n as usize, false, fill),
            None => Self::all_x(self.width),
        }
    }

    fn shift_words(&self, n: usize, left: bool, fill: LogicBit) -> PackedVec {
        let w = self.width;
        let mut out = PackedVec::zeros(w);
        let nw = out.nwords();
        let n = n.min(w);
        for i in 0..nw {
            // Output word `i` covers bits [i*64, i*64+64); shifting left by
            // `n` reads source bits starting at i*64 - n, right at i*64 + n.
            let (a, b) = if left {
                let base = i * 64;
                if base + 64 <= n {
                    (0, 0)
                } else if base >= n {
                    let (mut a, mut b) = self.word_at(base - n);
                    // word_at x-fills past self.width; shl fills zeros.
                    let valid = w - (base - n).min(w);
                    if valid < 64 {
                        let m = (1u64 << valid) - 1;
                        a &= m;
                        b &= m;
                    }
                    (a, b)
                } else {
                    let sh = n - base;
                    let (mut a, mut b) = self.word_at(0);
                    let valid = w.min(64 - sh);
                    let m = if valid >= 64 { !0 } else { (1u64 << valid) - 1 };
                    a &= m;
                    b &= m;
                    (a << sh, b << sh)
                }
            } else {
                let (mut a, mut b) = self.word_at(i * 64 + n);
                // Positions at or past w - n take the fill bit.
                let lim = w - n;
                let base = i * 64;
                let valid = lim.saturating_sub(base).min(64);
                let m = if valid >= 64 { !0 } else { (1u64 << valid) - 1 };
                let (fa, fb) = encode(fill);
                a = a & m | if fa { !m } else { 0 };
                b = b & m | if fb { !m } else { 0 };
                (a, b)
            };
            out.aval.words_mut(nw)[i] = a;
            out.bval.words_mut(nw)[i] = b;
        }
        out.mask_top();
        out
    }

    /// Logical equality (`==`): 1-bit result; a mismatch on a known bit
    /// decides `0` even when other bits are unknown.
    pub fn log_eq(&self, other: &PackedVec) -> PackedVec {
        let (xa, xb) = self.planes();
        let (ya, yb) = other.planes();
        let n = xa.len().max(ya.len());
        let get = |p: &[u64], i: usize| p.get(i).copied().unwrap_or(0);
        let mut any_unknown = false;
        for i in 0..n {
            let (a1, b1, a2, b2) = (get(xa, i), get(xb, i), get(ya, i), get(yb, i));
            if !b1 & !b2 & (a1 ^ a2) != 0 {
                return PackedVec::from_bool(false);
            }
            any_unknown |= b1 | b2 != 0;
        }
        if any_unknown {
            PackedVec::from_bit(LogicBit::X)
        } else {
            PackedVec::from_bool(true)
        }
    }

    /// Logical inequality (`!=`).
    pub fn log_ne(&self, other: &PackedVec) -> PackedVec {
        match self.log_eq(other).bit(0) {
            LogicBit::X | LogicBit::Z => PackedVec::from_bit(LogicBit::X),
            b => PackedVec::from_bit(b.not()),
        }
    }

    /// Unsigned/signed `<` comparison; `x` when unknowns are present.
    pub fn cmp_lt(&self, other: &PackedVec, signed: bool) -> PackedVec {
        if self.has_unknown() || other.has_unknown() {
            return PackedVec::from_bit(LogicBit::X);
        }
        let r = if signed {
            let w = self.width.max(other.width);
            let x = self.resize(w, true).to_i64().unwrap_or(0);
            let y = other.resize(w, true).to_i64().unwrap_or(0);
            x < y
        } else {
            let x = self.to_u128().unwrap_or(0);
            let y = other.to_u128().unwrap_or(0);
            x < y
        };
        PackedVec::from_bool(r)
    }

    /// Logical AND (`&&`): 1-bit, `x` when undecidable.
    pub fn log_and(&self, other: &PackedVec) -> PackedVec {
        match (self.truthy(), other.truthy()) {
            (Some(false), _) | (_, Some(false)) => PackedVec::from_bool(false),
            (Some(true), Some(true)) => PackedVec::from_bool(true),
            _ => PackedVec::from_bit(LogicBit::X),
        }
    }

    /// Logical OR (`||`).
    pub fn log_or(&self, other: &PackedVec) -> PackedVec {
        match (self.truthy(), other.truthy()) {
            (Some(true), _) | (_, Some(true)) => PackedVec::from_bool(true),
            (Some(false), Some(false)) => PackedVec::from_bool(false),
            _ => PackedVec::from_bit(LogicBit::X),
        }
    }

    /// Logical NOT (`!`).
    pub fn log_not(&self) -> PackedVec {
        match self.truthy() {
            Some(v) => PackedVec::from_bool(!v),
            None => PackedVec::from_bit(LogicBit::X),
        }
    }

    /// AND reduction (`&a`), optionally inverted (`~&a`).
    pub fn reduce_and(&self, invert: bool) -> PackedVec {
        let (a, b) = self.planes();
        let n = a.len();
        let any_clean_zero = (0..n).any(|i| {
            let valid = if i == n - 1 { top_mask(self.width) } else { !0 };
            !(a[i] | b[i]) & valid != 0
        });
        let bit = if self.width == 0 || any_clean_zero {
            LogicBit::Zero
        } else if b.iter().any(|w| *w != 0) {
            LogicBit::X
        } else {
            LogicBit::One
        };
        PackedVec::from_bit(if invert { bit.not() } else { bit })
    }

    /// OR reduction (`|a`), optionally inverted (`~|a`).
    pub fn reduce_or(&self, invert: bool) -> PackedVec {
        let (a, b) = self.planes();
        let bit = if a.iter().zip(b).any(|(aw, bw)| aw & !bw != 0) {
            LogicBit::One
        } else if b.iter().any(|w| *w != 0) {
            LogicBit::X
        } else {
            LogicBit::Zero
        };
        PackedVec::from_bit(if invert { bit.not() } else { bit })
    }

    /// XOR reduction (`^a`), optionally inverted (`~^a`).
    pub fn reduce_xor(&self, invert: bool) -> PackedVec {
        let (a, b) = self.planes();
        let bit = if b.iter().any(|w| *w != 0) {
            LogicBit::X
        } else if a.iter().map(|w| w.count_ones()).sum::<u32>() % 2 == 1 {
            LogicBit::One
        } else {
            LogicBit::Zero
        };
        PackedVec::from_bit(if invert { bit.not() } else { bit })
    }

    /// Case-label comparison over `max(width)` bits with zero-extension.
    ///
    /// `wild_z` treats `z` on either side as a wildcard (`casez`); `wild_x`
    /// treats any unknown (`x` or `z`) as one (`casex`). With both flags
    /// false this is exact four-state equality modulo zero-extension
    /// (`case`). Wordwise: a bit mismatches when its `(aval, bval)` pair
    /// differs and it is not wild.
    pub fn matches_with_wildcards(&self, label: &PackedVec, wild_z: bool, wild_x: bool) -> bool {
        let (sa, sb) = self.planes();
        let (la, lb) = label.planes();
        let n = sa.len().max(la.len());
        for i in 0..n {
            let (sa, sb) = (
                sa.get(i).copied().unwrap_or(0),
                sb.get(i).copied().unwrap_or(0),
            );
            let (la, lb) = (
                la.get(i).copied().unwrap_or(0),
                lb.get(i).copied().unwrap_or(0),
            );
            let mut wild = 0u64;
            if wild_z {
                wild |= (!sa & sb) | (!la & lb);
            }
            if wild_x {
                wild |= sb | lb;
            }
            if ((sa ^ la) | (sb ^ lb)) & !wild != 0 {
                return false;
            }
        }
        true
    }

    /// Merges the two branches of a `cond ? a : b` whose condition is
    /// unknown: bits agree where both branches hold the same known value
    /// and are `x` elsewhere. Narrower operands contribute their top bit
    /// for positions past their width, mirroring the simulator's per-bit
    /// reference merge exactly.
    pub fn ternary_merge(&self, other: &PackedVec) -> PackedVec {
        let w = self.width.max(other.width);
        let mut out = PackedVec::xs(w);
        for i in 0..w {
            let x = self.bit(i.min(self.width.saturating_sub(1)));
            let y = other.bit(i.min(other.width.saturating_sub(1)));
            if x == y && !x.is_unknown() {
                out.set_bit(i, x);
            }
        }
        out
    }
}

/// Maximum lane count of a [`PackedBatch`]; divergence masks are one `u64`.
pub const MAX_BATCH_LANES: usize = 64;

/// A batch of `lanes` equal-width four-state vectors advanced in lockstep.
///
/// Two representations, switched transparently:
///
/// - **Uniform** — every lane holds the identical value, so operations run
///   once for all lanes. This is the common case for batched pass@k runs of
///   a deterministic design, and is where the ~R× throughput comes from.
/// - **Varied** — word-major interleaved bitplanes: word `w` of lane `l`
///   lives at index `w * lanes + l`, so the inner loop of a bitwise op
///   advances 64 bits across all R lanes over consecutive memory.
///
/// Bitwise AND/OR/XOR/XNOR/NOT are vectorized over the interleaved words
/// using the exact same plane combinators as [`PackedVec`]; every other
/// operation lifts the scalar op per lane via [`PackedBatch::map1`] /
/// [`PackedBatch::map2`], which guarantees bit-identity with sequential
/// execution by construction. [`PackedBatch::from_lanes`] re-canonicalizes
/// to `Uniform` whenever all lanes agree, so converging values fall back
/// onto the fast path.
#[derive(Debug, Clone)]
pub struct PackedBatch {
    width: usize,
    lanes: usize,
    repr: BatchRepr,
}

#[derive(Debug, Clone)]
enum BatchRepr {
    Uniform(PackedVec),
    Varied { aval: Vec<u64>, bval: Vec<u64> },
}

impl PackedBatch {
    /// Broadcasts one value to all `lanes` lanes.
    pub fn splat(value: &PackedVec, lanes: usize) -> PackedBatch {
        Self::splat_owned(value.clone(), lanes)
    }

    fn splat_owned(value: PackedVec, lanes: usize) -> PackedBatch {
        assert!((1..=MAX_BATCH_LANES).contains(&lanes));
        PackedBatch {
            width: value.width(),
            lanes,
            repr: BatchRepr::Uniform(value),
        }
    }

    /// Builds a batch from per-lane values (all widths must agree).
    /// Collapses to the uniform representation when every lane is equal.
    pub fn from_lanes(values: &[PackedVec]) -> PackedBatch {
        assert!(!values.is_empty() && values.len() <= MAX_BATCH_LANES);
        let width = values[0].width();
        assert!(values.iter().all(|v| v.width() == width));
        if values.iter().all(|v| *v == values[0]) {
            return Self::splat_owned(values[0].clone(), values.len());
        }
        let lanes = values.len();
        let n = nwords_for(width);
        let mut aval = vec![0u64; n * lanes];
        let mut bval = vec![0u64; n * lanes];
        for (l, v) in values.iter().enumerate() {
            let (pa, pb) = v.planes();
            for w in 0..n {
                aval[w * lanes + l] = pa[w];
                bval[w * lanes + l] = pb[w];
            }
        }
        PackedBatch {
            width,
            lanes,
            repr: BatchRepr::Varied { aval, bval },
        }
    }

    /// Builds a batch by evaluating `f` once per lane.
    pub fn from_fn(lanes: usize, f: impl FnMut(usize) -> PackedVec) -> PackedBatch {
        let values: Vec<PackedVec> = (0..lanes).map(f).collect();
        Self::from_lanes(&values)
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Width in bits (shared by every lane).
    pub fn width(&self) -> usize {
        self.width
    }

    /// `true` when the batch is in the uniform (all-lanes-equal) form.
    pub fn is_uniform(&self) -> bool {
        matches!(self.repr, BatchRepr::Uniform(_))
    }

    /// The shared value when uniform.
    pub fn as_uniform(&self) -> Option<&PackedVec> {
        match &self.repr {
            BatchRepr::Uniform(v) => Some(v),
            BatchRepr::Varied { .. } => None,
        }
    }

    /// Extracts lane `l` as a scalar vector.
    pub fn lane(&self, l: usize) -> PackedVec {
        assert!(l < self.lanes);
        match &self.repr {
            BatchRepr::Uniform(v) => v.clone(),
            BatchRepr::Varied { aval, bval } => {
                let n = nwords_for(self.width);
                let mut out = PackedVec::zeros(self.width);
                for w in 0..n {
                    out.aval.words_mut(n)[w] = aval[w * self.lanes + l];
                    out.bval.words_mut(n)[w] = bval[w * self.lanes + l];
                }
                out
            }
        }
    }

    /// Overwrites lane `l` (width must match the batch width).
    pub fn set_lane(&mut self, l: usize, value: &PackedVec) {
        assert!(l < self.lanes);
        assert_eq!(value.width(), self.width);
        if let BatchRepr::Uniform(v) = &self.repr {
            if v == value {
                return;
            }
        }
        self.make_varied();
        let BatchRepr::Varied { aval, bval } = &mut self.repr else {
            unreachable!()
        };
        let n = nwords_for(self.width);
        let (pa, pb) = value.planes();
        for w in 0..n {
            aval[w * self.lanes + l] = pa[w];
            bval[w * self.lanes + l] = pb[w];
        }
    }

    fn make_varied(&mut self) {
        if let BatchRepr::Uniform(v) = &self.repr {
            let n = nwords_for(self.width);
            let (pa, pb) = v.planes();
            let mut aval = vec![0u64; n * self.lanes];
            let mut bval = vec![0u64; n * self.lanes];
            for w in 0..n {
                for l in 0..self.lanes {
                    aval[w * self.lanes + l] = pa[w];
                    bval[w * self.lanes + l] = pb[w];
                }
            }
            self.repr = BatchRepr::Varied { aval, bval };
        }
    }

    /// Word `w` of lane `l` in both planes, zero past the batch width
    /// (matching the scalar canonical-zero convention).
    fn word_lane(&self, w: usize, l: usize) -> (u64, u64) {
        match &self.repr {
            BatchRepr::Uniform(v) => {
                let (pa, pb) = v.planes();
                (
                    pa.get(w).copied().unwrap_or(0),
                    pb.get(w).copied().unwrap_or(0),
                )
            }
            BatchRepr::Varied { aval, bval } => {
                if w >= nwords_for(self.width) {
                    (0, 0)
                } else {
                    (aval[w * self.lanes + l], bval[w * self.lanes + l])
                }
            }
        }
    }

    /// Lifts a unary scalar op across all lanes (one call when uniform).
    pub fn map1(&self, f: impl Fn(&PackedVec) -> PackedVec) -> PackedBatch {
        match &self.repr {
            BatchRepr::Uniform(v) => Self::splat_owned(f(v), self.lanes),
            BatchRepr::Varied { .. } => Self::from_fn(self.lanes, |l| f(&self.lane(l))),
        }
    }

    /// Lifts a binary scalar op across all lanes (one call when both
    /// operands are uniform).
    pub fn map2(
        &self,
        other: &PackedBatch,
        f: impl Fn(&PackedVec, &PackedVec) -> PackedVec,
    ) -> PackedBatch {
        assert_eq!(self.lanes, other.lanes);
        if let (BatchRepr::Uniform(a), BatchRepr::Uniform(b)) = (&self.repr, &other.repr) {
            return Self::splat_owned(f(a, b), self.lanes);
        }
        Self::from_fn(self.lanes, |l| f(&self.lane(l), &other.lane(l)))
    }

    fn binary_bitwise_batch(
        a: &PackedBatch,
        b: &PackedBatch,
        f: impl Fn(u64, u64, u64, u64) -> (u64, u64),
    ) -> PackedBatch {
        assert_eq!(a.lanes, b.lanes);
        if let (BatchRepr::Uniform(x), BatchRepr::Uniform(y)) = (&a.repr, &b.repr) {
            return Self::splat_owned(PackedVec::binary_bitwise(x, y, f), a.lanes);
        }
        let lanes = a.lanes;
        let width = a.width.max(b.width);
        let n = nwords_for(width);
        let mut oa = vec![0u64; n * lanes];
        let mut ob = vec![0u64; n * lanes];
        for w in 0..n {
            // One pass over the interleaved row advances 64 bits × R lanes.
            for l in 0..lanes {
                let (xa, xb) = a.word_lane(w, l);
                let (ya, yb) = b.word_lane(w, l);
                let (ra, rb) = f(xa, xb, ya, yb);
                oa[w * lanes + l] = ra;
                ob[w * lanes + l] = rb;
            }
        }
        if n > 0 {
            let m = top_mask(width);
            for l in 0..lanes {
                oa[(n - 1) * lanes + l] &= m;
                ob[(n - 1) * lanes + l] &= m;
            }
        }
        PackedBatch {
            width,
            lanes,
            repr: BatchRepr::Varied { aval: oa, bval: ob },
        }
    }

    /// Batched bitwise AND (vectorized over interleaved lane words).
    pub fn bit_and(&self, other: &PackedBatch) -> PackedBatch {
        Self::binary_bitwise_batch(self, other, |xa, xb, ya, yb| {
            let r_one = (xa & !xb) & (ya & !yb);
            let r_zero = (!xa & !xb) | (!ya & !yb);
            let r_x = !(r_one | r_zero);
            (r_one | r_x, r_x)
        })
    }

    /// Batched bitwise OR.
    pub fn bit_or(&self, other: &PackedBatch) -> PackedBatch {
        Self::binary_bitwise_batch(self, other, |xa, xb, ya, yb| {
            let r_one = (xa & !xb) | (ya & !yb);
            let r_zero = (!xa & !xb) & (!ya & !yb);
            let r_x = !(r_one | r_zero);
            (r_one | r_x, r_x)
        })
    }

    /// Batched bitwise XOR.
    pub fn bit_xor(&self, other: &PackedBatch) -> PackedBatch {
        Self::binary_bitwise_batch(self, other, |xa, xb, ya, yb| {
            let known = !xb & !yb;
            let val = xa ^ ya;
            ((known & val) | !known, !known)
        })
    }

    /// Batched bitwise XNOR.
    pub fn bit_xnor(&self, other: &PackedBatch) -> PackedBatch {
        Self::binary_bitwise_batch(self, other, |xa, xb, ya, yb| {
            let known = !xb & !yb;
            let val = !(xa ^ ya);
            ((known & val) | !known, !known)
        })
    }

    /// Batched bitwise NOT (`a' = !a | b`, keeping the unknown plane).
    pub fn bit_not(&self) -> PackedBatch {
        match &self.repr {
            BatchRepr::Uniform(v) => Self::splat_owned(v.bit_not(), self.lanes),
            BatchRepr::Varied { aval, bval } => {
                let n = nwords_for(self.width);
                let lanes = self.lanes;
                let mut oa = vec![0u64; n * lanes];
                for i in 0..n * lanes {
                    oa[i] = !aval[i] | bval[i];
                }
                if n > 0 {
                    let m = top_mask(self.width);
                    for l in 0..lanes {
                        oa[(n - 1) * lanes + l] &= m;
                    }
                }
                PackedBatch {
                    width: self.width,
                    lanes,
                    repr: BatchRepr::Varied {
                        aval: oa,
                        bval: bval.clone(),
                    },
                }
            }
        }
    }

    /// Truth value of lane `l` — mirrors [`PackedVec::truthy`].
    pub fn truthy_lane(&self, l: usize) -> Option<bool> {
        match &self.repr {
            BatchRepr::Uniform(v) => v.truthy(),
            BatchRepr::Varied { aval, bval } => {
                let n = nwords_for(self.width);
                let mut any_unknown = false;
                for w in 0..n {
                    let (a, b) = (aval[w * self.lanes + l], bval[w * self.lanes + l]);
                    if a & !b != 0 {
                        return Some(true);
                    }
                    if a | b != 0 {
                        any_unknown = true;
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(false)
                }
            }
        }
    }

    /// Bit `idx` of lane `l`, `x` when out of range.
    pub fn lane_bit(&self, l: usize, idx: usize) -> LogicBit {
        match &self.repr {
            BatchRepr::Uniform(v) => v.bit(idx),
            BatchRepr::Varied { aval, bval } => {
                if idx >= self.width {
                    return LogicBit::X;
                }
                let i = (idx / 64) * self.lanes + l;
                let sh = idx % 64;
                decode(aval[i] >> sh & 1 == 1, bval[i] >> sh & 1 == 1)
            }
        }
    }

    /// `true` when lane `l` of both batches holds the same value.
    pub fn lane_eq(&self, other: &PackedBatch, l: usize) -> bool {
        if self.width != other.width {
            return false;
        }
        if let (BatchRepr::Uniform(a), BatchRepr::Uniform(b)) = (&self.repr, &other.repr) {
            return a == b;
        }
        let n = nwords_for(self.width);
        (0..n).all(|w| self.word_lane(w, l) == other.word_lane(w, l))
    }

    /// Per-lane inequality mask against `other` (bit `l` set when lane `l`
    /// differs). Widths must match.
    pub fn ne_mask(&self, other: &PackedBatch) -> u64 {
        debug_assert_eq!(self.lanes, other.lanes);
        let all = Self::all_lanes_mask(self.lanes);
        if self.width != other.width {
            return all;
        }
        if let (BatchRepr::Uniform(a), BatchRepr::Uniform(b)) = (&self.repr, &other.repr) {
            return if a == b { 0 } else { all };
        }
        let mut mask = 0u64;
        for l in 0..self.lanes {
            if !self.lane_eq(other, l) {
                mask |= 1u64 << l;
            }
        }
        mask
    }

    /// Mask with the low `lanes` bits set.
    pub fn all_lanes_mask(lanes: usize) -> u64 {
        if lanes >= 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        }
    }

    /// In-place batched [`PackedVec::set_range`] from a source batch.
    pub fn set_range_batch(&mut self, lo: usize, width: usize, src: &PackedBatch) {
        assert_eq!(self.lanes, src.lanes);
        if let (BatchRepr::Uniform(dst), BatchRepr::Uniform(s)) = (&self.repr, &src.repr) {
            let mut v = dst.clone();
            v.set_range(lo, width, s);
            self.repr = BatchRepr::Uniform(v);
            return;
        }
        let updated = Self::from_fn(self.lanes, |l| {
            let mut v = self.lane(l);
            v.set_range(lo, width, &src.lane(l));
            v
        });
        *self = updated;
    }
}

impl PartialEq for PackedBatch {
    fn eq(&self, other: &Self) -> bool {
        self.lanes == other.lanes
            && self.width == other.width
            && (0..self.lanes).all(|l| self.lane_eq(other, l))
    }
}

impl From<&LogicVec> for PackedVec {
    fn from(lv: &LogicVec) -> Self {
        PackedVec::from_logic(lv)
    }
}

impl From<&PackedVec> for LogicVec {
    fn from(pv: &PackedVec) -> Self {
        pv.to_logic_vec()
    }
}

impl From<bool> for LogicVec {
    fn from(b: bool) -> Self {
        LogicVec::from_bool(b)
    }
}

impl From<u64> for LogicVec {
    fn from(v: u64) -> Self {
        LogicVec::from_u64(v, 64)
    }
}

impl FromIterator<LogicBit> for LogicVec {
    fn from_iter<I: IntoIterator<Item = LogicBit>>(iter: I) -> Self {
        LogicVec {
            bits: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_tables_match_ieee1364() {
        use LogicBit::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(Z.not(), X);
    }

    #[test]
    fn from_u64_round_trips() {
        for v in [0u64, 1, 2, 5, 255, 256, u32::MAX as u64] {
            let lv = LogicVec::from_u64(v, 64);
            assert_eq!(lv.to_u64(), Some(v));
        }
    }

    #[test]
    fn display_is_msb_first() {
        assert_eq!(LogicVec::from_u64(0b1010, 4).to_string(), "1010");
        assert_eq!(LogicVec::from_u64(1, 3).to_string(), "001");
    }

    #[test]
    fn parse_binary_handles_xz_and_underscores() {
        let v = LogicVec::parse_binary("1x_z0").unwrap();
        assert_eq!(v.width(), 4);
        assert_eq!(v.bit(0), LogicBit::Zero);
        assert_eq!(v.bit(1), LogicBit::Z);
        assert_eq!(v.bit(2), LogicBit::X);
        assert_eq!(v.bit(3), LogicBit::One);
        assert!(LogicVec::parse_binary("10a").is_none());
    }

    #[test]
    fn unknown_propagates_to_u64() {
        let v = LogicVec::parse_binary("1x").unwrap();
        assert_eq!(v.to_u64(), None);
        assert!(v.has_unknown());
    }

    #[test]
    fn truthy_semantics() {
        assert_eq!(LogicVec::parse_binary("00").unwrap().truthy(), Some(false));
        assert_eq!(LogicVec::parse_binary("x1").unwrap().truthy(), Some(true));
        assert_eq!(LogicVec::parse_binary("x0").unwrap().truthy(), None);
    }

    #[test]
    fn resize_sign_extends() {
        let v = LogicVec::from_u64(0b10, 2);
        assert_eq!(v.resize(4, false).to_string(), "0010");
        assert_eq!(v.resize(4, true).to_string(), "1110");
        assert_eq!(v.resize(1, false).to_string(), "0");
    }

    #[test]
    fn concat_orders_like_verilog() {
        // {2'b10, 2'b01} == 4'b1001
        let hi = LogicVec::from_u64(0b10, 2);
        let lo = LogicVec::from_u64(0b01, 2);
        assert_eq!(hi.concat(&lo).to_string(), "1001");
    }

    #[test]
    fn slice_extracts_lsb_first() {
        let v = LogicVec::from_u64(0b1100, 4);
        assert_eq!(v.slice(2, 2).to_string(), "11");
        assert_eq!(v.slice(3, 2).to_string(), "x1");
    }

    #[test]
    fn signed_conversion() {
        let v = LogicVec::from_u64(0b111, 3);
        assert_eq!(v.to_i64(), Some(-1));
        let v = LogicVec::from_u64(0b011, 3);
        assert_eq!(v.to_i64(), Some(3));
    }

    #[test]
    fn case_eq_distinguishes_x() {
        let a = LogicVec::parse_binary("1x").unwrap();
        let b = LogicVec::parse_binary("1x").unwrap();
        let c = LogicVec::parse_binary("10").unwrap();
        assert!(a.case_eq(&b));
        assert!(!a.case_eq(&c));
    }

    fn pv(s: &str) -> PackedVec {
        PackedVec::from_logic(&LogicVec::parse_binary(s).unwrap())
    }

    #[test]
    fn packed_round_trips_logic_vec() {
        for s in ["", "0", "1", "x", "z", "1x0z", "10110x1z001"] {
            let lv = LogicVec::parse_binary(s).unwrap();
            let pv = PackedVec::from_logic(&lv);
            assert_eq!(pv.width(), lv.width());
            assert_eq!(pv.to_logic_vec(), lv, "{s}");
            for i in 0..lv.width() + 2 {
                assert_eq!(pv.bit(i), lv.bit(i), "{s}[{i}]");
            }
        }
        // Spanning a word boundary.
        let wide: String = "10xz".chars().cycle().take(100).collect();
        let lv = LogicVec::parse_binary(&wide).unwrap();
        assert_eq!(PackedVec::from_logic(&lv).to_logic_vec(), lv);
    }

    #[test]
    fn packed_bitwise_matches_tables() {
        let a = pv("1x0z");
        let b = pv("1101");
        assert_eq!(a.bit_and(&b).to_string(), "1x0x");
        assert_eq!(a.bit_or(&b).to_string(), "1101");
        assert_eq!(a.bit_xor(&b).to_string(), "0x0x");
        assert_eq!(a.bit_not().to_string(), "0x1x");
        assert_eq!(a.bit_xnor(&b).to_string(), "1x1x");
    }

    #[test]
    fn packed_arithmetic_and_unknown_poisoning() {
        let a = PackedVec::from_u64(3, 2);
        let b = PackedVec::from_u64(1, 2);
        assert_eq!(a.add(&b).to_u64(), Some(0));
        assert_eq!(b.sub(&a).to_u64(), Some(2));
        assert!(pv("1x").add(&b).has_unknown());
        assert!(PackedVec::from_u64(5, 4)
            .div(&PackedVec::zeros(4))
            .has_unknown());
    }

    #[test]
    fn packed_shifts_and_reductions() {
        let a = PackedVec::from_u64(0b0110, 4);
        let one = PackedVec::from_u64(1, 2);
        assert_eq!(a.shl(&one).to_string(), "1100");
        assert_eq!(a.shr(&one).to_string(), "0011");
        assert_eq!(pv("1010").ashr(&one).to_string(), "1101");
        assert_eq!(pv("111").reduce_and(false).to_u64(), Some(1));
        assert_eq!(pv("101").reduce_and(false).to_u64(), Some(0));
        assert_eq!(pv("100").reduce_or(false).to_u64(), Some(1));
        assert_eq!(pv("101").reduce_xor(false).to_u64(), Some(0));
        assert_eq!(pv("101").reduce_xor(true).to_u64(), Some(1));
    }

    #[test]
    fn packed_comparisons() {
        let a = PackedVec::from_u64(3, 4);
        let b = PackedVec::from_u64(5, 4);
        assert_eq!(a.cmp_lt(&b, false).to_u64(), Some(1));
        assert_eq!(b.cmp_lt(&a, false).to_u64(), Some(0));
        let m1 = PackedVec::from_u64(0xF, 4);
        assert_eq!(m1.cmp_lt(&a, true).to_u64(), Some(1));
        assert_eq!(m1.cmp_lt(&a, false).to_u64(), Some(0));
        assert_eq!(pv("x1").log_eq(&pv("x0")).to_u64(), Some(0));
        assert!(pv("1x").log_eq(&pv("10")).has_unknown());
        assert_eq!(pv("10").log_ne(&pv("11")).to_u64(), Some(1));
        assert!(pv("1x").case_eq(&pv("1x")));
        assert!(!pv("1x").case_eq(&pv("10")));
    }

    #[test]
    fn packed_slice_concat_resize_cross_word() {
        let wide: String = "01".chars().cycle().take(150).collect();
        let lv = LogicVec::parse_binary(&wide).unwrap();
        let p = PackedVec::from_logic(&lv);
        for (lo, w) in [(0, 64), (60, 10), (63, 64), (100, 80), (149, 5)] {
            assert_eq!(
                p.slice(lo, w).to_logic_vec(),
                lv.slice(lo, w),
                "slice({lo},{w})"
            );
        }
        let hi = pv("10");
        let lo = pv("01");
        assert_eq!(hi.concat(&lo).to_string(), "1001");
        assert_eq!(p.concat(&p).width(), 300);
        assert_eq!(
            p.resize(200, true).to_logic_vec(),
            lv.resize(200, true),
            "sign-extend across words"
        );
        assert_eq!(pv("z1").resize(4, true).to_string(), "zzz1");
        assert_eq!(pv("10").replicate(3).to_string(), "101010");
    }

    #[test]
    fn packed_set_range_mirrors_per_bit_writes() {
        let mut p = PackedVec::zeros(8);
        p.set_range(2, 3, &pv("101"));
        assert_eq!(p.to_string(), "00010100");
        // Source narrower than the range x-fills, like LogicVec::bit().
        let mut p = PackedVec::zeros(4);
        p.set_range(0, 4, &pv("1"));
        assert_eq!(p.to_string(), "xxx1");
    }

    #[test]
    fn packed_wide_conversions() {
        let a = PackedVec::from_u128(u128::MAX, 100);
        assert_eq!(a.to_u128(), Some((1u128 << 100) - 1));
        assert!(a.to_u64_ext().is_none());
        assert_eq!(PackedVec::from_u64(0b111, 3).to_i64(), Some(-1));
        assert_eq!(PackedVec::from_u64(0b011, 3).to_i64(), Some(3));
        assert_eq!(pv("x0").truthy(), None);
        assert_eq!(pv("x1").truthy(), Some(true));
        assert_eq!(pv("00").truthy(), Some(false));
    }

    #[test]
    fn batch_splat_and_lanes_round_trip() {
        let v = pv("1x0z");
        let b = PackedBatch::splat(&v, 4);
        assert!(b.is_uniform());
        for l in 0..4 {
            assert_eq!(b.lane(l), v);
        }
        let vals = [pv("0001"), pv("0010"), pv("01xz"), pv("0001")];
        let b = PackedBatch::from_lanes(&vals);
        assert!(!b.is_uniform());
        for (l, v) in vals.iter().enumerate() {
            assert_eq!(b.lane(l), *v);
            assert_eq!(b.truthy_lane(l), v.truthy());
        }
        // Collapsing back to a uniform batch when all lanes agree.
        let u = PackedBatch::from_lanes(&[pv("10"), pv("10"), pv("10")]);
        assert!(u.is_uniform());
    }

    #[test]
    fn batch_bitwise_matches_scalar_per_lane() {
        let xs = [pv("1x0z1"), pv("00000"), pv("zzzzz"), pv("10101")];
        let ys = [pv("110xz"), pv("1x1x1"), pv("01010"), pv("xxxxx")];
        let bx = PackedBatch::from_lanes(&xs);
        let by = PackedBatch::from_lanes(&ys);
        for l in 0..4 {
            assert_eq!(bx.bit_and(&by).lane(l), xs[l].bit_and(&ys[l]));
            assert_eq!(bx.bit_or(&by).lane(l), xs[l].bit_or(&ys[l]));
            assert_eq!(bx.bit_xor(&by).lane(l), xs[l].bit_xor(&ys[l]));
            assert_eq!(bx.bit_xnor(&by).lane(l), xs[l].bit_xnor(&ys[l]));
            assert_eq!(bx.bit_not().lane(l), xs[l].bit_not());
        }
    }

    #[test]
    fn batch_ne_mask_and_set_lane() {
        let mut b = PackedBatch::splat(&pv("0000"), 3);
        let before = b.clone();
        assert_eq!(b.ne_mask(&before), 0);
        b.set_lane(1, &pv("0101"));
        assert_eq!(b.ne_mask(&before), 0b010);
        assert_eq!(b.lane(0), pv("0000"));
        assert_eq!(b.lane(1), pv("0101"));
        assert_eq!(b.lane_bit(1, 0), LogicBit::One);
        assert_eq!(b.lane_bit(1, 1), LogicBit::Zero);
    }

    #[test]
    fn batch_map2_lifts_arithmetic() {
        let xs = [pv("0011"), pv("0111")];
        let ys = [pv("0001"), pv("0010")];
        let b = PackedBatch::from_lanes(&xs).map2(&PackedBatch::from_lanes(&ys), |a, c| a.add(c));
        assert_eq!(b.lane(0), pv("0100"));
        assert_eq!(b.lane(1), pv("1001"));
    }
}
