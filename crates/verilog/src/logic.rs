//! Four-state logic values (`0`, `1`, `x`, `z`).
//!
//! [`LogicVec`] is the shared value representation used by the parser for
//! number literals and by the simulator for signal values. Bit 0 is the
//! least-significant bit.

use std::fmt;

/// A single four-state logic bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum LogicBit {
    /// Logic low.
    #[default]
    Zero,
    /// Logic high.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl LogicBit {
    /// Returns `true` for [`LogicBit::X`] or [`LogicBit::Z`].
    pub fn is_unknown(self) -> bool {
        matches!(self, LogicBit::X | LogicBit::Z)
    }

    /// Converts a known bit to `bool`; `x`/`z` map to `None`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LogicBit::Zero => Some(false),
            LogicBit::One => Some(true),
            _ => None,
        }
    }

    /// IEEE 1364 bitwise AND.
    pub fn and(self, other: LogicBit) -> LogicBit {
        use LogicBit::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (One, One) => One,
            _ => X,
        }
    }

    /// IEEE 1364 bitwise OR.
    pub fn or(self, other: LogicBit) -> LogicBit {
        use LogicBit::*;
        match (self, other) {
            (One, _) | (_, One) => One,
            (Zero, Zero) => Zero,
            _ => X,
        }
    }

    /// IEEE 1364 bitwise XOR.
    pub fn xor(self, other: LogicBit) -> LogicBit {
        use LogicBit::*;
        match (self, other) {
            (Zero, Zero) | (One, One) => Zero,
            (Zero, One) | (One, Zero) => One,
            _ => X,
        }
    }

    /// IEEE 1364 bitwise NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> LogicBit {
        use LogicBit::*;
        match self {
            Zero => One,
            One => Zero,
            _ => X,
        }
    }
}

impl From<bool> for LogicBit {
    fn from(b: bool) -> Self {
        if b {
            LogicBit::One
        } else {
            LogicBit::Zero
        }
    }
}

impl fmt::Display for LogicBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            LogicBit::Zero => '0',
            LogicBit::One => '1',
            LogicBit::X => 'x',
            LogicBit::Z => 'z',
        };
        write!(f, "{c}")
    }
}

/// A fixed-width vector of four-state bits, LSB first.
///
/// ```
/// use dda_verilog::logic::LogicVec;
/// let v = LogicVec::from_u64(10, 4);
/// assert_eq!(v.to_string(), "1010");
/// assert_eq!(v.to_u64(), Some(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LogicVec {
    bits: Vec<LogicBit>,
}

impl LogicVec {
    /// Creates a vector of `width` zero bits.
    pub fn zeros(width: usize) -> Self {
        LogicVec {
            bits: vec![LogicBit::Zero; width],
        }
    }

    /// Creates a vector of `width` `x` bits (the value of an uninitialised reg).
    pub fn xs(width: usize) -> Self {
        LogicVec {
            bits: vec![LogicBit::X; width],
        }
    }

    /// Creates a vector of `width` `z` bits.
    pub fn zs(width: usize) -> Self {
        LogicVec {
            bits: vec![LogicBit::Z; width],
        }
    }

    /// Creates a vector from bits, LSB first.
    pub fn from_bits(bits: Vec<LogicBit>) -> Self {
        LogicVec { bits }
    }

    /// Creates a `width`-bit vector holding `value` (truncating high bits).
    pub fn from_u64(value: u64, width: usize) -> Self {
        let bits = (0..width)
            .map(|i| {
                if i < 64 {
                    LogicBit::from(value >> i & 1 == 1)
                } else {
                    LogicBit::Zero
                }
            })
            .collect();
        LogicVec { bits }
    }

    /// Creates a 1-bit vector from a boolean.
    pub fn from_bool(b: bool) -> Self {
        LogicVec {
            bits: vec![LogicBit::from(b)],
        }
    }

    /// Creates a 1-bit vector from a logic bit.
    pub fn from_bit(b: LogicBit) -> Self {
        LogicVec { bits: vec![b] }
    }

    /// Parses a binary digit string (MSB first), accepting `0 1 x z _`.
    ///
    /// # Errors
    ///
    /// Returns `None` on any other character.
    pub fn parse_binary(s: &str) -> Option<Self> {
        let mut bits = Vec::new();
        for c in s.chars().rev() {
            match c {
                '0' => bits.push(LogicBit::Zero),
                '1' => bits.push(LogicBit::One),
                'x' | 'X' => bits.push(LogicBit::X),
                'z' | 'Z' | '?' => bits.push(LogicBit::Z),
                '_' => {}
                _ => return None,
            }
        }
        Some(LogicVec { bits })
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` when the vector has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit at `idx` (LSB = 0), or `x` when out of range.
    pub fn bit(&self, idx: usize) -> LogicBit {
        self.bits.get(idx).copied().unwrap_or(LogicBit::X)
    }

    /// Sets bit `idx`, ignoring out-of-range indices.
    pub fn set_bit(&mut self, idx: usize, b: LogicBit) {
        if let Some(slot) = self.bits.get_mut(idx) {
            *slot = b;
        }
    }

    /// The underlying bits, LSB first.
    pub fn bits(&self) -> &[LogicBit] {
        &self.bits
    }

    /// Returns `true` if any bit is `x` or `z`.
    pub fn has_unknown(&self) -> bool {
        self.bits.iter().any(|b| b.is_unknown())
    }

    /// Interprets the vector as an unsigned integer; `None` if any bit is
    /// unknown or the width exceeds 64.
    pub fn to_u64(&self) -> Option<u64> {
        if self.bits.len() > 64 {
            // Accept wider vectors whose high bits are all zero.
            if self.bits[64..].iter().any(|b| *b != LogicBit::Zero) {
                return None;
            }
        }
        let mut v = 0u64;
        for (i, b) in self.bits.iter().take(64).enumerate() {
            match b.to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    /// Interprets the vector as a signed integer (two's complement).
    pub fn to_i64(&self) -> Option<i64> {
        let w = self.bits.len().min(64);
        if w == 0 {
            return Some(0);
        }
        let raw = self.to_u64()?;
        let sign = self.bits[self.bits.len() - 1] == LogicBit::One;
        if sign && self.bits.len() <= 64 {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            Some((raw | !mask) as i64)
        } else {
            Some(raw as i64)
        }
    }

    /// Truth value for conditions: `Some(true)` if any bit is 1, `Some(false)`
    /// if all bits are 0, `None` if unknown bits prevent a decision.
    pub fn truthy(&self) -> Option<bool> {
        if self.bits.contains(&LogicBit::One) {
            return Some(true);
        }
        if self.bits.iter().all(|b| *b == LogicBit::Zero) {
            return Some(false);
        }
        None
    }

    /// Resizes to `width`, zero-extending (or sign-extending when `signed`).
    pub fn resize(&self, width: usize, signed: bool) -> LogicVec {
        let mut bits = self.bits.clone();
        let fill = if signed {
            bits.last().copied().unwrap_or(LogicBit::Zero)
        } else {
            LogicBit::Zero
        };
        bits.resize(width, fill);
        bits.truncate(width);
        LogicVec { bits }
    }

    /// Concatenates `other` below `self` (i.e. `{self, other}` in Verilog).
    pub fn concat(&self, other: &LogicVec) -> LogicVec {
        let mut bits = other.bits.clone();
        bits.extend_from_slice(&self.bits);
        LogicVec { bits }
    }

    /// Extracts bits `[lo, lo+width)`, filling out-of-range positions with `x`.
    pub fn slice(&self, lo: usize, width: usize) -> LogicVec {
        let bits = (0..width).map(|i| self.bit(lo + i)).collect();
        LogicVec { bits }
    }

    /// Case-equality (`===`): exact match including `x`/`z`.
    pub fn case_eq(&self, other: &LogicVec) -> bool {
        let w = self.width().max(other.width());
        (0..w).all(|i| {
            self.bits.get(i).copied().unwrap_or(LogicBit::Zero)
                == other.bits.get(i).copied().unwrap_or(LogicBit::Zero)
        })
    }
}

impl fmt::Display for LogicVec {
    /// Formats MSB first, as in Verilog binary literals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return write!(f, "0");
        }
        for b in self.bits.iter().rev() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl From<bool> for LogicVec {
    fn from(b: bool) -> Self {
        LogicVec::from_bool(b)
    }
}

impl From<u64> for LogicVec {
    fn from(v: u64) -> Self {
        LogicVec::from_u64(v, 64)
    }
}

impl FromIterator<LogicBit> for LogicVec {
    fn from_iter<I: IntoIterator<Item = LogicBit>>(iter: I) -> Self {
        LogicVec {
            bits: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_tables_match_ieee1364() {
        use LogicBit::*;
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(One.and(X), X);
        assert_eq!(One.or(X), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(One.xor(X), X);
        assert_eq!(X.not(), X);
        assert_eq!(Z.not(), X);
    }

    #[test]
    fn from_u64_round_trips() {
        for v in [0u64, 1, 2, 5, 255, 256, u32::MAX as u64] {
            let lv = LogicVec::from_u64(v, 64);
            assert_eq!(lv.to_u64(), Some(v));
        }
    }

    #[test]
    fn display_is_msb_first() {
        assert_eq!(LogicVec::from_u64(0b1010, 4).to_string(), "1010");
        assert_eq!(LogicVec::from_u64(1, 3).to_string(), "001");
    }

    #[test]
    fn parse_binary_handles_xz_and_underscores() {
        let v = LogicVec::parse_binary("1x_z0").unwrap();
        assert_eq!(v.width(), 4);
        assert_eq!(v.bit(0), LogicBit::Zero);
        assert_eq!(v.bit(1), LogicBit::Z);
        assert_eq!(v.bit(2), LogicBit::X);
        assert_eq!(v.bit(3), LogicBit::One);
        assert!(LogicVec::parse_binary("10a").is_none());
    }

    #[test]
    fn unknown_propagates_to_u64() {
        let v = LogicVec::parse_binary("1x").unwrap();
        assert_eq!(v.to_u64(), None);
        assert!(v.has_unknown());
    }

    #[test]
    fn truthy_semantics() {
        assert_eq!(LogicVec::parse_binary("00").unwrap().truthy(), Some(false));
        assert_eq!(LogicVec::parse_binary("x1").unwrap().truthy(), Some(true));
        assert_eq!(LogicVec::parse_binary("x0").unwrap().truthy(), None);
    }

    #[test]
    fn resize_sign_extends() {
        let v = LogicVec::from_u64(0b10, 2);
        assert_eq!(v.resize(4, false).to_string(), "0010");
        assert_eq!(v.resize(4, true).to_string(), "1110");
        assert_eq!(v.resize(1, false).to_string(), "0");
    }

    #[test]
    fn concat_orders_like_verilog() {
        // {2'b10, 2'b01} == 4'b1001
        let hi = LogicVec::from_u64(0b10, 2);
        let lo = LogicVec::from_u64(0b01, 2);
        assert_eq!(hi.concat(&lo).to_string(), "1001");
    }

    #[test]
    fn slice_extracts_lsb_first() {
        let v = LogicVec::from_u64(0b1100, 4);
        assert_eq!(v.slice(2, 2).to_string(), "11");
        assert_eq!(v.slice(3, 2).to_string(), "x1");
    }

    #[test]
    fn signed_conversion() {
        let v = LogicVec::from_u64(0b111, 3);
        assert_eq!(v.to_i64(), Some(-1));
        let v = LogicVec::from_u64(0b011, 3);
        assert_eq!(v.to_i64(), Some(3));
    }

    #[test]
    fn case_eq_distinguishes_x() {
        let a = LogicVec::parse_binary("1x").unwrap();
        let b = LogicVec::parse_binary("1x").unwrap();
        let c = LogicVec::parse_binary("10").unwrap();
        assert!(a.case_eq(&b));
        assert!(!a.case_eq(&c));
    }
}
