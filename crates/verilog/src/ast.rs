//! Abstract syntax tree for the supported Verilog subset.
//!
//! The tree is the contract between the parser and every downstream
//! consumer: the linter elaborates it, the simulator executes it, the
//! augmentation framework's program-analysis rules walk it, and the
//! pretty-printer turns it back into source text.

use crate::logic::LogicVec;
use crate::token::Span;
use std::fmt;

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ident {
    /// The name as written (escaped identifiers are stored unescaped).
    pub name: String,
    /// Where the identifier appears.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a default span (for synthesized trees).
    pub fn new(name: impl Into<String>) -> Self {
        Ident {
            name: name.into(),
            span: Span::default(),
        }
    }

    /// Creates an identifier with a span.
    pub fn spanned(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A parsed source file: zero or more module definitions plus leading
/// compiler directives.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceFile {
    /// Compiler directives seen before/between modules (e.g. `` `timescale ``).
    pub directives: Vec<String>,
    /// The modules, in source order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name.name == name)
    }
}

/// Direction of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        })
    }
}

/// Net kinds for declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
    /// `integer` (treated as a 32-bit signed reg)
    Integer,
    /// `genvar`
    Genvar,
    /// `supply0`
    Supply0,
    /// `supply1`
    Supply1,
}

impl fmt::Display for NetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
            NetKind::Integer => "integer",
            NetKind::Genvar => "genvar",
            NetKind::Supply0 => "supply0",
            NetKind::Supply1 => "supply1",
        })
    }
}

/// A `[msb:lsb]` range with unevaluated bound expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// Most-significant bound.
    pub msb: Expr,
    /// Least-significant bound.
    pub lsb: Expr,
    /// Source span of the whole range.
    pub span: Span,
}

/// A port as written in the module header.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Direction, when ANSI-style; `None` for name-only headers.
    pub dir: Option<PortDir>,
    /// `reg` marker on ANSI outputs.
    pub is_reg: bool,
    /// `signed` marker.
    pub signed: bool,
    /// Packed range, when given in the header.
    pub range: Option<Range>,
    /// Port name.
    pub name: Ident,
}

/// A parameter or localparam declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// True for `localparam`.
    pub local: bool,
    /// Optional packed range.
    pub range: Option<Range>,
    /// Name.
    pub name: Ident,
    /// Default/assigned value.
    pub value: Expr,
    /// Span of the declaration.
    pub span: Span,
}

/// A body `input`/`output`/`inout` declaration (non-ANSI style).
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Direction.
    pub dir: PortDir,
    /// `reg` marker.
    pub is_reg: bool,
    /// `signed` marker.
    pub signed: bool,
    /// Optional packed range.
    pub range: Option<Range>,
    /// Declared names.
    pub names: Vec<Ident>,
    /// Span of the declaration.
    pub span: Span,
}

/// A net/variable declaration (`wire`, `reg`, `integer`, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct NetDecl {
    /// Net kind.
    pub kind: NetKind,
    /// `signed` marker.
    pub signed: bool,
    /// Optional packed range.
    pub range: Option<Range>,
    /// Declared entries (name, optional unpacked/array dims, optional init).
    pub nets: Vec<NetInit>,
    /// Span of the declaration.
    pub span: Span,
}

/// One declarator inside a [`NetDecl`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetInit {
    /// Name.
    pub name: Ident,
    /// Unpacked (array) dimensions, e.g. memory `[0:255]`.
    pub array: Option<Range>,
    /// Initialiser (wire assignment or reg init).
    pub init: Option<Expr>,
}

/// A continuous assignment `assign lhs = rhs;`.
#[derive(Debug, Clone, PartialEq)]
pub struct ContAssign {
    /// Left-hand side (must elaborate to a net lvalue).
    pub lhs: Expr,
    /// Right-hand side.
    pub rhs: Expr,
    /// Optional `#delay`.
    pub delay: Option<Expr>,
    /// Span of the statement.
    pub span: Span,
}

/// Edge qualifier in a sensitivity list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// `posedge`
    Pos,
    /// `negedge`
    Neg,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Edge::Pos => "posedge",
            Edge::Neg => "negedge",
        })
    }
}

/// One entry of a sensitivity list.
#[derive(Debug, Clone, PartialEq)]
pub struct SensItem {
    /// Optional edge qualifier.
    pub edge: Option<Edge>,
    /// The watched expression (usually an identifier).
    pub expr: Expr,
}

/// Sensitivity of an `always` block or event control.
#[derive(Debug, Clone, PartialEq)]
pub enum Sensitivity {
    /// `@(*)` or `@*`
    Star,
    /// `@(a or posedge clk, ...)`
    List(Vec<SensItem>),
    /// Plain `always` with no event control (used with internal delays).
    None,
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq)]
pub struct AlwaysBlock {
    /// Sensitivity.
    pub sensitivity: Sensitivity,
    /// Body statement.
    pub body: Stmt,
    /// Span of `always` through the body.
    pub span: Span,
}

/// An `initial` block.
#[derive(Debug, Clone, PartialEq)]
pub struct InitialBlock {
    /// Body statement.
    pub body: Stmt,
    /// Span.
    pub span: Span,
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instantiated module name.
    pub module: Ident,
    /// `#(...)` parameter overrides: named or positional.
    pub params: Vec<Connection>,
    /// Instance name.
    pub name: Ident,
    /// Port connections: named or positional.
    pub ports: Vec<Connection>,
    /// Span.
    pub span: Span,
}

/// A parameter/port connection in an instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// Port/parameter name for named association; `None` for positional.
    pub name: Option<Ident>,
    /// Connected expression; `None` for explicitly open `.p()`.
    pub expr: Option<Expr>,
}

/// A function declaration (automatic, expression-oriented subset).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Return range (None = 1 bit).
    pub range: Option<Range>,
    /// Function name (also the return variable).
    pub name: Ident,
    /// Input arguments: (range, name).
    pub args: Vec<(Option<Range>, Ident)>,
    /// Local declarations.
    pub locals: Vec<NetDecl>,
    /// Body.
    pub body: Stmt,
    /// Span.
    pub span: Span,
}

/// Items that can appear in a module body.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum Item {
    /// Non-ANSI port declaration.
    Port(PortDecl),
    /// Net/variable declaration.
    Net(NetDecl),
    /// `parameter`/`localparam`.
    Param(ParamDecl),
    /// `assign ...;`
    Assign(ContAssign),
    /// `always ...`
    Always(AlwaysBlock),
    /// `initial ...`
    Initial(InitialBlock),
    /// Module instantiation.
    Instance(Instance),
    /// Function declaration.
    Function(FunctionDecl),
}

impl Item {
    /// Span of the item.
    pub fn span(&self) -> Span {
        match self {
            Item::Port(p) => p.span,
            Item::Net(n) => n.span,
            Item::Param(p) => p.span,
            Item::Assign(a) => a.span,
            Item::Always(a) => a.span,
            Item::Initial(i) => i.span,
            Item::Instance(i) => i.span,
            Item::Function(f) => f.span,
        }
    }
}

/// A module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: Ident,
    /// Header `#(parameter ...)` declarations.
    pub header_params: Vec<ParamDecl>,
    /// Header ports (ANSI or name-only).
    pub ports: Vec<Port>,
    /// Body items.
    pub items: Vec<Item>,
    /// Span from `module` to `endmodule`.
    pub span: Span,
}

impl Module {
    /// Iterates over the names of all header ports.
    pub fn port_names(&self) -> impl Iterator<Item = &str> {
        self.ports.iter().map(|p| p.name.name.as_str())
    }
}

/// Assignment flavour inside procedural code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignKind {
    /// `=`
    Blocking,
    /// `<=`
    NonBlocking,
}

/// One arm of a `case` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Match labels (empty for `default`).
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
}

/// Flavour of a `case` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// `case`
    Exact,
    /// `casez` (z/? are wildcards)
    Z,
    /// `casex` (x/z/? are wildcards)
    X,
}

/// Procedural statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end`, with optional block name.
    Block {
        /// Optional `: name`.
        name: Option<Ident>,
        /// Statements in order.
        stmts: Vec<Stmt>,
        /// Span.
        span: Span,
    },
    /// Procedural assignment.
    Assign {
        /// Lvalue.
        lhs: Expr,
        /// Value.
        rhs: Expr,
        /// `=` vs `<=`.
        kind: AssignKind,
        /// Intra-assignment delay `lhs = #d rhs`.
        delay: Option<Expr>,
        /// Span.
        span: Span,
    },
    /// `if (cond) then else`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_stmt: Box<Stmt>,
        /// Optional else branch.
        else_stmt: Option<Box<Stmt>>,
        /// Span.
        span: Span,
    },
    /// `case (expr) ... endcase`
    Case {
        /// Flavour.
        kind: CaseKind,
        /// Selector.
        expr: Expr,
        /// Arms, in order; `default` arms have empty labels.
        arms: Vec<CaseArm>,
        /// Span.
        span: Span,
    },
    /// `for (init; cond; step) body`
    For {
        /// Initial assignment.
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Step assignment.
        step: Box<Stmt>,
        /// Body.
        body: Box<Stmt>,
        /// Span.
        span: Span,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Span.
        span: Span,
    },
    /// `repeat (count) body`
    Repeat {
        /// Iteration count.
        count: Expr,
        /// Body.
        body: Box<Stmt>,
        /// Span.
        span: Span,
    },
    /// `forever body`
    Forever {
        /// Body.
        body: Box<Stmt>,
        /// Span.
        span: Span,
    },
    /// `#delay stmt?`
    Delay {
        /// Delay amount.
        amount: Expr,
        /// Optional controlled statement.
        stmt: Option<Box<Stmt>>,
        /// Span.
        span: Span,
    },
    /// `@(sens) stmt?`
    Event {
        /// Watched events.
        sensitivity: Sensitivity,
        /// Optional controlled statement.
        stmt: Option<Box<Stmt>>,
        /// Span.
        span: Span,
    },
    /// `wait (cond) stmt?`
    Wait {
        /// Level-sensitive condition.
        cond: Expr,
        /// Optional controlled statement.
        stmt: Option<Box<Stmt>>,
        /// Span.
        span: Span,
    },
    /// System task call, e.g. `$display(...)`.
    SysCall {
        /// Task name without `$`.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// Task enable/`disable`-style no-ops we accept but do not model.
    Null {
        /// Span.
        span: Span,
    },
}

impl Stmt {
    /// Span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Block { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Case { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Repeat { span, .. }
            | Stmt::Forever { span, .. }
            | Stmt::Delay { span, .. }
            | Stmt::Event { span, .. }
            | Stmt::Wait { span, .. }
            | Stmt::SysCall { span, .. }
            | Stmt::Null { span } => *span,
        }
    }
}

/// A parsed number literal.
#[derive(Debug, Clone, PartialEq)]
pub struct Number {
    /// Explicit width, when given (`8'hFF` → 8).
    pub width: Option<u32>,
    /// `'s` marker.
    pub signed: bool,
    /// Value bits (LSB first); x/z preserved.
    pub value: LogicVec,
    /// Original source spelling.
    pub spelling: String,
}

impl Number {
    /// Convenience: an unsized decimal number.
    pub fn from_u64(v: u64) -> Number {
        Number {
            width: None,
            signed: false,
            value: LogicVec::from_u64(v, 32),
            spelling: v.to_string(),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `+`
    Plus,
    /// `-`
    Neg,
    /// `!`
    LogicNot,
    /// `~`
    BitNot,
    /// `&`
    RedAnd,
    /// `|`
    RedOr,
    /// `^`
    RedXor,
    /// `~&`
    RedNand,
    /// `~|`
    RedNor,
    /// `~^` / `^~`
    RedXnor,
}

impl UnaryOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        use UnaryOp::*;
        match self {
            Plus => "+",
            Neg => "-",
            LogicNot => "!",
            BitNot => "~",
            RedAnd => "&",
            RedOr => "|",
            RedXor => "^",
            RedNand => "~&",
            RedNor => "~|",
            RedXnor => "~^",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Shl,
    Shr,
    AShr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    CaseEq,
    CaseNe,
    BitAnd,
    BitOr,
    BitXor,
    BitXnor,
    LogicAnd,
    LogicOr,
}

impl BinaryOp {
    /// Source spelling.
    pub fn as_str(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Pow => "**",
            Shl => "<<",
            Shr => ">>",
            AShr => ">>>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            CaseEq => "===",
            CaseNe => "!==",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            BitXnor => "~^",
            LogicAnd => "&&",
            LogicOr => "||",
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Number literal.
    Number(Number, Span),
    /// String literal (testbench format strings).
    Str(String, Span),
    /// Identifier reference.
    Ident(Ident),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// `cond ? a : b`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// `{a, b, c}`
    Concat(Vec<Expr>, Span),
    /// `{n{a}}`
    Repeat {
        /// Replication count.
        count: Box<Expr>,
        /// Replicated expressions.
        exprs: Vec<Expr>,
        /// Span.
        span: Span,
    },
    /// `base[index]` — bit select or memory word select.
    Index {
        /// Base expression (identifier in the supported subset).
        base: Box<Expr>,
        /// Index.
        index: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// `base[msb:lsb]` — constant part select.
    PartSelect {
        /// Base expression.
        base: Box<Expr>,
        /// MSB bound.
        msb: Box<Expr>,
        /// LSB bound.
        lsb: Box<Expr>,
        /// Span.
        span: Span,
    },
    /// `base[start +: width]` / `base[start -: width]`.
    IndexedPart {
        /// Base expression.
        base: Box<Expr>,
        /// Start bit.
        start: Box<Expr>,
        /// Width.
        width: Box<Expr>,
        /// True for `+:`.
        ascending: bool,
        /// Span.
        span: Span,
    },
    /// Function or system-function call (`f(x)`, `$time`).
    Call {
        /// Callee name; system functions keep their `$`.
        name: Ident,
        /// Arguments.
        args: Vec<Expr>,
        /// Span.
        span: Span,
    },
}

impl Expr {
    /// Span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Number(_, s) | Expr::Str(_, s) | Expr::Concat(_, s) => *s,
            Expr::Ident(i) => i.span,
            Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Repeat { span, .. }
            | Expr::Index { span, .. }
            | Expr::PartSelect { span, .. }
            | Expr::IndexedPart { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }

    /// If the expression is a plain identifier, its name.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident(i) => Some(&i.name),
            _ => None,
        }
    }

    /// The identifier at the root of an lvalue (`x`, `x[i]`, `x[a:b]`).
    pub fn lvalue_ident(&self) -> Option<&str> {
        match self {
            Expr::Ident(i) => Some(&i.name),
            Expr::Index { base, .. }
            | Expr::PartSelect { base, .. }
            | Expr::IndexedPart { base, .. } => base.lvalue_ident(),
            Expr::Concat(parts, _) => parts.first().and_then(|p| p.lvalue_ident()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lvalue_ident_digs_through_selects() {
        let e = Expr::Index {
            base: Box::new(Expr::Ident(Ident::new("mem"))),
            index: Box::new(Expr::Number(Number::from_u64(3), Span::default())),
            span: Span::default(),
        };
        assert_eq!(e.lvalue_ident(), Some("mem"));
    }

    #[test]
    fn module_port_names() {
        let m = Module {
            name: Ident::new("m"),
            header_params: vec![],
            ports: vec![
                Port {
                    dir: Some(PortDir::Input),
                    is_reg: false,
                    signed: false,
                    range: None,
                    name: Ident::new("a"),
                },
                Port {
                    dir: Some(PortDir::Output),
                    is_reg: true,
                    signed: false,
                    range: None,
                    name: Ident::new("y"),
                },
            ],
            items: vec![],
            span: Span::default(),
        };
        let names: Vec<_> = m.port_names().collect();
        assert_eq!(names, vec!["a", "y"]);
    }

    #[test]
    fn operators_render() {
        assert_eq!(BinaryOp::CaseEq.as_str(), "===");
        assert_eq!(UnaryOp::RedXnor.as_str(), "~^");
    }
}
