//! AST visitors.
//!
//! [`Visitor`] is the read-only walk used by the program-analysis
//! (NL-alignment) rules and by the linter's checks; `walk_*` functions drive
//! the traversal so implementations only override what they care about.

use crate::ast::*;

/// A read-only AST visitor with default walking behaviour.
///
/// Override the hooks you need; call the matching `walk_*` function inside
/// an override to continue into children.
pub trait Visitor {
    /// Called for each module before its children.
    fn visit_module(&mut self, m: &Module) {
        walk_module(self, m);
    }
    /// Called for each item before its children.
    fn visit_item(&mut self, item: &Item) {
        walk_item(self, item);
    }
    /// Called for each statement before its children.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    /// Called for each expression before its children.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
}

/// Walks all modules of a source file.
pub fn walk_source<V: Visitor + ?Sized>(v: &mut V, sf: &SourceFile) {
    for m in &sf.modules {
        v.visit_module(m);
    }
}

/// Walks a module's parameters, port ranges, and items.
pub fn walk_module<V: Visitor + ?Sized>(v: &mut V, m: &Module) {
    for p in &m.header_params {
        v.visit_expr(&p.value);
    }
    for p in &m.ports {
        if let Some(r) = &p.range {
            v.visit_expr(&r.msb);
            v.visit_expr(&r.lsb);
        }
    }
    for item in &m.items {
        v.visit_item(item);
    }
}

/// Walks an item's children.
pub fn walk_item<V: Visitor + ?Sized>(v: &mut V, item: &Item) {
    match item {
        Item::Port(p) => {
            if let Some(r) = &p.range {
                v.visit_expr(&r.msb);
                v.visit_expr(&r.lsb);
            }
        }
        Item::Net(n) => {
            if let Some(r) = &n.range {
                v.visit_expr(&r.msb);
                v.visit_expr(&r.lsb);
            }
            for ni in &n.nets {
                if let Some(a) = &ni.array {
                    v.visit_expr(&a.msb);
                    v.visit_expr(&a.lsb);
                }
                if let Some(e) = &ni.init {
                    v.visit_expr(e);
                }
            }
        }
        Item::Param(p) => v.visit_expr(&p.value),
        Item::Assign(a) => {
            v.visit_expr(&a.lhs);
            v.visit_expr(&a.rhs);
        }
        Item::Always(a) => {
            if let Sensitivity::List(items) = &a.sensitivity {
                for s in items {
                    v.visit_expr(&s.expr);
                }
            }
            v.visit_stmt(&a.body);
        }
        Item::Initial(i) => v.visit_stmt(&i.body),
        Item::Instance(inst) => {
            for c in inst.params.iter().chain(&inst.ports) {
                if let Some(e) = &c.expr {
                    v.visit_expr(e);
                }
            }
        }
        Item::Function(f) => {
            for l in &f.locals {
                v.visit_item(&Item::Net(l.clone()));
            }
            v.visit_stmt(&f.body);
        }
    }
}

/// Walks a statement's children.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match s {
        Stmt::Block { stmts, .. } => {
            for st in stmts {
                v.visit_stmt(st);
            }
        }
        Stmt::Assign {
            lhs, rhs, delay, ..
        } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
            if let Some(d) = delay {
                v.visit_expr(d);
            }
        }
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
            ..
        } => {
            v.visit_expr(cond);
            v.visit_stmt(then_stmt);
            if let Some(e) = else_stmt {
                v.visit_stmt(e);
            }
        }
        Stmt::Case { expr, arms, .. } => {
            v.visit_expr(expr);
            for arm in arms {
                for l in &arm.labels {
                    v.visit_expr(l);
                }
                v.visit_stmt(&arm.body);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            v.visit_stmt(init);
            v.visit_expr(cond);
            v.visit_stmt(step);
            v.visit_stmt(body);
        }
        Stmt::While { cond, body, .. } => {
            v.visit_expr(cond);
            v.visit_stmt(body);
        }
        Stmt::Repeat { count, body, .. } => {
            v.visit_expr(count);
            v.visit_stmt(body);
        }
        Stmt::Forever { body, .. } => v.visit_stmt(body),
        Stmt::Delay { amount, stmt, .. } => {
            v.visit_expr(amount);
            if let Some(s) = stmt {
                v.visit_stmt(s);
            }
        }
        Stmt::Event {
            sensitivity, stmt, ..
        } => {
            if let Sensitivity::List(items) = sensitivity {
                for it in items {
                    v.visit_expr(&it.expr);
                }
            }
            if let Some(s) = stmt {
                v.visit_stmt(s);
            }
        }
        Stmt::Wait { cond, stmt, .. } => {
            v.visit_expr(cond);
            if let Some(s) = stmt {
                v.visit_stmt(s);
            }
        }
        Stmt::SysCall { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        Stmt::Null { .. } => {}
    }
}

/// Walks an expression's children.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match e {
        Expr::Number(..) | Expr::Str(..) | Expr::Ident(_) => {}
        Expr::Unary { expr, .. } => v.visit_expr(expr),
        Expr::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            v.visit_expr(cond);
            v.visit_expr(then_expr);
            v.visit_expr(else_expr);
        }
        Expr::Concat(parts, _) => {
            for p in parts {
                v.visit_expr(p);
            }
        }
        Expr::Repeat { count, exprs, .. } => {
            v.visit_expr(count);
            for p in exprs {
                v.visit_expr(p);
            }
        }
        Expr::Index { base, index, .. } => {
            v.visit_expr(base);
            v.visit_expr(index);
        }
        Expr::PartSelect { base, msb, lsb, .. } => {
            v.visit_expr(base);
            v.visit_expr(msb);
            v.visit_expr(lsb);
        }
        Expr::IndexedPart {
            base, start, width, ..
        } => {
            v.visit_expr(base);
            v.visit_expr(start);
            v.visit_expr(width);
        }
        Expr::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
    }
}

/// Collects every identifier referenced in an expression tree.
///
/// ```
/// let e = dda_verilog::parser::parse_expr("a + b[i]").unwrap();
/// let ids = dda_verilog::visit::collect_idents(&e);
/// assert_eq!(ids, vec!["a", "b", "i"]);
/// ```
pub fn collect_idents(e: &Expr) -> Vec<String> {
    struct C(Vec<String>);
    impl Visitor for C {
        fn visit_expr(&mut self, e: &Expr) {
            if let Expr::Ident(i) = e {
                self.0.push(i.name.clone());
            }
            walk_expr(self, e);
        }
    }
    let mut c = C(Vec::new());
    c.visit_expr(e);
    c.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn counts_assignments() {
        struct Count(usize);
        impl Visitor for Count {
            fn visit_stmt(&mut self, s: &Stmt) {
                if matches!(s, Stmt::Assign { .. }) {
                    self.0 += 1;
                }
                walk_stmt(self, s);
            }
        }
        let sf = parse(
            "module m(input clk, output reg a, b);\n\
             always @(posedge clk) begin a <= 1'b0; if (a) b <= 1'b1; end\n\
             endmodule",
        )
        .unwrap();
        let mut c = Count(0);
        walk_source(&mut c, &sf);
        assert_eq!(c.0, 2);
    }

    #[test]
    fn collect_idents_finds_all() {
        let e = crate::parser::parse_expr("x ? {y, z[w]} : ~v").unwrap();
        let ids = collect_idents(&e);
        assert_eq!(ids, vec!["x", "y", "z", "w", "v"]);
    }
}
