//! Tokens and source spans produced by the [lexer](crate::lexer).

use std::fmt;

/// A half-open byte range into the original source, with line/column of the
/// start position (1-based, as EDA tools report them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span covering `[start, end)` at `line:col`.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A span that covers both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            col: if other.line < self.line {
                other.col
            } else {
                self.col
            },
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Verilog keywords recognised by the lexer.
///
/// The set covers the synthesizable subset plus the testbench constructs the
/// [simulator](https://docs.rs/dda-sim) executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Real,
    Time,
    Genvar,
    Parameter,
    Localparam,
    Assign,
    Always,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Casex,
    Endcase,
    Default,
    For,
    While,
    Repeat,
    Forever,
    Posedge,
    Negedge,
    Or,
    And,
    Not,
    Signed,
    Unsigned,
    Function,
    Endfunction,
    Task,
    Endtask,
    Generate,
    Endgenerate,
    Wait,
    Disable,
    Supply0,
    Supply1,
    Timescale,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "module" => Module,
            "endmodule" => Endmodule,
            "input" => Input,
            "output" => Output,
            "inout" => Inout,
            "wire" => Wire,
            "reg" => Reg,
            "integer" => Integer,
            "real" => Real,
            "time" => Time,
            "genvar" => Genvar,
            "parameter" => Parameter,
            "localparam" => Localparam,
            "assign" => Assign,
            "always" => Always,
            "initial" => Initial,
            "begin" => Begin,
            "end" => End,
            "if" => If,
            "else" => Else,
            "case" => Case,
            "casez" => Casez,
            "casex" => Casex,
            "endcase" => Endcase,
            "default" => Default,
            "for" => For,
            "while" => While,
            "repeat" => Repeat,
            "forever" => Forever,
            "posedge" => Posedge,
            "negedge" => Negedge,
            "or" => Or,
            "and" => And,
            "not" => Not,
            "signed" => Signed,
            "unsigned" => Unsigned,
            "function" => Function,
            "endfunction" => Endfunction,
            "task" => Task,
            "endtask" => Endtask,
            "generate" => Generate,
            "endgenerate" => Endgenerate,
            "wait" => Wait,
            "disable" => Disable,
            "supply0" => Supply0,
            "supply1" => Supply1,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Module => "module",
            Endmodule => "endmodule",
            Input => "input",
            Output => "output",
            Inout => "inout",
            Wire => "wire",
            Reg => "reg",
            Integer => "integer",
            Real => "real",
            Time => "time",
            Genvar => "genvar",
            Parameter => "parameter",
            Localparam => "localparam",
            Assign => "assign",
            Always => "always",
            Initial => "initial",
            Begin => "begin",
            End => "end",
            If => "if",
            Else => "else",
            Case => "case",
            Casez => "casez",
            Casex => "casex",
            Endcase => "endcase",
            Default => "default",
            For => "for",
            While => "while",
            Repeat => "repeat",
            Forever => "forever",
            Posedge => "posedge",
            Negedge => "negedge",
            Or => "or",
            And => "and",
            Not => "not",
            Signed => "signed",
            Unsigned => "unsigned",
            Function => "function",
            Endfunction => "endfunction",
            Task => "task",
            Endtask => "endtask",
            Generate => "generate",
            Endgenerate => "endgenerate",
            Wait => "wait",
            Disable => "disable",
            Supply0 => "supply0",
            Supply1 => "supply1",
            Timescale => "`timescale",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A keyword such as `module`.
    Keyword(Keyword),
    /// An identifier (including escaped identifiers, stored without `\`).
    Ident(String),
    /// A system identifier such as `$display` (stored without `$`).
    SysIdent(String),
    /// A number literal in source spelling, e.g. `8'hFF` or `42`.
    Number(String),
    /// A string literal (contents, unescaped).
    Str(String),
    /// An operator or punctuation, e.g. `<=`, `(`, `===`.
    Op(&'static str),
    /// A compiler directive such as `` `timescale 1ns/1ps `` (entire line).
    Directive(String),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Source-like rendering of the token (used in diagnostics and in
    /// token-level dataset generation).
    pub fn render(&self) -> String {
        match self {
            TokenKind::Keyword(k) => k.as_str().to_owned(),
            TokenKind::Ident(s) => s.clone(),
            TokenKind::SysIdent(s) => format!("${s}"),
            TokenKind::Number(s) => s.clone(),
            TokenKind::Str(s) => format!("\"{s}\""),
            TokenKind::Op(s) => (*s).to_owned(),
            TokenKind::Directive(s) => s.clone(),
            TokenKind::Eof => "<eof>".to_owned(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }

    /// True when the token is the given operator.
    pub fn is_op(&self, op: &str) -> bool {
        matches!(&self.kind, TokenKind::Op(o) if *o == op)
    }

    /// True when the token is the given keyword.
    pub fn is_kw(&self, kw: Keyword) -> bool {
        matches!(&self.kind, TokenKind::Keyword(k) if *k == kw)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Module,
            Keyword::Endmodule,
            Keyword::Casez,
            Keyword::Posedge,
            Keyword::Localparam,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("modul"), None);
    }

    #[test]
    fn span_join() {
        let a = Span::new(0, 3, 1, 1);
        let b = Span::new(10, 12, 2, 4);
        let j = a.to(b);
        assert_eq!(j.start, 0);
        assert_eq!(j.end, 12);
        assert_eq!(j.line, 1);
    }

    #[test]
    fn token_render() {
        assert_eq!(TokenKind::SysIdent("display".into()).render(), "$display");
        assert_eq!(TokenKind::Op("<=").render(), "<=");
        assert_eq!(TokenKind::Str("hi".into()).render(), "\"hi\"");
    }
}
