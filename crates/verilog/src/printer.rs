//! Pretty-printer: turns an AST back into formatted Verilog source.
//!
//! The printer is deterministic, so `parse(print(ast))` round-trips to the
//! same tree (modulo spans). It is used by the corpus generator and by the
//! repair-mutation engine to materialise mutated trees.

use crate::ast::*;

/// Renders a source file.
pub fn print_source(sf: &SourceFile) -> String {
    let mut out = String::new();
    for d in &sf.directives {
        out.push_str(d);
        out.push('\n');
    }
    for (i, m) in sf.modules.iter().enumerate() {
        if i > 0 || !sf.directives.is_empty() {
            out.push('\n');
        }
        out.push_str(&print_module(m));
    }
    out
}

/// Renders a single module.
pub fn print_module(m: &Module) -> String {
    let mut p = Printer::new();
    p.module(m);
    p.out
}

/// Renders a statement at indent level 0 (useful in tests and datasets).
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s);
    p.out
}

/// Renders an expression.
pub fn print_expr(e: &Expr) -> String {
    expr_str(e, 0)
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn module(&mut self, m: &Module) {
        let mut header = format!("module {}", m.name);
        if !m.header_params.is_empty() {
            let ps: Vec<String> = m
                .header_params
                .iter()
                .map(|p| {
                    format!(
                        "parameter {}{} = {}",
                        range_str(&p.range),
                        p.name,
                        expr_str(&p.value, 0)
                    )
                })
                .collect();
            header.push_str(&format!(" #({})", ps.join(", ")));
        }
        if !m.ports.is_empty() {
            let ps: Vec<String> = {
                let mut rendered = Vec::new();
                let mut prev: Option<&Port> = None;
                for p in &m.ports {
                    rendered.push(port_str(p, prev));
                    prev = Some(p);
                }
                rendered
            };
            if m.ports.iter().any(|p| p.dir.is_some()) {
                header.push_str(" (\n");
                for (i, p) in ps.iter().enumerate() {
                    let sep = if i + 1 == ps.len() { "" } else { "," };
                    header.push_str(&format!("  {p}{sep}\n"));
                }
                header.push(')');
            } else {
                header.push_str(&format!(" ({})", ps.join(", ")));
            }
        }
        header.push(';');
        self.line(&header);
        self.indent += 1;
        for item in &m.items {
            self.item(item);
        }
        self.indent -= 1;
        self.line("endmodule");
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Port(p) => {
                let names: Vec<&str> = p.names.iter().map(|n| n.name.as_str()).collect();
                self.line(&format!(
                    "{}{}{}{}{};",
                    p.dir,
                    if p.is_reg { " reg" } else { "" },
                    if p.signed { " signed" } else { "" },
                    prefixed_range(&p.range),
                    format_args!(" {}", names.join(", "))
                ));
            }
            Item::Net(n) => {
                let nets: Vec<String> = n
                    .nets
                    .iter()
                    .map(|ni| {
                        let mut s = ni.name.name.clone();
                        if let Some(a) = &ni.array {
                            s.push_str(&format!(
                                " [{}:{}]",
                                expr_str(&a.msb, 0),
                                expr_str(&a.lsb, 0)
                            ));
                        }
                        if let Some(e) = &ni.init {
                            s.push_str(&format!(" = {}", expr_str(e, 0)));
                        }
                        s
                    })
                    .collect();
                self.line(&format!(
                    "{}{}{} {};",
                    n.kind,
                    if n.signed { " signed" } else { "" },
                    prefixed_range(&n.range),
                    nets.join(", ")
                ));
            }
            Item::Param(p) => {
                self.line(&format!(
                    "{} {}{} = {};",
                    if p.local { "localparam" } else { "parameter" },
                    range_str(&p.range),
                    p.name,
                    expr_str(&p.value, 0)
                ));
            }
            Item::Assign(a) => {
                let delay = a
                    .delay
                    .as_ref()
                    .map(|d| format!("#{} ", expr_str(d, 0)))
                    .unwrap_or_default();
                self.line(&format!(
                    "assign {}{} = {};",
                    delay,
                    expr_str(&a.lhs, 0),
                    expr_str(&a.rhs, 0)
                ));
            }
            Item::Always(a) => {
                let sens = sens_str(&a.sensitivity);
                self.line(&format!("always {sens}"));
                self.indent += 1;
                self.stmt(&a.body);
                self.indent -= 1;
            }
            Item::Initial(i) => {
                self.line("initial");
                self.indent += 1;
                self.stmt(&i.body);
                self.indent -= 1;
            }
            Item::Instance(inst) => {
                let params = if inst.params.is_empty() {
                    String::new()
                } else {
                    format!(" #({})", conns_str(&inst.params))
                };
                self.line(&format!(
                    "{}{} {} ({});",
                    inst.module,
                    params,
                    inst.name,
                    conns_str(&inst.ports)
                ));
            }
            Item::Function(f) => {
                self.line(&format!("function {}{};", range_str(&f.range), f.name));
                self.indent += 1;
                for (r, n) in &f.args {
                    self.line(&format!("input{} {};", prefixed_range(r), n));
                }
                for l in &f.locals {
                    self.item(&Item::Net(l.clone()));
                }
                self.stmt(&f.body);
                self.indent -= 1;
                self.line("endfunction");
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Block { name, stmts, .. } => {
                match name {
                    Some(n) => self.line(&format!("begin : {n}")),
                    None => self.line("begin"),
                }
                self.indent += 1;
                for st in stmts {
                    self.stmt(st);
                }
                self.indent -= 1;
                self.line("end");
            }
            Stmt::Assign {
                lhs,
                rhs,
                kind,
                delay,
                ..
            } => {
                let op = match kind {
                    AssignKind::Blocking => "=",
                    AssignKind::NonBlocking => "<=",
                };
                let d = delay
                    .as_ref()
                    .map(|d| format!("#{} ", expr_str(d, 0)))
                    .unwrap_or_default();
                self.line(&format!(
                    "{} {} {}{};",
                    expr_str(lhs, 0),
                    op,
                    d,
                    expr_str(rhs, 0)
                ));
            }
            Stmt::If {
                cond,
                then_stmt,
                else_stmt,
                ..
            } => {
                self.line(&format!("if ({})", expr_str(cond, 0)));
                self.indent += 1;
                self.stmt(then_stmt);
                self.indent -= 1;
                if let Some(e) = else_stmt {
                    self.line("else");
                    self.indent += 1;
                    self.stmt(e);
                    self.indent -= 1;
                }
            }
            Stmt::Case {
                kind, expr, arms, ..
            } => {
                let kw = match kind {
                    CaseKind::Exact => "case",
                    CaseKind::Z => "casez",
                    CaseKind::X => "casex",
                };
                self.line(&format!("{kw} ({})", expr_str(expr, 0)));
                self.indent += 1;
                for arm in arms {
                    if arm.labels.is_empty() {
                        self.line("default:");
                    } else {
                        let labels: Vec<String> =
                            arm.labels.iter().map(|l| expr_str(l, 0)).collect();
                        self.line(&format!("{}:", labels.join(", ")));
                    }
                    self.indent += 1;
                    self.stmt(&arm.body);
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line("endcase");
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.line(&format!(
                    "for ({}; {}; {})",
                    inline_assign(init),
                    expr_str(cond, 0),
                    inline_assign(step)
                ));
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::While { cond, body, .. } => {
                self.line(&format!("while ({})", expr_str(cond, 0)));
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::Repeat { count, body, .. } => {
                self.line(&format!("repeat ({})", expr_str(count, 0)));
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::Forever { body, .. } => {
                self.line("forever");
                self.indent += 1;
                self.stmt(body);
                self.indent -= 1;
            }
            Stmt::Delay { amount, stmt, .. } => match stmt {
                Some(s) if is_simple(s) => {
                    let inner = print_stmt(s);
                    self.line(&format!("#{} {}", expr_str(amount, 0), inner.trim()));
                }
                Some(s) => {
                    self.line(&format!("#{}", expr_str(amount, 0)));
                    self.indent += 1;
                    self.stmt(s);
                    self.indent -= 1;
                }
                None => self.line(&format!("#{};", expr_str(amount, 0))),
            },
            Stmt::Event {
                sensitivity, stmt, ..
            } => match stmt {
                Some(s) if is_simple(s) => {
                    let inner = print_stmt(s);
                    self.line(&format!("{} {}", sens_str(sensitivity), inner.trim()));
                }
                Some(s) => {
                    self.line(&sens_str(sensitivity));
                    self.indent += 1;
                    self.stmt(s);
                    self.indent -= 1;
                }
                None => self.line(&format!("{};", sens_str(sensitivity))),
            },
            Stmt::Wait { cond, stmt, .. } => match stmt {
                Some(s) => {
                    self.line(&format!("wait ({})", expr_str(cond, 0)));
                    self.indent += 1;
                    self.stmt(s);
                    self.indent -= 1;
                }
                None => self.line(&format!("wait ({});", expr_str(cond, 0))),
            },
            Stmt::SysCall { name, args, .. } => {
                if args.is_empty() {
                    self.line(&format!("${name};"));
                } else {
                    let a: Vec<String> = args.iter().map(|e| expr_str(e, 0)).collect();
                    self.line(&format!("${name}({});", a.join(", ")));
                }
            }
            Stmt::Null { .. } => self.line(";"),
        }
    }
}

fn is_simple(s: &Stmt) -> bool {
    matches!(
        s,
        Stmt::Assign { .. } | Stmt::SysCall { .. } | Stmt::Null { .. }
    )
}

fn inline_assign(s: &Stmt) -> String {
    if let Stmt::Assign { lhs, rhs, kind, .. } = s {
        let op = match kind {
            AssignKind::Blocking => "=",
            AssignKind::NonBlocking => "<=",
        };
        format!("{} {} {}", expr_str(lhs, 0), op, expr_str(rhs, 0))
    } else {
        print_stmt(s).trim().trim_end_matches(';').to_owned()
    }
}

fn port_str(p: &Port, prev: Option<&Port>) -> String {
    match p.dir {
        Some(dir) => {
            // Collapse repeated identical declarations like the parser accepts.
            let same_as_prev = prev.is_some_and(|q| {
                q.dir == p.dir && q.is_reg == p.is_reg && q.signed == p.signed && q.range == p.range
            });
            if same_as_prev {
                p.name.name.clone()
            } else {
                format!(
                    "{}{}{}{} {}",
                    dir,
                    if p.is_reg { " reg" } else { "" },
                    if p.signed { " signed" } else { "" },
                    prefixed_range(&p.range),
                    p.name
                )
            }
        }
        None => p.name.name.clone(),
    }
}

fn range_str(r: &Option<Range>) -> String {
    match r {
        Some(r) => format!("[{}:{}] ", expr_str(&r.msb, 0), expr_str(&r.lsb, 0)),
        None => String::new(),
    }
}

fn prefixed_range(r: &Option<Range>) -> String {
    match r {
        Some(r) => format!(" [{}:{}]", expr_str(&r.msb, 0), expr_str(&r.lsb, 0)),
        None => String::new(),
    }
}

fn sens_str(s: &Sensitivity) -> String {
    match s {
        Sensitivity::Star => "@(*)".to_owned(),
        Sensitivity::None => String::new(),
        Sensitivity::List(items) => {
            let parts: Vec<String> = items
                .iter()
                .map(|i| match i.edge {
                    Some(e) => format!("{e} {}", expr_str(&i.expr, 0)),
                    None => expr_str(&i.expr, 0),
                })
                .collect();
            format!("@({})", parts.join(" or "))
        }
    }
}

fn conns_str(conns: &[Connection]) -> String {
    let parts: Vec<String> = conns
        .iter()
        .map(|c| match (&c.name, &c.expr) {
            (Some(n), Some(e)) => format!(".{n}({})", expr_str(e, 0)),
            (Some(n), None) => format!(".{n}()"),
            (None, Some(e)) => expr_str(e, 0),
            (None, None) => String::new(),
        })
        .collect();
    parts.join(", ")
}

/// Binding power used to decide parenthesisation.
fn binop_level(op: BinaryOp) -> u8 {
    use BinaryOp::*;
    match op {
        LogicOr => 1,
        LogicAnd => 2,
        BitOr => 3,
        BitXor | BitXnor => 4,
        BitAnd => 5,
        Eq | Ne | CaseEq | CaseNe => 6,
        Lt | Le | Gt | Ge => 7,
        Shl | Shr | AShr => 8,
        Add | Sub => 9,
        Mul | Div | Mod => 10,
        Pow => 11,
    }
}

fn expr_str(e: &Expr, parent_level: u8) -> String {
    match e {
        Expr::Number(n, _) => n.spelling.clone(),
        Expr::Str(s, _) => format!(
            "\"{}\"",
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        ),
        Expr::Ident(i) => i.name.clone(),
        Expr::Unary { op, expr, .. } => {
            format!("{}{}", op.as_str(), expr_str(expr, 12))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let lvl = binop_level(*op);
            let s = format!(
                "{} {} {}",
                expr_str(lhs, lvl),
                op.as_str(),
                expr_str(rhs, lvl + 1)
            );
            if lvl < parent_level {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
            ..
        } => {
            let s = format!(
                "{} ? {} : {}",
                expr_str(cond, 1),
                expr_str(then_expr, 0),
                expr_str(else_expr, 0)
            );
            if parent_level > 0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Concat(parts, _) => {
            let ps: Vec<String> = parts.iter().map(|p| expr_str(p, 0)).collect();
            format!("{{{}}}", ps.join(", "))
        }
        Expr::Repeat { count, exprs, .. } => {
            let ps: Vec<String> = exprs.iter().map(|p| expr_str(p, 0)).collect();
            format!("{{{}{{{}}}}}", expr_str(count, 0), ps.join(", "))
        }
        Expr::Index { base, index, .. } => {
            format!("{}[{}]", expr_str(base, 12), expr_str(index, 0))
        }
        Expr::PartSelect { base, msb, lsb, .. } => format!(
            "{}[{}:{}]",
            expr_str(base, 12),
            expr_str(msb, 0),
            expr_str(lsb, 0)
        ),
        Expr::IndexedPart {
            base,
            start,
            width,
            ascending,
            ..
        } => format!(
            "{}[{} {}: {}]",
            expr_str(base, 12),
            expr_str(start, 0),
            if *ascending { "+" } else { "-" },
            expr_str(width, 0)
        ),
        Expr::Call { name, args, .. } => {
            if args.is_empty() {
                name.name.clone()
            } else {
                let a: Vec<String> = args.iter().map(|x| expr_str(x, 0)).collect();
                format!("{}({})", name, a.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) {
        let sf1 = parse(src).expect("first parse");
        let printed = print_source(&sf1);
        let sf2 = parse(&printed).unwrap_or_else(|e| {
            panic!("reparse failed: {e}\nprinted:\n{printed}");
        });
        let reprinted = print_source(&sf2);
        assert_eq!(printed, reprinted, "printer must be a fixed point");
    }

    #[test]
    fn round_trips_counter() {
        round_trip(
            "module counter(clk, rst, en, count);\n\
             input clk, rst, en;\n\
             output reg [1:0] count;\n\
             always @(posedge clk)\n\
               if (rst) count <= 2'd0;\n\
               else if (en) count <= count + 2'd1;\n\
             endmodule",
        );
    }

    #[test]
    fn round_trips_testbench() {
        round_trip(
            "`timescale 1ns/1ps\n\
             module tb;\n\
             reg clk = 0; wire [3:0] q;\n\
             dut u(.clk(clk), .q(q));\n\
             always #5 clk = ~clk;\n\
             initial begin #100 $display(\"q=%d\", q); $finish; end\n\
             endmodule",
        );
    }

    #[test]
    fn round_trips_expressions() {
        round_trip(
            "module m(input [7:0] a, b, output [7:0] y, output p);\n\
             assign y = (a + b) * 8'd2 - {4'b0, a[7:4]};\n\
             assign p = ^y | &a & |b;\n\
             endmodule",
        );
    }

    #[test]
    fn precedence_parens_preserved() {
        let e = crate::parser::parse_expr("(a + b) * c").unwrap();
        assert_eq!(print_expr(&e), "(a + b) * c");
        let e = crate::parser::parse_expr("a + b * c").unwrap();
        assert_eq!(print_expr(&e), "a + b * c");
    }

    #[test]
    fn ternary_parenthesised_in_operand() {
        let e = crate::parser::parse_expr("x & (s ? a : b)").unwrap();
        assert_eq!(print_expr(&e), "x & (s ? a : b)");
    }

    #[test]
    fn round_trips_case_and_for() {
        round_trip(
            "module m(input [1:0] s, output reg [3:0] y);\n\
             integer i;\n\
             always @(*) begin\n\
               case (s)\n\
                 2'b00: y = 4'd1;\n\
                 default: y = 4'd0;\n\
               endcase\n\
               for (i = 0; i < 4; i = i + 1) y[i] = y[i] ^ s[0];\n\
             end\n\
             endmodule",
        );
    }

    #[test]
    fn round_trips_functions_and_instances() {
        round_trip(
            "module m(input [7:0] a, output [7:0] y);\n\
             function [7:0] inc; input [7:0] v; inc = v + 8'd1; endfunction\n\
             sub #(.W(8)) u (.a(a), .y(y));\n\
             endmodule\n\
             module sub #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);\n\
             assign y = a;\n\
             endmodule",
        );
    }
}
