//! # dda-verilog
//!
//! Verilog front-end for the `chipdda` design-data augmentation framework:
//! a hand-written [lexer], a recursive-descent [parser] for a broad
//! synthesizable-plus-testbench subset, a typed [AST](ast), a deterministic
//! [pretty-printer](printer), and [visitors](visit).
//!
//! This crate plays the role ANTLR4 plays in the paper *"Data is all you
//! need"* (DAC 2024): it turns Verilog source into a syntax tree that the
//! program-analysis rules, the mutation engine, the linter, and the
//! simulator all share.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), dda_verilog::parser::ParseError> {
//! let src = "module counter(input clk, rst, output reg [1:0] count);\n\
//!            always @(posedge clk) if (rst) count <= 2'd0; else count <= count + 2'd1;\n\
//!            endmodule";
//! let file = dda_verilog::parse(src)?;
//! let module = &file.modules[0];
//! assert_eq!(module.name.name, "counter");
//! // Round-trip through the printer:
//! let printed = dda_verilog::printer::print_source(&file);
//! assert!(printed.starts_with("module counter"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod consteval;
pub mod lexer;
pub mod logic;
pub mod parser;
pub mod printer;
pub mod token;
pub mod visit;

pub use ast::{Expr, Item, Module, SourceFile, Stmt};
pub use lexer::lex;
pub use logic::{LogicBit, LogicVec, PackedBatch, PackedVec, MAX_BATCH_LANES};
pub use parser::{parse, parse_expr, ParseError};
pub use token::{Span, Token, TokenKind};
