//! Hand-written Verilog lexer.
//!
//! Produces a flat [`Token`] stream with byte-accurate [`Span`]s. Comments
//! and whitespace are skipped; compiler directives (`` `timescale `` etc.)
//! are kept as single [`TokenKind::Directive`] tokens so the pretty-printer
//! can round-trip them.

use crate::token::{Keyword, Span, Token, TokenKind};
use std::error::Error;
use std::fmt;

/// Error produced when the lexer meets a character it cannot tokenize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// Location of the character.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character `{}` at {}",
            self.ch.escape_default(),
            self.span
        )
    }
}

impl Error for LexError {}

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<<", ">>>", "===", "!==", "**", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "+:", "-:",
    "~&", "~|", "~^", "^~", "=>", "->", "(", ")", "[", "]", "{", "}", ";", ",", ".", ":", "?", "@",
    "#", "=", "+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^",
];

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }
}

/// Lexes `src` into tokens (without a trailing EOF token).
///
/// # Errors
///
/// Returns [`LexError`] on characters outside the Verilog lexical grammar,
/// e.g. a stray backtick-free `` ` `` or non-ASCII punctuation.
///
/// ```
/// # fn main() -> Result<(), dda_verilog::lexer::LexError> {
/// let toks = dda_verilog::lexer::lex("assign y = a & b;")?;
/// assert_eq!(toks.len(), 7);
/// # Ok(())
/// # }
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    'outer: loop {
        // Skip whitespace.
        while matches!(cur.peek(), Some(c) if c.is_whitespace()) {
            cur.bump();
        }
        let Some(c) = cur.peek() else { break };
        // Comments.
        if c == '/' && cur.peek2() == Some('/') {
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == '/' && cur.peek2() == Some('*') {
            cur.bump();
            cur.bump();
            loop {
                match cur.peek() {
                    Some('*') if cur.peek2() == Some('/') => {
                        cur.bump();
                        cur.bump();
                        break;
                    }
                    Some(_) => {
                        cur.bump();
                    }
                    None => break,
                }
            }
            continue;
        }
        let (start, line, col) = cur.here();
        // Compiler directive: consume to end of line.
        if c == '`' {
            while let Some(c) = cur.peek() {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            let text = src[start..cur.pos].trim_end().to_owned();
            out.push(Token::new(
                TokenKind::Directive(text),
                Span::new(start, cur.pos, line, col),
            ));
            continue;
        }
        // String literal.
        if c == '"' {
            cur.bump();
            let mut s = String::new();
            loop {
                match cur.bump() {
                    Some('"') | None => break,
                    Some('\\') => match cur.bump() {
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('\\') => s.push('\\'),
                        Some('"') => s.push('"'),
                        Some(other) => {
                            s.push('\\');
                            s.push(other);
                        }
                        None => break,
                    },
                    Some(other) => s.push(other),
                }
            }
            out.push(Token::new(
                TokenKind::Str(s),
                Span::new(start, cur.pos, line, col),
            ));
            continue;
        }
        // System identifier.
        if c == '$' {
            cur.bump();
            let mut name = String::new();
            while matches!(cur.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                name.push(cur.bump().unwrap());
            }
            out.push(Token::new(
                TokenKind::SysIdent(name),
                Span::new(start, cur.pos, line, col),
            ));
            continue;
        }
        // Escaped identifier: `\` up to whitespace.
        if c == '\\' {
            cur.bump();
            let mut name = String::new();
            while matches!(cur.peek(), Some(c) if !c.is_whitespace()) {
                name.push(cur.bump().unwrap());
            }
            out.push(Token::new(
                TokenKind::Ident(name),
                Span::new(start, cur.pos, line, col),
            ));
            continue;
        }
        // Number: decimal digits, optionally a based literal. A based literal
        // may also start with `'` directly (width inferred).
        if c.is_ascii_digit() || (c == '\'' && is_base_char(cur.peek2())) {
            let mut text = String::new();
            while matches!(cur.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                text.push(cur.bump().unwrap());
            }
            if cur.peek() == Some('\'') && is_base_char(cur.peek2()) {
                text.push(cur.bump().unwrap()); // '
                                                // optional signed marker
                if matches!(cur.peek(), Some('s') | Some('S')) {
                    text.push(cur.bump().unwrap());
                }
                if let Some(b) = cur.peek() {
                    text.push(cur.bump().unwrap());
                    let _ = b;
                }
                while matches!(cur.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '?')
                {
                    text.push(cur.bump().unwrap());
                }
            } else if cur.peek() == Some('.')
                && matches!(cur.peek2(), Some(d) if d.is_ascii_digit())
            {
                // Real literal.
                text.push(cur.bump().unwrap());
                while matches!(cur.peek(), Some(c) if c.is_ascii_digit() || c == '_') {
                    text.push(cur.bump().unwrap());
                }
            }
            out.push(Token::new(
                TokenKind::Number(text),
                Span::new(start, cur.pos, line, col),
            ));
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut name = String::new();
            while matches!(cur.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '$')
            {
                name.push(cur.bump().unwrap());
            }
            let kind = match Keyword::from_str(&name) {
                Some(kw) => TokenKind::Keyword(kw),
                None => TokenKind::Ident(name),
            };
            out.push(Token::new(kind, Span::new(start, cur.pos, line, col)));
            continue;
        }
        // Operators, longest match first.
        for op in OPERATORS {
            if cur.starts_with(op) {
                for _ in 0..op.len() {
                    cur.bump();
                }
                out.push(Token::new(
                    TokenKind::Op(op),
                    Span::new(start, cur.pos, line, col),
                ));
                continue 'outer;
            }
        }
        return Err(LexError {
            ch: c,
            span: Span::new(start, start + c.len_utf8(), line, col),
        });
    }
    Ok(out)
}

fn is_base_char(c: Option<char>) -> bool {
    matches!(
        c,
        Some('b')
            | Some('B')
            | Some('o')
            | Some('O')
            | Some('d')
            | Some('D')
            | Some('h')
            | Some('H')
            | Some('s')
            | Some('S')
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_module_header() {
        let toks = kinds("module m(input a, output reg [1:0] b);");
        assert_eq!(toks[0], TokenKind::Keyword(Keyword::Module));
        assert_eq!(toks[1], TokenKind::Ident("m".into()));
        assert!(toks.contains(&TokenKind::Op("[")));
        assert_eq!(*toks.last().unwrap(), TokenKind::Op(";"));
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("a // line\n/* block\n comment */ b");
        assert_eq!(
            toks,
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn lexes_based_literals() {
        let toks = kinds("8'hFF 'b10x1 4'd12 2'sb11 13");
        let nums: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Number(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["8'hFF", "'b10x1", "4'd12", "2'sb11", "13"]);
    }

    #[test]
    fn lexes_real_literal() {
        let toks = kinds("3.14");
        assert_eq!(toks, vec![TokenKind::Number("3.14".into())]);
    }

    #[test]
    fn maximal_munch_on_operators() {
        let toks = kinds("a<=b <<< c === d !== e");
        let ops: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Op(o) => Some(*o),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["<=", "<<<", "===", "!=="]);
    }

    #[test]
    fn lexes_system_tasks_and_strings() {
        let toks = kinds(r#"$display("err %d\n", x);"#);
        assert_eq!(toks[0], TokenKind::SysIdent("display".into()));
        assert_eq!(toks[2], TokenKind::Str("err %d\n".into()));
    }

    #[test]
    fn directive_is_one_token() {
        let toks = kinds("`timescale 1ns/1ps\nmodule m; endmodule");
        assert!(matches!(&toks[0], TokenKind::Directive(d) if d.starts_with("`timescale")));
        assert_eq!(toks[1], TokenKind::Keyword(Keyword::Module));
    }

    #[test]
    fn spans_have_lines_and_columns() {
        let toks = lex("module m;\n  wire w;\nendmodule").unwrap();
        let wire = toks.iter().find(|t| t.is_kw(Keyword::Wire)).unwrap();
        assert_eq!(wire.span.line, 2);
        assert_eq!(wire.span.col, 3);
    }

    #[test]
    fn escaped_identifier() {
        let toks = kinds(r"\bus[0] rest");
        assert_eq!(toks[0], TokenKind::Ident("bus[0]".into()));
        assert_eq!(toks[1], TokenKind::Ident("rest".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("module \u{00A7}").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_skipped() {
        let toks = kinds("a /* never closed");
        assert_eq!(toks, vec![TokenKind::Ident("a".into())]);
    }
}
