//! Recursive-descent parser for the supported Verilog subset.
//!
//! The parser accepts both ANSI (`module m(input a, output reg [1:0] b);`)
//! and non-ANSI (`module m(a, b); input a; ...`) headers, parameterised
//! modules, procedural code with event/delay controls, instantiations and
//! testbench system tasks.
//!
//! Errors carry the offending token and span; the linter renders them in
//! yosys style (``ERROR: syntax error, unexpected '...'``).

use crate::ast::*;
use crate::lexer::{lex, LexError};
use crate::logic::{LogicBit, LogicVec};
use crate::token::{Keyword, Span, Token, TokenKind};
use std::error::Error;
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the failure happened.
    pub span: Span,
    /// Source rendering of the unexpected token.
    pub found: String,
    /// What the parser was expecting (free text).
    pub expected: String,
}

impl ParseError {
    fn new(tok: &Token, expected: impl Into<String>) -> Self {
        ParseError {
            span: tok.span,
            found: tok.kind.render(),
            expected: expected.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syntax error at {}: unexpected `{}`, expecting {}",
            self.span, self.found, self.expected
        )
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            span: e.span,
            found: e.ch.to_string(),
            expected: "a Verilog token".into(),
        }
    }
}

/// Parses a complete source file.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered; like yosys, parsing stops at
/// the first syntax error.
///
/// ```
/// # fn main() -> Result<(), dda_verilog::parser::ParseError> {
/// let sf = dda_verilog::parse("module m(input a, output y); assign y = ~a; endmodule")?;
/// assert_eq!(sf.modules[0].name.name, "m");
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<SourceFile, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens).source_file()
}

/// Parses a single expression (used by tests and the mutation engine).
///
/// # Errors
///
/// Returns a [`ParseError`] when `src` is not a well-formed expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Hard ceiling on combined expression/statement nesting depth.
///
/// Each bracketed expression level costs two units (`expr` + `unary_expr`),
/// so this admits ~32 levels of parentheses/concatenation — far beyond any
/// real RTL — while keeping the recursive descent (whose debug-build frames
/// are large: `Expr` is returned by value through twelve precedence levels)
/// inside a 2 MiB test-thread stack. Untrusted input past the limit gets a
/// [`ParseError`] instead of a stack overflow (which would abort the
/// process and cannot be isolated with `catch_unwind`).
const MAX_NESTING: usize = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    eof: Token,
    depth: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        let end = tokens.last().map(|t| t.span).unwrap_or_default();
        Parser {
            tokens,
            pos: 0,
            eof: Token::new(TokenKind::Eof, end),
            depth: 0,
        }
    }

    /// Runs `f` `weight` nesting units deeper, failing fast at
    /// [`MAX_NESTING`]. Statement recursion charges double because its
    /// debug-build stack frames are roughly twice the size of the
    /// expression chain's.
    fn nested_weighted<T>(
        &mut self,
        weight: usize,
        f: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        if self.depth + weight > MAX_NESTING {
            return Err(ParseError::new(
                self.peek(),
                format!("shallower nesting (depth limit {MAX_NESTING} reached)"),
            ));
        }
        self.depth += weight;
        let out = f(self);
        self.depth -= weight;
        out
    }

    /// Runs `f` one nesting unit deeper.
    fn nested<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        self.nested_weighted(1, f)
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&self.eof)
    }

    fn bump(&mut self) -> &Token {
        let i = self.pos;
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        self.tokens.get(i).unwrap_or(&self.eof)
    }

    fn at_op(&self, op: &str) -> bool {
        self.peek().is_op(op)
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        self.peek().is_kw(kw)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.at_op(op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &'static str) -> Result<&Token, ParseError> {
        if self.at_op(op) {
            Ok(self.bump())
        } else {
            Err(ParseError::new(self.peek(), format!("`{op}`")))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<&Token, ParseError> {
        if self.at_kw(kw) {
            Ok(self.bump())
        } else {
            Err(ParseError::new(self.peek(), format!("`{}`", kw.as_str())))
        }
    }

    fn expect_ident(&mut self) -> Result<Ident, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.peek().span;
                self.bump();
                Ok(Ident::spanned(name, span))
            }
            _ => Err(ParseError::new(self.peek(), "an identifier")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek().kind, TokenKind::Eof) && self.pos >= self.tokens.len() {
            Ok(())
        } else {
            Err(ParseError::new(self.peek(), "end of input"))
        }
    }

    // ---------------------------------------------------------------- file

    fn source_file(&mut self) -> Result<SourceFile, ParseError> {
        let mut sf = SourceFile::default();
        loop {
            match &self.peek().kind {
                TokenKind::Directive(d) => {
                    sf.directives.push(d.clone());
                    self.bump();
                }
                TokenKind::Keyword(Keyword::Module) => sf.modules.push(self.module()?),
                TokenKind::Eof => break,
                _ => {
                    if self.pos >= self.tokens.len() {
                        break;
                    }
                    return Err(ParseError::new(self.peek(), "`module`"));
                }
            }
        }
        Ok(sf)
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        let start = self.expect_kw(Keyword::Module)?.span;
        let name = self.expect_ident()?;
        let mut header_params = Vec::new();
        if self.eat_op("#") {
            self.expect_op("(")?;
            loop {
                self.eat_kw(Keyword::Parameter);
                let range = self.opt_range()?;
                let pname = self.expect_ident()?;
                self.expect_op("=")?;
                let value = self.expr()?;
                let span = pname.span.to(value.span());
                header_params.push(ParamDecl {
                    local: false,
                    range,
                    name: pname,
                    value,
                    span,
                });
                if !self.eat_op(",") {
                    break;
                }
            }
            self.expect_op(")")?;
        }
        let mut ports = Vec::new();
        if self.eat_op("(") {
            if !self.at_op(")") {
                loop {
                    ports.push(self.header_port(ports.last())?);
                    if !self.eat_op(",") {
                        break;
                    }
                }
            }
            self.expect_op(")")?;
        }
        self.expect_op(";")?;
        let mut items = Vec::new();
        while !self.at_kw(Keyword::Endmodule) {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return Err(ParseError::new(self.peek(), "`endmodule`"));
            }
            if let TokenKind::Directive(_) = self.peek().kind {
                self.bump();
                continue;
            }
            self.item(&mut items)?;
        }
        let end = self.expect_kw(Keyword::Endmodule)?.span;
        Ok(Module {
            name,
            header_params,
            ports,
            items,
            span: start.to(end),
        })
    }

    /// One port in the header; inherits direction/range from the previous
    /// port when only a name is given after an ANSI-style entry, per IEEE
    /// 1364 list-of-port-declarations rules.
    fn header_port(&mut self, prev: Option<&Port>) -> Result<Port, ParseError> {
        let dir = match &self.peek().kind {
            TokenKind::Keyword(Keyword::Input) => {
                self.bump();
                Some(PortDir::Input)
            }
            TokenKind::Keyword(Keyword::Output) => {
                self.bump();
                Some(PortDir::Output)
            }
            TokenKind::Keyword(Keyword::Inout) => {
                self.bump();
                Some(PortDir::Inout)
            }
            _ => None,
        };
        let explicit = dir.is_some();
        let is_reg = if explicit {
            let r = self.eat_kw(Keyword::Reg);
            if !r {
                self.eat_kw(Keyword::Wire);
            }
            r
        } else {
            false
        };
        let signed = if explicit {
            self.eat_kw(Keyword::Signed)
        } else {
            false
        };
        let range = if explicit { self.opt_range()? } else { None };
        let name = self.expect_ident()?;
        if explicit {
            Ok(Port {
                dir,
                is_reg,
                signed,
                range,
                name,
            })
        } else if let Some(p) = prev.filter(|p| p.dir.is_some()) {
            // `input a, b` — b inherits the declaration of a.
            Ok(Port {
                dir: p.dir,
                is_reg: p.is_reg,
                signed: p.signed,
                range: p.range.clone(),
                name,
            })
        } else {
            // Non-ANSI header: just the name.
            Ok(Port {
                dir: None,
                is_reg: false,
                signed: false,
                range: None,
                name,
            })
        }
    }

    fn opt_range(&mut self) -> Result<Option<Range>, ParseError> {
        if !self.at_op("[") {
            return Ok(None);
        }
        let start = self.bump().span;
        let msb = self.expr()?;
        self.expect_op(":")?;
        let lsb = self.expr()?;
        let end = self.expect_op("]")?.span;
        Ok(Some(Range {
            msb,
            lsb,
            span: start.to(end),
        }))
    }

    // --------------------------------------------------------------- items

    fn item(&mut self, items: &mut Vec<Item>) -> Result<(), ParseError> {
        let item = self.item_one(items)?;
        if let Some(item) = item {
            items.push(item);
        }
        Ok(())
    }

    /// Parses one item; multi-declarator `parameter a = 1, b = 2;` pushes
    /// extras directly and returns `None` handled by the caller.
    fn item_one(&mut self, items: &mut Vec<Item>) -> Result<Option<Item>, ParseError> {
        let kw = match &self.peek().kind {
            TokenKind::Keyword(kw) => *kw,
            TokenKind::Ident(_) => return Ok(Some(Item::Instance(self.instance()?))),
            _ => return Err(ParseError::new(self.peek(), "a module item")),
        };
        match kw {
            Keyword::Input | Keyword::Output | Keyword::Inout => {
                Ok(Some(Item::Port(self.port_decl()?)))
            }
            Keyword::Wire
            | Keyword::Reg
            | Keyword::Integer
            | Keyword::Genvar
            | Keyword::Supply0
            | Keyword::Supply1 => Ok(Some(Item::Net(self.net_decl()?))),
            Keyword::Parameter | Keyword::Localparam => {
                for p in self.param_decls()? {
                    items.push(Item::Param(p));
                }
                Ok(None)
            }
            Keyword::Assign => Ok(Some(Item::Assign(self.cont_assign()?))),
            Keyword::Always => Ok(Some(Item::Always(self.always_block()?))),
            Keyword::Initial => {
                let start = self.bump().span;
                let body = self.stmt()?;
                let span = start.to(body.span());
                Ok(Some(Item::Initial(InitialBlock { body, span })))
            }
            Keyword::Function => Ok(Some(Item::Function(self.function_decl()?))),
            Keyword::Task => {
                // Tasks are accepted and skipped (not modelled).
                let start = self.bump().span;
                while !self.at_kw(Keyword::Endtask) {
                    if matches!(self.peek().kind, TokenKind::Eof) {
                        return Err(ParseError::new(self.peek(), "`endtask`"));
                    }
                    self.bump();
                }
                let end = self.bump().span;
                Ok(Some(Item::Initial(InitialBlock {
                    body: Stmt::Null {
                        span: start.to(end),
                    },
                    span: start.to(end),
                })))
            }
            Keyword::And | Keyword::Or | Keyword::Not => {
                Ok(Some(Item::Instance(self.gate_instance()?)))
            }
            _ => Err(ParseError::new(self.peek(), "a module item")),
        }
    }

    fn port_decl(&mut self) -> Result<PortDecl, ParseError> {
        let tok = self.bump();
        let start = tok.span;
        let dir = match tok.kind {
            TokenKind::Keyword(Keyword::Input) => PortDir::Input,
            TokenKind::Keyword(Keyword::Output) => PortDir::Output,
            TokenKind::Keyword(Keyword::Inout) => PortDir::Inout,
            _ => unreachable!("caller checked the keyword"),
        };
        let is_reg = self.eat_kw(Keyword::Reg);
        if !is_reg {
            self.eat_kw(Keyword::Wire);
        }
        let signed = self.eat_kw(Keyword::Signed);
        let range = self.opt_range()?;
        let mut names = vec![self.expect_ident()?];
        while self.eat_op(",") {
            names.push(self.expect_ident()?);
        }
        let end = self.expect_op(";")?.span;
        Ok(PortDecl {
            dir,
            is_reg,
            signed,
            range,
            names,
            span: start.to(end),
        })
    }

    fn net_decl(&mut self) -> Result<NetDecl, ParseError> {
        let tok = self.bump();
        let start = tok.span;
        let kind = match tok.kind {
            TokenKind::Keyword(Keyword::Wire) => NetKind::Wire,
            TokenKind::Keyword(Keyword::Reg) => NetKind::Reg,
            TokenKind::Keyword(Keyword::Integer) => NetKind::Integer,
            TokenKind::Keyword(Keyword::Genvar) => NetKind::Genvar,
            TokenKind::Keyword(Keyword::Supply0) => NetKind::Supply0,
            TokenKind::Keyword(Keyword::Supply1) => NetKind::Supply1,
            _ => unreachable!("caller checked the keyword"),
        };
        let signed = self.eat_kw(Keyword::Signed);
        let range = self.opt_range()?;
        let mut nets = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let array = self.opt_range()?;
            let init = if self.eat_op("=") {
                Some(self.expr()?)
            } else {
                None
            };
            nets.push(NetInit { name, array, init });
            if !self.eat_op(",") {
                break;
            }
        }
        let end = self.expect_op(";")?.span;
        Ok(NetDecl {
            kind,
            signed,
            range,
            nets,
            span: start.to(end),
        })
    }

    fn param_decls(&mut self) -> Result<Vec<ParamDecl>, ParseError> {
        let tok = self.bump();
        let start = tok.span;
        let local = matches!(tok.kind, TokenKind::Keyword(Keyword::Localparam));
        let range = self.opt_range()?;
        let mut out = Vec::new();
        loop {
            let name = self.expect_ident()?;
            self.expect_op("=")?;
            let value = self.expr()?;
            out.push(ParamDecl {
                local,
                range: range.clone(),
                name,
                value,
                span: start,
            });
            if !self.eat_op(",") {
                break;
            }
        }
        let end = self.expect_op(";")?.span;
        for p in &mut out {
            p.span = start.to(end);
        }
        Ok(out)
    }

    fn cont_assign(&mut self) -> Result<ContAssign, ParseError> {
        let start = self.expect_kw(Keyword::Assign)?.span;
        let delay = if self.eat_op("#") {
            Some(self.delay_value()?)
        } else {
            None
        };
        let lhs = self.lvalue()?;
        self.expect_op("=")?;
        let rhs = self.expr()?;
        let end = self.expect_op(";")?.span;
        Ok(ContAssign {
            lhs,
            rhs,
            delay,
            span: start.to(end),
        })
    }

    fn always_block(&mut self) -> Result<AlwaysBlock, ParseError> {
        let start = self.expect_kw(Keyword::Always)?.span;
        let sensitivity = if self.at_op("@") {
            self.bump();
            self.sensitivity()?
        } else {
            Sensitivity::None
        };
        let body = self.stmt()?;
        let span = start.to(body.span());
        Ok(AlwaysBlock {
            sensitivity,
            body,
            span,
        })
    }

    fn sensitivity(&mut self) -> Result<Sensitivity, ParseError> {
        if self.eat_op("*") {
            return Ok(Sensitivity::Star);
        }
        self.expect_op("(")?;
        if self.eat_op("*") {
            self.expect_op(")")?;
            return Ok(Sensitivity::Star);
        }
        let mut items = Vec::new();
        loop {
            let edge = if self.eat_kw(Keyword::Posedge) {
                Some(Edge::Pos)
            } else if self.eat_kw(Keyword::Negedge) {
                Some(Edge::Neg)
            } else {
                None
            };
            let expr = self.expr()?;
            items.push(SensItem { edge, expr });
            if self.eat_op(",") || self.eat_kw(Keyword::Or) {
                continue;
            }
            break;
        }
        self.expect_op(")")?;
        Ok(Sensitivity::List(items))
    }

    fn function_decl(&mut self) -> Result<FunctionDecl, ParseError> {
        let start = self.expect_kw(Keyword::Function)?.span;
        self.eat_kw(Keyword::Signed);
        let range = self.opt_range()?;
        let name = self.expect_ident()?;
        let mut args = Vec::new();
        let mut locals = Vec::new();
        if self.eat_op("(") {
            // ANSI-style argument list.
            if !self.at_op(")") {
                loop {
                    self.expect_kw(Keyword::Input)?;
                    self.eat_kw(Keyword::Signed);
                    let r = self.opt_range()?;
                    let n = self.expect_ident()?;
                    args.push((r, n));
                    if !self.eat_op(",") {
                        break;
                    }
                }
            }
            self.expect_op(")")?;
        }
        self.expect_op(";")?;
        // Classic-style declarations before the body.
        loop {
            if self.at_kw(Keyword::Input) {
                let pd = self.port_decl()?;
                for n in pd.names {
                    args.push((pd.range.clone(), n));
                }
            } else if self.at_kw(Keyword::Reg) || self.at_kw(Keyword::Integer) {
                locals.push(self.net_decl()?);
            } else {
                break;
            }
        }
        let body = self.stmt()?;
        let end = self.expect_kw(Keyword::Endfunction)?.span;
        Ok(FunctionDecl {
            range,
            name,
            args,
            locals,
            body,
            span: start.to(end),
        })
    }

    fn gate_instance(&mut self) -> Result<Instance, ParseError> {
        let tok = self.bump();
        let start = tok.span;
        let gate = match tok.kind {
            TokenKind::Keyword(Keyword::And) => "and",
            TokenKind::Keyword(Keyword::Or) => "or",
            TokenKind::Keyword(Keyword::Not) => "not",
            _ => unreachable!("caller checked the keyword"),
        };
        let name = if let TokenKind::Ident(_) = self.peek().kind {
            self.expect_ident()?
        } else {
            Ident::spanned(format!("{gate}_inst"), start)
        };
        self.expect_op("(")?;
        let mut ports = Vec::new();
        if !self.at_op(")") {
            loop {
                ports.push(Connection {
                    name: None,
                    expr: Some(self.expr()?),
                });
                if !self.eat_op(",") {
                    break;
                }
            }
        }
        self.expect_op(")")?;
        let end = self.expect_op(";")?.span;
        Ok(Instance {
            module: Ident::spanned(gate, start),
            params: Vec::new(),
            name,
            ports,
            span: start.to(end),
        })
    }

    fn instance(&mut self) -> Result<Instance, ParseError> {
        let module = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat_op("#") {
            self.expect_op("(")?;
            params = self.connections()?;
            self.expect_op(")")?;
        }
        let name = self.expect_ident()?;
        self.expect_op("(")?;
        let ports = self.connections()?;
        self.expect_op(")")?;
        let end = self.expect_op(";")?.span;
        Ok(Instance {
            span: module.span.to(end),
            module,
            params,
            name,
            ports,
        })
    }

    fn connections(&mut self) -> Result<Vec<Connection>, ParseError> {
        let mut out = Vec::new();
        if self.at_op(")") {
            return Ok(out);
        }
        loop {
            if self.eat_op(".") {
                let name = self.expect_ident()?;
                self.expect_op("(")?;
                let expr = if self.at_op(")") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_op(")")?;
                out.push(Connection {
                    name: Some(name),
                    expr,
                });
            } else {
                out.push(Connection {
                    name: None,
                    expr: Some(self.expr()?),
                });
            }
            if !self.eat_op(",") {
                break;
            }
        }
        Ok(out)
    }

    // ---------------------------------------------------------- statements

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.nested_weighted(2, Self::stmt_inner)
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        /// What the next token starts, copied out of the peeked token so
        /// the arms below can borrow the parser mutably. Only the system
        /// task name is owned — everything else is `Copy`.
        enum Head {
            Kw(Keyword),
            Op(&'static str),
            Sys(String),
            AssignStart,
        }
        let head = match &self.peek().kind {
            TokenKind::Keyword(k) => Head::Kw(*k),
            TokenKind::Op(o) => Head::Op(o),
            TokenKind::SysIdent(name) => Head::Sys(name.clone()),
            TokenKind::Ident(_) => Head::AssignStart,
            _ => return Err(ParseError::new(self.peek(), "a statement")),
        };
        match head {
            Head::Kw(Keyword::Begin) => {
                let start = self.bump().span;
                let name = if self.eat_op(":") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                let mut stmts = Vec::new();
                while !self.at_kw(Keyword::End) {
                    if matches!(self.peek().kind, TokenKind::Eof) {
                        return Err(ParseError::new(self.peek(), "`end`"));
                    }
                    stmts.push(self.stmt()?);
                }
                let end = self.bump().span;
                Ok(Stmt::Block {
                    name,
                    stmts,
                    span: start.to(end),
                })
            }
            Head::Kw(Keyword::If) => {
                let start = self.bump().span;
                self.expect_op("(")?;
                let cond = self.expr()?;
                self.expect_op(")")?;
                let then_stmt = Box::new(self.stmt()?);
                let (else_stmt, end) = if self.eat_kw(Keyword::Else) {
                    let s = self.stmt()?;
                    let sp = s.span();
                    (Some(Box::new(s)), sp)
                } else {
                    (None, then_stmt.span())
                };
                Ok(Stmt::If {
                    cond,
                    then_stmt,
                    else_stmt,
                    span: start.to(end),
                })
            }
            Head::Kw(k @ (Keyword::Case | Keyword::Casez | Keyword::Casex)) => {
                let kind = match k {
                    Keyword::Case => CaseKind::Exact,
                    Keyword::Casez => CaseKind::Z,
                    _ => CaseKind::X,
                };
                let start = self.bump().span;
                self.expect_op("(")?;
                let expr = self.expr()?;
                self.expect_op(")")?;
                let mut arms = Vec::new();
                while !self.at_kw(Keyword::Endcase) {
                    if matches!(self.peek().kind, TokenKind::Eof) {
                        return Err(ParseError::new(self.peek(), "`endcase`"));
                    }
                    let labels = if self.eat_kw(Keyword::Default) {
                        self.eat_op(":");
                        Vec::new()
                    } else {
                        let mut labels = vec![self.expr()?];
                        while self.eat_op(",") {
                            labels.push(self.expr()?);
                        }
                        self.expect_op(":")?;
                        labels
                    };
                    let body = self.stmt()?;
                    arms.push(CaseArm { labels, body });
                }
                let end = self.bump().span;
                Ok(Stmt::Case {
                    kind,
                    expr,
                    arms,
                    span: start.to(end),
                })
            }
            Head::Kw(Keyword::For) => {
                let start = self.bump().span;
                self.expect_op("(")?;
                let init = Box::new(self.plain_assign()?);
                self.expect_op(";")?;
                let cond = self.expr()?;
                self.expect_op(";")?;
                let step = Box::new(self.plain_assign()?);
                self.expect_op(")")?;
                let body = Box::new(self.stmt()?);
                let span = start.to(body.span());
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                })
            }
            Head::Kw(Keyword::While) => {
                let start = self.bump().span;
                self.expect_op("(")?;
                let cond = self.expr()?;
                self.expect_op(")")?;
                let body = Box::new(self.stmt()?);
                let span = start.to(body.span());
                Ok(Stmt::While { cond, body, span })
            }
            Head::Kw(Keyword::Repeat) => {
                let start = self.bump().span;
                self.expect_op("(")?;
                let count = self.expr()?;
                self.expect_op(")")?;
                let body = Box::new(self.stmt()?);
                let span = start.to(body.span());
                Ok(Stmt::Repeat { count, body, span })
            }
            Head::Kw(Keyword::Forever) => {
                let start = self.bump().span;
                let body = Box::new(self.stmt()?);
                let span = start.to(body.span());
                Ok(Stmt::Forever { body, span })
            }
            Head::Kw(Keyword::Wait) => {
                let start = self.bump().span;
                self.expect_op("(")?;
                let cond = self.expr()?;
                self.expect_op(")")?;
                let (stmt, end) = self.opt_controlled_stmt(start)?;
                Ok(Stmt::Wait {
                    cond,
                    stmt,
                    span: start.to(end),
                })
            }
            Head::Kw(Keyword::Disable) => {
                let start = self.bump().span;
                let _ = self.expect_ident()?;
                let end = self.expect_op(";")?.span;
                Ok(Stmt::Null {
                    span: start.to(end),
                })
            }
            Head::Op("#") => {
                let start = self.bump().span;
                let amount = self.delay_value()?;
                let (stmt, end) = self.opt_controlled_stmt(start)?;
                Ok(Stmt::Delay {
                    amount,
                    stmt,
                    span: start.to(end),
                })
            }
            Head::Op("@") => {
                let start = self.bump().span;
                let sensitivity = self.sensitivity()?;
                let (stmt, end) = self.opt_controlled_stmt(start)?;
                Ok(Stmt::Event {
                    sensitivity,
                    stmt,
                    span: start.to(end),
                })
            }
            Head::Op(";") => {
                let span = self.bump().span;
                Ok(Stmt::Null { span })
            }
            Head::Sys(name) => {
                let start = self.bump().span;
                let mut args = Vec::new();
                if self.eat_op("(") {
                    if !self.at_op(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_op(",") {
                                break;
                            }
                        }
                    }
                    self.expect_op(")")?;
                }
                let end = self.expect_op(";")?.span;
                Ok(Stmt::SysCall {
                    name,
                    args,
                    span: start.to(end),
                })
            }
            Head::AssignStart | Head::Op("{") => self.assign_stmt(),
            _ => Err(ParseError::new(self.peek(), "a statement")),
        }
    }

    fn opt_controlled_stmt(
        &mut self,
        start: Span,
    ) -> Result<(Option<Box<Stmt>>, Span), ParseError> {
        if self.eat_op(";") {
            Ok((None, start))
        } else {
            let s = self.stmt()?;
            let sp = s.span();
            Ok((Some(Box::new(s)), sp))
        }
    }

    /// `lhs = rhs` or `lhs <= rhs` without the trailing semicolon (for-loop
    /// init/step position).
    fn plain_assign(&mut self) -> Result<Stmt, ParseError> {
        let lhs = self.lvalue()?;
        let (kind, _) = self.assign_op()?;
        let delay = if self.eat_op("#") {
            Some(self.delay_value()?)
        } else {
            None
        };
        let rhs = self.expr()?;
        let span = lhs.span().to(rhs.span());
        Ok(Stmt::Assign {
            lhs,
            rhs,
            kind,
            delay,
            span,
        })
    }

    fn assign_stmt(&mut self) -> Result<Stmt, ParseError> {
        let s = self.plain_assign()?;
        let end = self.expect_op(";")?.span;
        if let Stmt::Assign {
            lhs,
            rhs,
            kind,
            delay,
            span,
        } = s
        {
            Ok(Stmt::Assign {
                lhs,
                rhs,
                kind,
                delay,
                span: span.to(end),
            })
        } else {
            unreachable!("plain_assign returns Stmt::Assign")
        }
    }

    fn assign_op(&mut self) -> Result<(AssignKind, Span), ParseError> {
        if self.at_op("=") {
            let sp = self.bump().span;
            Ok((AssignKind::Blocking, sp))
        } else if self.at_op("<=") {
            let sp = self.bump().span;
            Ok((AssignKind::NonBlocking, sp))
        } else {
            Err(ParseError::new(self.peek(), "`=` or `<=`"))
        }
    }

    /// Lvalues: identifiers with selects, or concatenations of lvalues.
    fn lvalue(&mut self) -> Result<Expr, ParseError> {
        self.nested(Self::lvalue_inner)
    }

    fn lvalue_inner(&mut self) -> Result<Expr, ParseError> {
        if self.at_op("{") {
            let start = self.bump().span;
            let mut parts = vec![self.lvalue()?];
            while self.eat_op(",") {
                parts.push(self.lvalue()?);
            }
            let end = self.expect_op("}")?.span;
            return Ok(Expr::Concat(parts, start.to(end)));
        }
        let id = self.expect_ident()?;
        let mut e = Expr::Ident(id);
        while self.at_op("[") {
            e = self.select_suffix(e)?;
        }
        Ok(e)
    }

    fn select_suffix(&mut self, base: Expr) -> Result<Expr, ParseError> {
        let start = self.expect_op("[")?.span;
        let first = self.expr()?;
        if self.eat_op(":") {
            let lsb = self.expr()?;
            let end = self.expect_op("]")?.span;
            Ok(Expr::PartSelect {
                span: base.span().to(end).to(start),
                base: Box::new(base),
                msb: Box::new(first),
                lsb: Box::new(lsb),
            })
        } else if self.at_op("+:") || self.at_op("-:") {
            let ascending = self.at_op("+:");
            self.bump();
            let width = self.expr()?;
            let end = self.expect_op("]")?.span;
            Ok(Expr::IndexedPart {
                span: base.span().to(end),
                base: Box::new(base),
                start: Box::new(first),
                width: Box::new(width),
                ascending,
            })
        } else {
            let end = self.expect_op("]")?.span;
            Ok(Expr::Index {
                span: base.span().to(end),
                base: Box::new(base),
                index: Box::new(first),
            })
        }
    }

    /// Delay values: a number, identifier, or parenthesised expression.
    fn delay_value(&mut self) -> Result<Expr, ParseError> {
        if self.at_op("(") {
            self.bump();
            let e = self.expr()?;
            self.expect_op(")")?;
            Ok(e)
        } else {
            self.primary()
        }
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.nested(Self::ternary_expr)
    }

    fn ternary_expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary_expr(0)?;
        if self.eat_op("?") {
            let then_expr = self.expr()?;
            self.expect_op(":")?;
            let else_expr = self.expr()?;
            let span = cond.span().to(else_expr.span());
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
                span,
            })
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self, level: u8) -> Option<BinaryOp> {
        use BinaryOp::*;
        let op = match &self.peek().kind {
            TokenKind::Op(o) => *o,
            _ => return None,
        };
        let (lvl, bop) = match op {
            "||" => (0, LogicOr),
            "&&" => (1, LogicAnd),
            "|" => (2, BitOr),
            "^" => (3, BitXor),
            "~^" | "^~" => (3, BitXnor),
            "&" => (4, BitAnd),
            "==" => (5, Eq),
            "!=" => (5, Ne),
            "===" => (5, CaseEq),
            "!==" => (5, CaseNe),
            "<" => (6, Lt),
            "<=" => (6, Le),
            ">" => (6, Gt),
            ">=" => (6, Ge),
            "<<" => (7, Shl),
            ">>" => (7, Shr),
            "<<<" => (7, Shl),
            ">>>" => (7, AShr),
            "+" => (8, Add),
            "-" => (8, Sub),
            "*" => (9, Mul),
            "/" => (9, Div),
            "%" => (9, Mod),
            "**" => (10, Pow),
            _ => return None,
        };
        if lvl == level {
            Some(bop)
        } else {
            None
        }
    }

    fn binary_expr(&mut self, level: u8) -> Result<Expr, ParseError> {
        if level > 10 {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        self.nested(Self::unary_expr_inner)
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, ParseError> {
        let op = match &self.peek().kind {
            TokenKind::Op("+") => Some(UnaryOp::Plus),
            TokenKind::Op("-") => Some(UnaryOp::Neg),
            TokenKind::Op("!") => Some(UnaryOp::LogicNot),
            TokenKind::Op("~") => Some(UnaryOp::BitNot),
            TokenKind::Op("&") => Some(UnaryOp::RedAnd),
            TokenKind::Op("|") => Some(UnaryOp::RedOr),
            TokenKind::Op("^") => Some(UnaryOp::RedXor),
            TokenKind::Op("~&") => Some(UnaryOp::RedNand),
            TokenKind::Op("~|") => Some(UnaryOp::RedNor),
            TokenKind::Op("~^") | TokenKind::Op("^~") => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            let start = self.bump().span;
            let expr = self.unary_expr()?;
            let span = start.to(expr.span());
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
                span,
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.at_op("[") {
            e = self.select_suffix(e)?;
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        /// Owned start of a primary, copied out of the peeked token so the
        /// arms below can borrow the parser mutably. Payload arms clone
        /// exactly the string the AST will own — never the whole token.
        enum Head {
            Num(Number),
            Str(String),
            Sys(String),
            Id(String),
            Op(&'static str),
        }
        let span = self.peek().span;
        let head = match &self.peek().kind {
            TokenKind::Number(text) => match decode_number(text) {
                Some(num) => Head::Num(num),
                None => return Err(ParseError::new(self.peek(), "a valid number literal")),
            },
            TokenKind::Str(s) => Head::Str(s.clone()),
            TokenKind::SysIdent(name) => Head::Sys(format!("${name}")),
            TokenKind::Ident(name) => Head::Id(name.clone()),
            TokenKind::Op(o) => Head::Op(o),
            _ => return Err(ParseError::new(self.peek(), "an expression")),
        };
        match head {
            Head::Num(num) => {
                self.bump();
                Ok(Expr::Number(num, span))
            }
            Head::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, span))
            }
            Head::Sys(name) => {
                self.bump();
                let mut args = Vec::new();
                if self.eat_op("(") {
                    if !self.at_op(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_op(",") {
                                break;
                            }
                        }
                    }
                    self.expect_op(")")?;
                }
                Ok(Expr::Call {
                    name: Ident::spanned(name, span),
                    args,
                    span,
                })
            }
            Head::Id(name) => {
                let id = Ident::spanned(name, span);
                self.bump();
                if self.at_op("(") {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_op(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_op(",") {
                                break;
                            }
                        }
                    }
                    let end = self.expect_op(")")?.span;
                    Ok(Expr::Call {
                        span: span.to(end),
                        name: id,
                        args,
                    })
                } else {
                    Ok(Expr::Ident(id))
                }
            }
            Head::Op("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_op(")")?;
                Ok(e)
            }
            Head::Op("{") => {
                let start = self.bump().span;
                let first = self.expr()?;
                if self.at_op("{") {
                    // Replication: {count{expr, ...}}
                    self.bump();
                    let mut exprs = vec![self.expr()?];
                    while self.eat_op(",") {
                        exprs.push(self.expr()?);
                    }
                    self.expect_op("}")?;
                    let end = self.expect_op("}")?.span;
                    return Ok(Expr::Repeat {
                        count: Box::new(first),
                        exprs,
                        span: start.to(end),
                    });
                }
                let mut parts = vec![first];
                while self.eat_op(",") {
                    parts.push(self.expr()?);
                }
                let end = self.expect_op("}")?.span;
                Ok(Expr::Concat(parts, start.to(end)))
            }
            Head::Op(_) => Err(ParseError::new(self.peek(), "an expression")),
        }
    }
}

/// Decodes a number literal spelling into a [`Number`].
///
/// Handles plain decimals (`42`), based literals (`8'hFF`, `'b1x_0z`,
/// `4'd12`, `2'sb11`) and real literals (rounded to the nearest integer,
/// which suffices for `#0.5`-style delays in the supported subset).
pub fn decode_number(text: &str) -> Option<Number> {
    if let Some(tick) = text.find('\'') {
        let (width_part, rest) = text.split_at(tick);
        let width: Option<u32> = if width_part.is_empty() {
            None
        } else {
            Some(width_part.replace('_', "").parse().ok()?)
        };
        let mut rest = &rest[1..];
        let mut signed = false;
        if rest.starts_with(['s', 'S']) {
            signed = true;
            rest = &rest[1..];
        }
        let base = rest.chars().next()?;
        let digits: String = rest[base.len_utf8()..].replace('_', "");
        let bits_per = match base {
            'b' | 'B' => 1,
            'o' | 'O' => 3,
            'h' | 'H' => 4,
            'd' | 'D' => 0,
            _ => return None,
        };
        let mut value = if bits_per == 0 {
            if digits.chars().all(|c| c == 'x' || c == 'X') {
                LogicVec::xs(width.unwrap_or(32) as usize)
            } else if digits.chars().all(|c| c == 'z' || c == 'Z' || c == '?') {
                LogicVec::zs(width.unwrap_or(32) as usize)
            } else {
                let v: u64 = digits.parse().ok()?;
                LogicVec::from_u64(v, 64)
            }
        } else {
            let mut bits = Vec::new();
            for c in digits.chars().rev() {
                match c {
                    'x' | 'X' => bits.extend(std::iter::repeat_n(LogicBit::X, bits_per)),
                    'z' | 'Z' | '?' => bits.extend(std::iter::repeat_n(LogicBit::Z, bits_per)),
                    _ => {
                        let d = c.to_digit(1 << bits_per)? as u64;
                        for i in 0..bits_per {
                            bits.push(LogicBit::from(d >> i & 1 == 1));
                        }
                    }
                }
            }
            LogicVec::from_bits(bits)
        };
        let target = width.unwrap_or(32).max(1) as usize;
        // Based literals extend with the top bit when it is x/z, else zero.
        if value.width() < target {
            let fill = match value.bits().last() {
                Some(LogicBit::X) => LogicBit::X,
                Some(LogicBit::Z) => LogicBit::Z,
                _ => LogicBit::Zero,
            };
            let mut bits = value.bits().to_vec();
            bits.resize(target, fill);
            value = LogicVec::from_bits(bits);
        } else if value.width() > target {
            value = value.slice(0, target);
        }
        Some(Number {
            width,
            signed,
            value,
            spelling: text.to_owned(),
        })
    } else if text.contains('.') {
        let v: f64 = text.replace('_', "").parse().ok()?;
        Some(Number {
            width: None,
            signed: false,
            value: LogicVec::from_u64(v.round() as u64, 64),
            spelling: text.to_owned(),
        })
    } else {
        let v: u64 = text.replace('_', "").parse().ok()?;
        Some(Number {
            width: None,
            // Unbased, unsized decimal literals are signed (IEEE 1364
            // §4.8.1), which makes `i >= 0` on an integer a signed compare.
            signed: true,
            value: LogicVec::from_u64(v, if v > u32::MAX as u64 { 64 } else { 32 }),
            spelling: text.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> SourceFile {
        match parse(src) {
            Ok(sf) => sf,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn parses_ansi_module() {
        let sf = parse_ok(
            "module counter(input clk, input rst, output reg [1:0] count);\n\
             always @(posedge clk) if (rst) count <= 2'd0; else count <= count + 2'd1;\n\
             endmodule",
        );
        let m = &sf.modules[0];
        assert_eq!(m.name.name, "counter");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[2].dir, Some(PortDir::Output));
        assert!(m.ports[2].is_reg);
        assert_eq!(m.items.len(), 1);
    }

    #[test]
    fn parses_non_ansi_module() {
        let sf = parse_ok(
            "module counter(clk, rst, en, count);\n\
             input clk, rst, en;\n\
             output reg [1:0] count;\n\
             always @(posedge clk)\n\
               if (rst) count <= 2'd0;\n\
               else if (en) count <= count + 2'd1;\n\
             endmodule",
        );
        let m = &sf.modules[0];
        assert_eq!(m.ports.len(), 4);
        assert!(m.ports.iter().all(|p| p.dir.is_none()));
        assert!(matches!(m.items[0], Item::Port(_)));
    }

    #[test]
    fn ansi_ports_inherit_direction() {
        let sf = parse_ok("module m(input a, b, output y); endmodule");
        let m = &sf.modules[0];
        assert_eq!(m.ports[1].dir, Some(PortDir::Input));
        assert_eq!(m.ports[2].dir, Some(PortDir::Output));
    }

    #[test]
    fn parses_parameters() {
        let sf = parse_ok(
            "module m #(parameter WIDTH = 8, DEPTH = 4)(input [WIDTH-1:0] d);\n\
             localparam HALF = WIDTH / 2;\n\
             endmodule",
        );
        let m = &sf.modules[0];
        assert_eq!(m.header_params.len(), 2);
        assert_eq!(m.header_params[1].name.name, "DEPTH");
        assert!(matches!(&m.items[0], Item::Param(p) if p.local));
    }

    #[test]
    fn parses_instances() {
        let sf = parse_ok(
            "module top(input a, output y);\n\
             wire w;\n\
             inv #(.D(2)) u0 (.in(a), .out(w));\n\
             inv u1 (w, y);\n\
             endmodule",
        );
        let m = &sf.modules[0];
        let insts: Vec<_> = m
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Instance(inst) => Some(inst),
                _ => None,
            })
            .collect();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].params.len(), 1);
        assert_eq!(insts[0].ports[0].name.as_ref().unwrap().name, "in");
        assert!(insts[1].ports[0].name.is_none());
    }

    #[test]
    fn parses_testbench_constructs() {
        let sf = parse_ok(
            "`timescale 1ns/1ps\n\
             module tb;\n\
             reg clk = 0;\n\
             always #5 clk = ~clk;\n\
             initial begin\n\
               #10;\n\
               @(posedge clk);\n\
               $display(\"t=%0d\", $time);\n\
               repeat (3) #1 clk = clk;\n\
               $finish;\n\
             end\n\
             endmodule",
        );
        assert_eq!(sf.directives.len(), 1);
        let m = &sf.modules[0];
        assert_eq!(m.items.len(), 3);
    }

    #[test]
    fn parses_case_statement() {
        let sf = parse_ok(
            "module m(input [1:0] s, output reg y);\n\
             always @(*) case (s)\n\
               2'b00, 2'b11: y = 1'b0;\n\
               2'b01: y = 1'b1;\n\
               default: y = 1'bx;\n\
             endcase\n\
             endmodule",
        );
        let m = &sf.modules[0];
        let Item::Always(a) = &m.items[0] else {
            panic!("expected always")
        };
        let Stmt::Case { arms, .. } = &a.body else {
            panic!("expected case")
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].labels.len(), 2);
        assert!(arms[2].labels.is_empty());
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let e = parse_expr("a + b * c").unwrap();
        let Expr::Binary { op, rhs, .. } = e else {
            panic!()
        };
        assert_eq!(op, BinaryOp::Add);
        assert!(matches!(
            *rhs,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_ternary_and_concat() {
        let e = parse_expr("s ? {a, b} : {2{c}}").unwrap();
        let Expr::Ternary {
            then_expr,
            else_expr,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(*then_expr, Expr::Concat(..)));
        assert!(matches!(*else_expr, Expr::Repeat { .. }));
    }

    #[test]
    fn parses_selects() {
        let e = parse_expr("x[3:0]").unwrap();
        assert!(matches!(e, Expr::PartSelect { .. }));
        let e = parse_expr("x[i]").unwrap();
        assert!(matches!(e, Expr::Index { .. }));
        let e = parse_expr("x[i +: 4]").unwrap();
        assert!(matches!(
            e,
            Expr::IndexedPart {
                ascending: true,
                ..
            }
        ));
    }

    #[test]
    fn le_vs_nonblocking() {
        // In expression position `<=` is comparison...
        let e = parse_expr("a <= b").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Le,
                ..
            }
        ));
        // ...in statement position it is a nonblocking assignment.
        let sf = parse_ok("module m(input a, output reg y); always @(*) y <= a; endmodule");
        let Item::Always(al) = &sf.modules[0].items[0] else {
            panic!()
        };
        assert!(matches!(
            al.body,
            Stmt::Assign {
                kind: AssignKind::NonBlocking,
                ..
            }
        ));
    }

    #[test]
    fn syntax_error_reports_token_and_location() {
        let err = parse("module m(input a;\nendmodule").unwrap_err();
        assert_eq!(err.found, ";");
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn error_on_missing_endmodule() {
        let err = parse("module m(input a);").unwrap_err();
        assert_eq!(err.found, "<eof>");
    }

    #[test]
    fn decode_based_literals() {
        let n = decode_number("8'hFF").unwrap();
        assert_eq!(n.width, Some(8));
        assert_eq!(n.value.to_u64(), Some(255));
        let n = decode_number("4'b10x1").unwrap();
        assert!(n.value.has_unknown());
        let n = decode_number("2'sb11").unwrap();
        assert!(n.signed);
        assert_eq!(n.value.to_i64(), Some(-1));
        let n = decode_number("'hx").unwrap();
        assert_eq!(n.value.width(), 32);
        assert!(n.value.has_unknown());
        let n = decode_number("12").unwrap();
        assert_eq!(n.width, None);
        assert_eq!(n.value.to_u64(), Some(12));
    }

    #[test]
    fn decode_number_widths() {
        // Narrower than digits: truncate. Wider: zero-extend.
        let n = decode_number("4'hFF").unwrap();
        assert_eq!(n.value.width(), 4);
        assert_eq!(n.value.to_u64(), Some(0xF));
        let n = decode_number("16'h1").unwrap();
        assert_eq!(n.value.width(), 16);
        assert_eq!(n.value.to_u64(), Some(1));
    }

    #[test]
    fn parses_for_loop() {
        let sf = parse_ok(
            "module m;\n\
             integer i;\n\
             reg [7:0] mem [0:15];\n\
             initial for (i = 0; i < 16; i = i + 1) mem[i] = i;\n\
             endmodule",
        );
        let m = &sf.modules[0];
        assert!(matches!(&m.items[2], Item::Initial(_)));
    }

    #[test]
    fn parses_functions() {
        let sf = parse_ok(
            "module m(input [7:0] a, output [7:0] y);\n\
             function [7:0] double;\n\
             input [7:0] v;\n\
             begin double = v << 1; end\n\
             endfunction\n\
             assign y = double(a);\n\
             endmodule",
        );
        let m = &sf.modules[0];
        let Item::Function(f) = &m.items[0] else {
            panic!("expected function")
        };
        assert_eq!(f.args.len(), 1);
        assert_eq!(f.name.name, "double");
    }

    #[test]
    fn parses_gate_primitives() {
        let sf = parse_ok("module m(input a, b, output y); and g(y, a, b); endmodule");
        let Item::Instance(inst) = &sf.modules[0].items[0] else {
            panic!()
        };
        assert_eq!(inst.module.name, "and");
        assert_eq!(inst.ports.len(), 3);
    }

    #[test]
    fn parses_wait_and_forever() {
        parse_ok(
            "module tb; reg a; initial begin wait (a) a = 0; end\n\
             initial forever #5 a = ~a; endmodule",
        );
    }

    #[test]
    fn parses_multi_module_file() {
        let sf = parse_ok("module a; endmodule\nmodule b; endmodule");
        assert_eq!(sf.modules.len(), 2);
        assert!(sf.module("b").is_some());
        assert!(sf.module("c").is_none());
    }

    #[test]
    fn deep_paren_nesting_errors_instead_of_overflowing() {
        // Without the depth guard this recursion overflows the stack and
        // aborts the process (stack overflow is not unwindable).
        for depth in [5_000usize, 50_000] {
            let src = format!(
                "module m(input a, output y); assign y = {}a{}; endmodule",
                "(".repeat(depth),
                ")".repeat(depth)
            );
            let err = parse(&src).unwrap_err();
            assert!(err.expected.contains("depth limit"), "{err}");
        }
    }

    #[test]
    fn deep_concat_and_unary_nesting_error() {
        let concat = format!(
            "module m(output y); assign y = {}1'b0{}; endmodule",
            "{".repeat(4_000),
            "}".repeat(4_000)
        );
        assert!(parse(&concat).is_err());
        let unary = format!(
            "module m(input a, output y); assign y = {}a; endmodule",
            "~".repeat(4_000)
        );
        assert!(parse(&unary).is_err());
    }

    #[test]
    fn deep_statement_nesting_errors() {
        let src = format!(
            "module m; initial {}$finish; endmodule",
            "begin ".repeat(4_000)
        );
        assert!(parse(&src).is_err());
    }

    #[test]
    fn realistic_nesting_still_parses() {
        // Depth far beyond hand-written RTL but well under the limit.
        let src = format!(
            "module m(input a, output y); assign y = {}a{}; endmodule",
            "(".repeat(24),
            ")".repeat(24)
        );
        parse_ok(&src);
        let stmts = format!(
            "module m; initial {}$finish; {}endmodule",
            "begin ".repeat(30),
            "end ".repeat(30)
        );
        parse_ok(&stmts);
    }
}
