//! Property tests for [`dda_runtime::ResidentPool`] scheduling
//! invariants under randomized high-priority storms.
//!
//! The two load-bearing promises:
//!
//! 1. **Priority**: while nothing has aged out, queued high-priority
//!    jobs run before queued normal-priority jobs.
//! 2. **Starvation-freedom (aging)**: a normal-priority job is never
//!    stuck behind an unbounded storm of high-priority arrivals — once
//!    it has waited past `age_limit`, it is taken ahead of them.
//!
//! The tests randomize storm sizes, worker counts, and job durations;
//! the invariant checked is a *bound* (the normal job starts within
//! `age_limit` plus one job-length plus scheduling slack), not an exact
//! schedule, so the properties hold on loaded CI machines too.

use dda_runtime::{PoolOptions, Priority, ResidentPool};
use proptest::proptest;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Submits a storm of high-priority jobs around one normal-priority
/// marker job and returns how long the marker waited to *start*, plus
/// the number of high jobs that ran before it.
fn run_storm(workers: usize, storm: usize, job_ms: u64, age_ms: u64) -> (Duration, usize) {
    let pool = ResidentPool::new(&PoolOptions {
        workers,
        queue_capacity: storm + 8,
        age_limit: Duration::from_millis(age_ms),
        ..PoolOptions::default()
    });
    // Jam every worker so all the interesting jobs queue up behind them;
    // the gate keeps the jam in place until the full storm is queued.
    let gate = Arc::new(AtomicBool::new(false));
    for _ in 0..workers {
        let gate = Arc::clone(&gate);
        pool.submit(Priority::High, None, move |_t| {
            while !gate.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(200));
            }
        })
        .unwrap();
    }

    let started = Arc::new(Mutex::new(Vec::<(&'static str, Instant)>::new()));
    let submit = |prio: Priority, tag: &'static str| {
        let started = Arc::clone(&started);
        pool.submit(prio, None, move |_t| {
            started
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push((tag, Instant::now()));
            std::thread::sleep(Duration::from_millis(job_ms));
        })
        .unwrap();
    };

    // Half the storm lands before the marker, half after: the marker must
    // overtake the later half once it ages out.
    for _ in 0..storm / 2 {
        submit(Priority::High, "high");
    }
    submit(Priority::Normal, "marker");
    let marker_queued = Instant::now();
    for _ in 0..storm - storm / 2 {
        submit(Priority::High, "high");
    }

    gate.store(true, Ordering::Release);
    pool.join();

    let order = started.lock().unwrap_or_else(|p| p.into_inner());
    let marker_at = order
        .iter()
        .find(|(tag, _)| *tag == "marker")
        .expect("the marker job must run")
        .1;
    let highs_before = order
        .iter()
        .filter(|(tag, at)| *tag == "high" && *at < marker_at)
        .count();
    (marker_at - marker_queued, highs_before)
}

proptest! {
    #[test]
    fn normal_jobs_age_out_of_a_high_priority_storm(
        storm in 4usize..24,
        workers in 1usize..3,
        job_ms in 1u64..8,
    ) {
        let age_ms = 40u64;
        let (waited, _highs_before) = run_storm(workers, storm, job_ms, age_ms);
        // Once aged out, the marker is next: it still has to wait for the
        // jobs already *running* to finish (one job length per worker's
        // current job), plus scheduling slack for loaded machines.
        let bound = Duration::from_millis(age_ms + job_ms + 150);
        assert!(
            waited <= bound,
            "normal job starved {waited:?} (bound {bound:?}) \
             under a {storm}-job high storm ({workers} workers, {job_ms}ms jobs)"
        );
    }

    #[test]
    fn high_priority_jumps_the_queue_before_aging_kicks_in(
        storm in 2usize..12,
        job_ms in 1u64..6,
    ) {
        // With a huge age limit, raw priority order is observable: every
        // high job queued *before* the marker must also run before it.
        let (_waited, highs_before) = run_storm(1, storm, job_ms, 60_000);
        assert!(
            highs_before >= storm / 2,
            "only {highs_before} of {} pre-queued high jobs ran before the \
             normal marker",
            storm / 2
        );
    }
}
