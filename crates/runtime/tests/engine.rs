//! Engine-level tests: ordering determinism, retry/backoff escalation,
//! deadline supervision, panic isolation, and journal resume.

use dda_runtime::{
    run_supervised, run_supervised_journaled, CancelToken, RetryPolicy, RunOptions, UnitError,
    UnitOutcome,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dda-runtime-engine-{}-{name}", std::process::id()));
    p
}

#[test]
fn results_come_back_in_unit_order_for_any_worker_count() {
    for workers in [1, 2, 8, 32] {
        let opts = RunOptions {
            workers,
            ..RunOptions::default()
        };
        let report = run_supervised(64, &opts, |unit, _| Ok::<_, UnitError>(unit * 3 + 1));
        let got: Vec<usize> = report.results().copied().collect();
        let want: Vec<usize> = (0..64).map(|u| u * 3 + 1).collect();
        assert_eq!(got, want, "workers={workers}");
        assert_eq!(report.summary().ok, 64);
        assert_eq!(report.summary().quarantined, 0);
    }
}

#[test]
fn transient_failures_retry_then_succeed() {
    let attempts: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
    let opts = RunOptions {
        workers: 4,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
            seed: 1,
        },
        ..RunOptions::default()
    };
    let report = run_supervised(8, &opts, |unit, _| {
        let n = attempts[unit].fetch_add(1, Ordering::SeqCst) + 1;
        if n < 3 {
            Err(UnitError::transient(format!("flake #{n}")))
        } else {
            Ok(unit)
        }
    });
    assert_eq!(report.summary().ok, 8);
    assert_eq!(report.retries, 16, "2 retries per unit");
    for u in &report.units {
        assert_eq!(u.attempts, 3);
    }
}

#[test]
fn exhausted_retry_budget_escalates_to_quarantine() {
    let opts = RunOptions {
        workers: 2,
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(1),
            seed: 2,
        },
        ..RunOptions::default()
    };
    let report = run_supervised(4, &opts, |unit, _| -> Result<(), UnitError> {
        Err(UnitError::transient(format!("unit {unit} always fails")))
    });
    assert_eq!(report.quarantined(), 4);
    for u in &report.units {
        assert_eq!(u.attempts, 2);
        match &u.outcome {
            UnitOutcome::Quarantined {
                diagnostic,
                panicked,
            } => {
                assert!(diagnostic.contains("always fails"));
                assert!(!panicked);
            }
            UnitOutcome::Ok(()) => panic!("unit {} should have failed", u.unit),
        }
    }
}

#[test]
fn fatal_failures_do_not_consume_retry_budget() {
    let calls = AtomicUsize::new(0);
    let opts = RunOptions {
        workers: 1,
        retry: RetryPolicy {
            max_attempts: 5,
            ..RetryPolicy::default()
        },
        ..RunOptions::default()
    };
    let report = run_supervised(1, &opts, |_, _| -> Result<(), UnitError> {
        calls.fetch_add(1, Ordering::SeqCst);
        Err(UnitError::fatal("broken input"))
    });
    assert_eq!(calls.load(Ordering::SeqCst), 1);
    assert_eq!(report.retries, 0);
    assert_eq!(report.quarantined(), 1);
}

#[test]
fn panics_are_caught_and_quarantined_without_retries() {
    let calls = AtomicUsize::new(0);
    let opts = RunOptions {
        workers: 2,
        retry: RetryPolicy {
            max_attempts: 4,
            ..RetryPolicy::default()
        },
        ..RunOptions::default()
    };
    let report = run_supervised(3, &opts, |unit, _| {
        calls.fetch_add(1, Ordering::SeqCst);
        if unit == 1 {
            panic!("injected panic in unit 1");
        }
        Ok(unit)
    });
    assert_eq!(calls.load(Ordering::SeqCst), 3, "panic must not retry");
    assert_eq!(report.quarantined(), 1);
    match &report.units[1].outcome {
        UnitOutcome::Quarantined {
            diagnostic,
            panicked,
        } => {
            assert!(*panicked);
            assert!(diagnostic.contains("injected panic"), "{diagnostic}");
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
    let ok: Vec<usize> = report.results().copied().collect();
    assert_eq!(ok, vec![0, 2]);
}

/// A unit that cooperatively polls its token is cut off by the deadline
/// (via the token's own clock and the watchdog) instead of running long.
#[test]
fn deadline_cuts_off_cooperative_units() {
    let opts = RunOptions {
        workers: 2,
        unit_deadline: Some(Duration::from_millis(60)),
        watchdog_interval: Duration::from_millis(5),
        ..RunOptions::default()
    };
    let start = std::time::Instant::now();
    let report = run_supervised(2, &opts, |unit, cancel: &CancelToken| {
        if unit == 0 {
            return Ok(0); // fast unit is untouched
        }
        // Slow-burn unit: would run for ~100 watchdog intervals.
        for _ in 0..200 {
            if cancel.is_cancelled() {
                return Err(UnitError::fatal("wall-clock deadline exceeded"));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(unit)
    });
    assert!(
        start.elapsed() < Duration::from_millis(700),
        "deadline did not cut the unit off"
    );
    assert_eq!(report.summary().ok, 1);
    match &report.units[1].outcome {
        UnitOutcome::Quarantined { diagnostic, .. } => {
            assert!(diagnostic.contains("deadline"), "{diagnostic}")
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}

/// Flag-only pollers (that never consult the clock) are still tripped,
/// because the watchdog cancels their token.
#[test]
fn watchdog_trips_flag_only_pollers() {
    let opts = RunOptions {
        workers: 1,
        unit_deadline: Some(Duration::from_millis(40)),
        watchdog_interval: Duration::from_millis(5),
        ..RunOptions::default()
    };
    let report = run_supervised(1, &opts, |_, cancel: &CancelToken| {
        // Poll only the manual flag path by sleeping between checks; the
        // watchdog must flip it.
        for _ in 0..500 {
            if cancel.is_cancelled() {
                return Err(UnitError::fatal("cut off"));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(())
    });
    assert_eq!(report.quarantined(), 1);
}

#[test]
fn journaled_run_resumes_and_skips_finished_units() {
    let path = tmp("resume");
    let _ = std::fs::remove_file(&path);
    let opts = RunOptions::default();
    let encode = |v: &usize| v.to_string();
    let decode = |s: &str| s.parse::<usize>().ok();

    // First run covers all 12 units.
    let full = run_supervised_journaled(12, &opts, &path, false, encode, decode, |unit, _| {
        Ok::<_, UnitError>(unit + 100)
    })
    .unwrap();
    assert_eq!(full.summary().resumed, 0);

    // Simulate an interruption after 5 completed units.
    let lines: Vec<String> = std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .take(5)
        .map(str::to_owned)
        .collect();
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

    // Resume: only the missing 7 units execute.
    let executed = AtomicUsize::new(0);
    let resumed = run_supervised_journaled(12, &opts, &path, true, encode, decode, |unit, _| {
        executed.fetch_add(1, Ordering::SeqCst);
        Ok::<_, UnitError>(unit + 100)
    })
    .unwrap();
    assert_eq!(executed.load(Ordering::SeqCst), 7);
    assert_eq!(resumed.summary().resumed, 5);
    let a: Vec<usize> = full.results().copied().collect();
    let b: Vec<usize> = resumed.results().copied().collect();
    assert_eq!(a, b, "resumed run must assemble identical results");
    std::fs::remove_file(&path).ok();
}

#[test]
fn journal_replays_quarantined_outcomes_too() {
    let path = tmp("requarantine");
    let _ = std::fs::remove_file(&path);
    let opts = RunOptions::default();
    let encode = |v: &usize| v.to_string();
    let decode = |s: &str| s.parse::<usize>().ok();
    let first = run_supervised_journaled(3, &opts, &path, false, encode, decode, |unit, _| {
        if unit == 1 {
            Err(UnitError::fatal("deterministically broken"))
        } else {
            Ok(unit)
        }
    })
    .unwrap();
    assert_eq!(first.quarantined(), 1);

    // Resume over the full journal: nothing re-executes, including the
    // quarantined unit, and the report is equivalent.
    let second = run_supervised_journaled(
        3,
        &opts,
        &path,
        true,
        encode,
        decode,
        |_, _| -> Result<usize, UnitError> { panic!("no unit should re-execute") },
    )
    .unwrap();
    assert_eq!(second.summary().resumed, 3);
    assert_eq!(second.quarantined(), 1);
    match &second.units[1].outcome {
        UnitOutcome::Quarantined {
            diagnostic,
            panicked,
        } => {
            assert_eq!(diagnostic, "deterministically broken");
            assert!(!panicked);
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn zero_units_is_a_no_op() {
    let report = run_supervised(0, &RunOptions::default(), |u, _| Ok::<_, UnitError>(u));
    assert!(report.units.is_empty());
    assert_eq!(report.summary().ok, 0);
}
