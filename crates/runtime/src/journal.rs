//! Write-ahead JSONL journal for checkpoint/resume.
//!
//! One line per completed unit: `{"unit": N, "payload": "..."}`. The
//! payload is an opaque string chosen by the caller (the engine prefixes
//! it with an outcome tag; `dda-core` serialises dataset entries into it
//! with its JSONL codec). Lines are flushed as they are written, so a
//! killed run loses at most the line being written — and
//! [`Journal::load`] tolerates exactly that by dropping a torn final
//! line.
//!
//! The string escaping here mirrors `dda_core::json` (RFC 8259 minimal
//! escapes); it is re-implemented rather than imported because this
//! crate sits *below* `dda-core` in the dependency graph.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// An append-only unit-outcome journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    out: BufWriter<File>,
}

impl Journal {
    /// Creates (truncating) a journal at `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> io::Result<Journal> {
        Ok(Journal {
            path: path.to_path_buf(),
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Opens `path` for appending (creating it when missing) — the resume
    /// path: replayed units stay in place, new completions are appended.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(path: &Path) -> io::Result<Journal> {
        Ok(Journal {
            path: path.to_path_buf(),
            out: BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?),
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one unit outcome and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record(&mut self, unit: usize, payload: &str) -> io::Result<()> {
        dda_fail::fail_io!("journal.append")?;
        let mut line = String::with_capacity(payload.len() + 32);
        let _ = write!(line, "{{\"unit\": {unit}, \"payload\": \"");
        escape_into(payload, &mut line);
        line.push_str("\"}\n");
        self.out.write_all(line.as_bytes())?;
        self.out.flush()
    }

    /// Forces everything recorded so far down to the storage device
    /// (`fdatasync`), not just to the OS page cache.
    /// [`record`](Journal::record) alone survives a process crash; `sync` is for
    /// callers that must also survive a host crash before acknowledging
    /// work (the serve request journal syncs before accepting).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn sync(&mut self) -> io::Result<()> {
        dda_fail::fail_io!("journal.fsync")?;
        self.out.flush()?;
        self.out.get_ref().sync_data()
    }

    /// Loads every `(unit, payload)` record from `path`.
    ///
    /// A torn **final** line (interrupted mid-write) is dropped silently;
    /// a malformed line anywhere else is a hard error, since it means the
    /// file is not one of our journals.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; reports corrupt non-final lines as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Vec<(usize, String)>> {
        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        Ok(parse_text(&text, path)?.0)
    }

    /// Crash-recovery open: loads the records like [`Journal::load`],
    /// **truncates** a torn final line off the file, and reopens it for
    /// appending. The truncation is what makes continued appending safe —
    /// without it, the next record would be glued onto the torn bytes and
    /// the merged line would read as interior corruption on the *next*
    /// recovery. A missing file is an empty journal.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; reports corrupt non-final lines as
    /// [`io::ErrorKind::InvalidData`].
    pub fn recover(path: &Path) -> io::Result<(Journal, Vec<(usize, String)>)> {
        let mut records = Vec::new();
        if path.exists() {
            let mut text = String::new();
            File::open(path)?.read_to_string(&mut text)?;
            let (recs, good_len) = parse_text(&text, path)?;
            records = recs;
            if good_len < text.len() {
                OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(good_len as u64)?;
            }
        }
        Ok((Journal::append(path)?, records))
    }
}

/// Parses journal text into records plus the byte length of the sound
/// prefix (everything up to, but excluding, a torn final line).
fn parse_text(text: &str, path: &Path) -> io::Result<(Vec<(usize, String)>, usize)> {
    let pieces: Vec<&str> = text.split_inclusive('\n').collect();
    let mut out = Vec::with_capacity(pieces.len());
    let mut offset = 0usize;
    let mut good_len = 0usize;
    for (i, piece) in pieces.iter().enumerate() {
        offset += piece.len();
        let line = piece.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            good_len = offset;
            continue;
        }
        match parse_line(line) {
            Some(rec) => {
                out.push(rec);
                good_len = offset;
            }
            None if i + 1 == pieces.len() => break, // torn tail from a kill
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: corrupt journal line {}", path.display(), i + 1),
                ))
            }
        }
    }
    Ok((out, good_len))
}

/// Escapes `s` per JSON string rules into `out`.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parses one journal line; `None` when malformed (torn write).
fn parse_line(line: &str) -> Option<(usize, String)> {
    let rest = line.trim().strip_prefix("{\"unit\":")?.trim_start();
    let digits_end = rest.find(|c: char| !c.is_ascii_digit())?;
    let unit: usize = rest[..digits_end].parse().ok()?;
    let rest = rest[digits_end..]
        .trim_start()
        .strip_prefix(',')?
        .trim_start()
        .strip_prefix("\"payload\":")?
        .trim_start()
        .strip_prefix('"')?;
    // Unescape up to the closing quote; the line must end with `"}`.
    let mut payload = String::with_capacity(rest.len());
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => break,
            '\\' => match chars.next()? {
                'n' => payload.push('\n'),
                'r' => payload.push('\r'),
                't' => payload.push('\t'),
                '"' => payload.push('"'),
                '\\' => payload.push('\\'),
                '/' => payload.push('/'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if hex.len() != 4 {
                        return None;
                    }
                    let v = u32::from_str_radix(&hex, 16).ok()?;
                    payload.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => payload.push(c),
        }
    }
    if chars.as_str().trim() != "}" {
        return None;
    }
    Some((unit, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dda-runtime-journal-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_records_in_order() {
        let path = tmp("roundtrip");
        {
            let mut j = Journal::create(&path).unwrap();
            j.record(0, "plain").unwrap();
            j.record(3, "multi\nline\twith \"quotes\" and \\slashes\\")
                .unwrap();
            j.record(1, "\u{1}\u{7}control").unwrap();
        }
        let got = Journal::load(&path).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (0, "plain".to_string()));
        assert_eq!(
            got[1],
            (
                3,
                "multi\nline\twith \"quotes\" and \\slashes\\".to_string()
            )
        );
        assert_eq!(got[2], (1, "\u{1}\u{7}control".to_string()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_extends_an_existing_journal() {
        let path = tmp("append");
        Journal::create(&path).unwrap().record(0, "a").unwrap();
        Journal::append(&path).unwrap().record(1, "b").unwrap();
        let got = Journal::load(&path).unwrap();
        assert_eq!(got, vec![(0, "a".into()), (1, "b".into())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_dropped() {
        let path = tmp("torn");
        Journal::create(&path).unwrap().record(0, "done").unwrap();
        // Simulate a kill mid-write: an incomplete trailing record.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"unit\": 1, \"payload\": \"half").unwrap();
        drop(f);
        let got = Journal::load(&path).unwrap();
        assert_eq!(got, vec![(0, "done".into())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_truncates_the_torn_tail_so_appends_stay_parseable() {
        let path = tmp("recover");
        Journal::create(&path).unwrap().record(0, "done").unwrap();
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"unit\": 1, \"payload\": \"half").unwrap();
        drop(f);
        // Recover: the torn line is gone from disk, and appending after
        // recovery starts at a clean record boundary.
        let (mut j, records) = Journal::recover(&path).unwrap();
        assert_eq!(records, vec![(0, "done".into())]);
        j.record(2, "after").unwrap();
        drop(j);
        assert_eq!(
            Journal::load(&path).unwrap(),
            vec![(0, "done".into()), (2, "after".into())]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_of_a_missing_file_is_an_empty_journal() {
        let path = tmp("recover-missing");
        let _ = std::fs::remove_file(&path);
        let (mut j, records) = Journal::recover(&path).unwrap();
        assert!(records.is_empty());
        j.record(0, "first").unwrap();
        drop(j);
        assert_eq!(Journal::load(&path).unwrap(), vec![(0, "first".into())]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_interior_line_is_a_hard_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, "garbage\n{\"unit\": 0, \"payload\": \"x\"}\n").unwrap();
        let err = Journal::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sync_flushes_buffered_records() {
        let path = tmp("sync");
        let mut j = Journal::create(&path).unwrap();
        j.record(0, "durable").unwrap();
        j.sync().unwrap();
        // Visible on disk while the journal is still open for writing.
        assert_eq!(Journal::load(&path).unwrap(), vec![(0, "durable".into())]);
        drop(j);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unicode_payloads_survive() {
        let path = tmp("unicode");
        Journal::create(&path)
            .unwrap()
            .record(9, "§3.2 → ☃ モジュール")
            .unwrap();
        assert_eq!(
            Journal::load(&path).unwrap(),
            vec![(9, "§3.2 → ☃ モジュール".into())]
        );
        std::fs::remove_file(&path).ok();
    }
}
