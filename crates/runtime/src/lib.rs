//! # dda-runtime
//!
//! A supervised execution engine for the framework's embarrassingly
//! parallel sweeps (augmentation over corpus modules, pass@k evaluation
//! over benchmark problems). Independent work units run on a bounded pool
//! of watchdog-supervised worker threads with:
//!
//! * **wall-clock deadlines** — each unit gets a cooperative
//!   [`CancelToken`]; long-running interpreters (the simulator's exec
//!   loop) poll it and abort with a distinguishable wall-timeout error
//!   instead of hanging the sweep ([`cancel`]);
//! * **deterministic retry with backoff** — retryable failures are
//!   re-attempted under a seeded exponential-backoff schedule, then
//!   escalated to a quarantined outcome once the budget is exhausted
//!   ([`retry`], [`engine`]);
//! * **checkpoint/resume** — every completed unit's outcome is appended
//!   to a write-ahead JSONL journal; an interrupted run resumes by
//!   replaying the journal and skipping finished units ([`journal`]);
//! * **deterministic assembly** — results are returned in unit-id order,
//!   so output is byte-identical regardless of worker count, scheduling
//!   order, or interruption point ([`engine`]).
//!
//! For resident daemons (the `chipdda serve` front-end) the batch engine
//! is complemented by [`pool::ResidentPool`]: a long-lived worker pool
//! with a bounded two-priority job queue, load-shedding admission
//! control, starvation-free aging, per-job deadlines that include queue
//! wait, panic-isolated workers, and graceful drain.
//!
//! This crate sits below `dda-core`/`dda-eval` in the dependency graph
//! (it depends only on `std`), so both the pipeline and the evaluation
//! harness can run on it.
//!
//! ## Example
//!
//! ```
//! use dda_runtime::{run_supervised, RunOptions, UnitError};
//!
//! let opts = RunOptions { workers: 4, ..RunOptions::default() };
//! let report = run_supervised(8, &opts, |unit, _cancel| {
//!     if unit == 3 {
//!         Err(UnitError::fatal("unit 3 is broken"))
//!     } else {
//!         Ok(unit * unit)
//!     }
//! });
//! let squares: Vec<_> = report.results().collect();
//! assert_eq!(squares, vec![&0, &1, &4, &16, &25, &36, &49]);
//! assert_eq!(report.quarantined(), 1);
//! ```

#![warn(missing_docs)]

pub mod cancel;
pub mod engine;
mod inflight;
pub mod journal;
pub mod pool;
pub mod retry;

pub use cancel::CancelToken;
pub use engine::{
    run_supervised, run_supervised_journaled, EngineReport, EngineSummary, RunOptions, UnitError,
    UnitOutcome, UnitReport, DEADLINE_DIAGNOSTIC,
};
pub use journal::Journal;
pub use pool::{PoolOptions, Priority, ResidentPool, SubmitError};
pub use retry::RetryPolicy;
