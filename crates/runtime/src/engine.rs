//! The supervised worker pool.
//!
//! [`run_supervised`] executes `units` independent work items on a
//! bounded pool of worker threads. Each attempt gets a fresh
//! [`CancelToken`] carrying the per-unit wall-clock deadline; a watchdog
//! thread additionally trips tokens whose deadline has passed, so even
//! code that only polls the flag (never the clock) gets cut off. Failures
//! marked retryable are re-attempted under the seeded
//! [`RetryPolicy`] backoff schedule; exhausted or
//! non-retryable failures — including caught panics — escalate to
//! [`UnitOutcome::Quarantined`], mirroring the pipeline's quarantine
//! accounting so `ok + skipped + quarantined` stays conserved above us.
//!
//! Results are assembled in unit-id order: for a deterministic `exec`,
//! the report is identical for any worker count, scheduling order, or
//! interruption point. [`run_supervised_journaled`] additionally streams
//! each completed unit into a write-ahead [`Journal`] and can resume by
//! replaying it.

use crate::cancel::CancelToken;
use crate::inflight::Inflight;
use crate::journal::Journal;
use crate::retry::RetryPolicy;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Options for one supervised run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Wall-clock deadline per unit attempt (`None` = unbounded).
    pub unit_deadline: Option<Duration>,
    /// Retry budget and backoff schedule.
    pub retry: RetryPolicy,
    /// How often the watchdog sweeps in-flight deadlines.
    pub watchdog_interval: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 1,
            unit_deadline: None,
            retry: RetryPolicy::none(),
            watchdog_interval: Duration::from_millis(10),
        }
    }
}

/// A failed unit attempt, as reported by the work closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitError {
    /// Human-readable description of the failure.
    pub diagnostic: String,
    /// Whether the engine may re-attempt the unit (within the budget).
    pub retryable: bool,
    /// Whether the failure came from a caught panic.
    pub panicked: bool,
}

impl UnitError {
    /// A permanent failure: escalates without retries.
    pub fn fatal(diagnostic: impl Into<String>) -> UnitError {
        UnitError {
            diagnostic: diagnostic.into(),
            retryable: false,
            panicked: false,
        }
    }

    /// A transient failure: re-attempted while the retry budget lasts.
    pub fn transient(diagnostic: impl Into<String>) -> UnitError {
        UnitError {
            diagnostic: diagnostic.into(),
            retryable: true,
            panicked: false,
        }
    }
}

/// Terminal outcome of one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitOutcome<T> {
    /// The unit completed and produced a result.
    Ok(T),
    /// Every attempt failed; the unit is excluded from results and the
    /// caller's accounting should book it as quarantined.
    Quarantined {
        /// Diagnostic from the final attempt.
        diagnostic: String,
        /// Whether that attempt panicked (vs a graceful error).
        panicked: bool,
    },
}

impl<T> UnitOutcome<T> {
    /// The result, when the unit completed.
    pub fn ok(&self) -> Option<&T> {
        match self {
            UnitOutcome::Ok(v) => Some(v),
            UnitOutcome::Quarantined { .. } => None,
        }
    }
}

/// Per-unit record in the engine report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitReport<T> {
    /// Unit id (index into the caller's work list).
    pub unit: usize,
    /// Terminal outcome.
    pub outcome: UnitOutcome<T>,
    /// Attempts spent (0 for units replayed from a journal).
    pub attempts: u32,
    /// Whether the outcome was replayed from the journal, not executed.
    pub resumed: bool,
}

/// Aggregate counters for one supervised run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineSummary {
    /// Units that produced a result.
    pub ok: usize,
    /// Units that escalated to quarantine.
    pub quarantined: usize,
    /// Units replayed from the journal instead of executed.
    pub resumed: usize,
    /// Total retry attempts across all units (excluding first attempts).
    pub retries: usize,
}

/// Full result of a supervised run, in unit-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport<T> {
    /// One record per unit, ordered by unit id.
    pub units: Vec<UnitReport<T>>,
    /// Total retry attempts across all units.
    pub retries: usize,
}

impl<T> EngineReport<T> {
    /// Successful results in unit-id order (quarantined units omitted).
    pub fn results(&self) -> impl Iterator<Item = &T> {
        self.units.iter().filter_map(|u| u.outcome.ok())
    }

    /// Consumes the report, yielding `(unit, result)` for successes.
    pub fn into_results(self) -> impl Iterator<Item = (usize, T)> {
        self.units.into_iter().filter_map(|u| match u.outcome {
            UnitOutcome::Ok(v) => Some((u.unit, v)),
            UnitOutcome::Quarantined { .. } => None,
        })
    }

    /// Number of quarantined units.
    pub fn quarantined(&self) -> usize {
        self.units
            .iter()
            .filter(|u| matches!(u.outcome, UnitOutcome::Quarantined { .. }))
            .count()
    }

    /// Aggregate counters.
    pub fn summary(&self) -> EngineSummary {
        EngineSummary {
            ok: self.units.len() - self.quarantined(),
            quarantined: self.quarantined(),
            resumed: self.units.iter().filter(|u| u.resumed).count(),
            retries: self.retries,
        }
    }
}

/// Diagnostic used when an attempt's deadline expired and the closure
/// returned an error that didn't already explain the timeout.
pub const DEADLINE_DIAGNOSTIC: &str = "unit wall-clock deadline exceeded";

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: non-string payload".to_string()
    }
}

/// Runs `units` work items on a supervised worker pool; see the module
/// docs for the semantics. `exec` receives the unit id and the attempt's
/// [`CancelToken`], and should poll the token from long-running loops.
pub fn run_supervised<T, F>(units: usize, opts: &RunOptions, exec: F) -> EngineReport<T>
where
    T: Send,
    F: Fn(usize, &CancelToken) -> Result<T, UnitError> + Sync,
{
    let prefilled: Box<[Option<UnitOutcome<T>>]> = (0..units).map(|_| None).collect();
    run_inner(units, opts, &exec, prefilled, None).expect("journal-less run cannot fail on IO")
}

/// [`run_supervised`] plus checkpoint/resume through a write-ahead
/// journal at `path`.
///
/// With `resume` set and `path` present, previously journaled outcomes
/// are replayed (their units are not re-executed) and new completions are
/// appended; otherwise the journal is created fresh. `encode`/`decode`
/// translate results to and from the journal payload — `decode` returning
/// `None` marks the record unreadable, and the unit re-executes.
///
/// # Errors
///
/// Propagates journal IO failures.
pub fn run_supervised_journaled<T, F, E, D>(
    units: usize,
    opts: &RunOptions,
    path: &Path,
    resume: bool,
    encode: E,
    decode: D,
    exec: F,
) -> io::Result<EngineReport<T>>
where
    T: Send,
    F: Fn(usize, &CancelToken) -> Result<T, UnitError> + Sync,
    E: Fn(&T) -> String + Sync,
    D: Fn(&str) -> Option<T>,
{
    let mut prefilled: Vec<Option<UnitOutcome<T>>> = (0..units).map(|_| None).collect();
    let journal = if resume && path.exists() {
        for (unit, payload) in Journal::load(path)? {
            if unit >= units {
                continue; // journal from a larger run; ignore the excess
            }
            if let Some(outcome) = decode_payload(&payload, &decode) {
                prefilled[unit] = Some(outcome); // last record wins
            }
        }
        Journal::append(path)?
    } else {
        Journal::create(path)?
    };
    run_inner(
        units,
        opts,
        &exec,
        prefilled.into(),
        Some((Mutex::new(journal), &encode)),
    )
}

/// Journal payload codec: `ok <encoded T>` for results, `q <0|1>
/// <diagnostic...>` for quarantines (diagnostics may span lines — the
/// journal escapes them).
fn encode_payload<T>(outcome: &UnitOutcome<T>, encode: &dyn Fn(&T) -> String) -> String {
    match outcome {
        UnitOutcome::Ok(v) => format!("ok {}", encode(v)),
        UnitOutcome::Quarantined {
            diagnostic,
            panicked,
        } => format!("q {} {diagnostic}", u8::from(*panicked)),
    }
}

fn decode_payload<T>(payload: &str, decode: &dyn Fn(&str) -> Option<T>) -> Option<UnitOutcome<T>> {
    if let Some(body) = payload.strip_prefix("ok ") {
        return decode(body).map(UnitOutcome::Ok);
    }
    let body = payload.strip_prefix("q ")?;
    let (flag, diagnostic) = body.split_once(' ')?;
    Some(UnitOutcome::Quarantined {
        diagnostic: diagnostic.to_string(),
        panicked: flag == "1",
    })
}

type JournalSink<'a, T> = (Mutex<Journal>, &'a (dyn Fn(&T) -> String + Sync));

fn run_inner<T, F>(
    units: usize,
    opts: &RunOptions,
    exec: &F,
    prefilled: Box<[Option<UnitOutcome<T>>]>,
    journal: Option<JournalSink<'_, T>>,
) -> io::Result<EngineReport<T>>
where
    T: Send,
    F: Fn(usize, &CancelToken) -> Result<T, UnitError> + Sync,
{
    let _run_span = dda_obs::span("engine.run");
    let workers = opts.workers.max(1).min(units.max(1));
    let next = AtomicUsize::new(0);
    let retries = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let inflight = Inflight::new(workers);
    let io_error: Mutex<Option<io::Error>> = Mutex::new(None);

    // Slot table: resumed units are filled before any worker starts.
    let slots: Vec<Mutex<Option<UnitReport<T>>>> = prefilled
        .into_vec()
        .into_iter()
        .enumerate()
        .map(|(unit, pre)| {
            Mutex::new(pre.map(|outcome| UnitReport {
                unit,
                outcome,
                attempts: 0,
                resumed: true,
            }))
        })
        .collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let next = &next;
            let retries = &retries;
            let slots = &slots;
            let inflight = &inflight;
            let journal = &journal;
            let io_error = &io_error;
            handles.push(scope.spawn(move || loop {
                let unit = next.fetch_add(1, Ordering::Relaxed);
                if unit >= units {
                    return;
                }
                if slots[unit].lock().unwrap().is_some() {
                    continue; // resumed from the journal
                }
                let mut attempts = 0u32;
                let outcome = loop {
                    attempts += 1;
                    let token = match opts.unit_deadline {
                        Some(d) => CancelToken::with_deadline(d),
                        None => CancelToken::new(),
                    };
                    inflight.arm(worker, &token);
                    let attempt_span = dda_obs::span("engine.attempt");
                    let result = catch_unwind(AssertUnwindSafe(|| exec(unit, &token)));
                    drop(attempt_span);
                    inflight.disarm(worker);
                    match result {
                        Ok(Ok(v)) => {
                            // Terminal-outcome counters: a trace file can
                            // tell deadline kills from crashes from clean
                            // completions without parsing diagnostics.
                            dda_obs::count("engine.unit.completed", 1);
                            break UnitOutcome::Ok(v);
                        }
                        Ok(Err(e)) => {
                            if token.is_expired() {
                                dda_obs::count("engine.deadline.trip", 1);
                            }
                            let diagnostic =
                                if token.is_expired() && !e.diagnostic.contains("deadline") {
                                    format!("{DEADLINE_DIAGNOSTIC}: {}", e.diagnostic)
                                } else {
                                    e.diagnostic
                                };
                            // A timed-out attempt would time out again;
                            // never spend retry budget on it.
                            if e.retryable
                                && !token.is_expired()
                                && attempts < opts.retry.max_attempts
                            {
                                retries.fetch_add(1, Ordering::Relaxed);
                                dda_obs::count("engine.retry", 1);
                                std::thread::sleep(opts.retry.backoff(unit, attempts));
                                continue;
                            }
                            dda_obs::count(
                                if token.is_expired() {
                                    "engine.unit.timedout"
                                } else {
                                    "engine.unit.failed"
                                },
                                1,
                            );
                            break UnitOutcome::Quarantined {
                                diagnostic,
                                panicked: e.panicked,
                            };
                        }
                        // Panics are deterministic in this codebase:
                        // escalate immediately rather than replaying them.
                        Err(payload) => {
                            dda_obs::count("engine.unit.crashed", 1);
                            break UnitOutcome::Quarantined {
                                diagnostic: panic_message(&*payload),
                                panicked: true,
                            };
                        }
                    }
                };
                if let Some((journal, encode)) = journal {
                    let payload = encode_payload(&outcome, encode);
                    // Write ahead: the outcome is durable before it is
                    // visible in the report.
                    if let Err(e) = journal.lock().unwrap().record(unit, &payload) {
                        let mut slot = io_error.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                }
                *slots[unit].lock().unwrap() = Some(UnitReport {
                    unit,
                    outcome,
                    attempts,
                    resumed: false,
                });
            }));
        }
        // Watchdog: trips in-flight tokens whose deadline passed, so even
        // flag-only pollers get cut off. Runs until all workers return.
        if opts.unit_deadline.is_some() {
            let done = &done;
            let inflight = &inflight;
            let interval = opts.watchdog_interval;
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    inflight.sweep();
                    std::thread::sleep(interval);
                }
            });
        }
        // Join the workers explicitly, then release the watchdog; the
        // scope would otherwise wait forever on the watchdog's loop.
        for h in handles {
            let _ = h.join();
        }
        done.store(true, Ordering::Release);
    });

    if let Some(e) = io_error.into_inner().unwrap() {
        return Err(e);
    }
    let report = EngineReport {
        units: slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("every unit terminates"))
            .collect(),
        retries: retries.into_inner(),
    };
    if dda_obs::enabled() {
        let s = report.summary();
        dda_obs::count("engine.units.ok", s.ok as u64);
        dda_obs::count("engine.units.quarantined", s.quarantined as u64);
        dda_obs::count("engine.units.resumed", s.resumed as u64);
        dda_obs::gauge("engine.workers", workers as i64);
    }
    Ok(report)
}
