//! A resident, overload-safe worker pool for long-lived services.
//!
//! [`run_supervised`](crate::run_supervised) is batch-shaped: it takes a
//! fixed unit count, runs it to completion, and returns. A daemon needs
//! the dual: a pool that outlives any one request, accepts work as it
//! arrives, and stays well-behaved when work arrives faster than it can
//! be done. [`ResidentPool`] provides that:
//!
//! * **admission control** — the job queue is bounded; a submit against a
//!   full queue fails *immediately* with [`SubmitError::Overloaded`]
//!   instead of buffering without bound. Callers (the `dda-serve`
//!   front-end) turn that into a structured `overloaded` response, which
//!   is the load-shedding contract: under storm the daemon degrades to
//!   fast rejections, never to unbounded memory growth or seconds of
//!   queueing latency.
//! * **two-level priorities with starvation-free aging** — [`Priority::High`]
//!   jobs are taken first, *unless* the oldest [`Priority::Normal`] job
//!   has already waited longer than [`PoolOptions::age_limit`]; then the
//!   aged job goes first. A sustained stream of high-priority work
//!   therefore delays normal work by at most `age_limit` per job rather
//!   than forever.
//! * **per-job wall-clock deadlines** — each job receives a
//!   [`CancelToken`] carrying whatever remains of its deadline *measured
//!   from submission*, so time spent queueing counts against the budget
//!   (a request that waited out its whole deadline in the queue starts
//!   with an already-tripped token and can fail fast). A watchdog thread
//!   sweeps in-flight tokens, so even flag-only pollers get cut off.
//! * **panic isolation** — a panicking job is caught and counted; the
//!   worker thread survives and takes the next job. (Service handlers
//!   additionally catch their own panics to produce error responses;
//!   this is the backstop that keeps the pool alive if that layer itself
//!   fails.)
//! * **graceful drain** — [`close`](ResidentPool::close) stops admission;
//!   already-queued jobs still run; [`join`](ResidentPool::join) (or
//!   drop) waits for the workers to finish them and exits cleanly.
//!
//! Counters (`pool.job.submitted/completed/timedout/panicked/shed` and
//! the `pool.queue.depth` gauge) go to `dda-obs`.

use crate::cancel::CancelToken;
use crate::inflight::Inflight;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduling class of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Taken ahead of [`Priority::Normal`] work (subject to aging).
    High,
    /// Default class; protected from starvation by the age limit.
    Normal,
}

/// Configuration for a [`ResidentPool`].
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Maximum queued (admitted, not yet running) jobs across both
    /// priority levels; submits beyond this shed with
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// A normal-priority job that has waited longer than this is taken
    /// ahead of high-priority work (starvation-free aging).
    pub age_limit: Duration,
    /// How often the watchdog sweeps in-flight deadlines.
    pub watchdog_interval: Duration,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            workers: 2,
            queue_capacity: 64,
            age_limit: Duration::from_millis(250),
            watchdog_interval: Duration::from_millis(5),
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; the caller should shed the request
    /// (report `overloaded`) rather than retry in a tight loop.
    Overloaded {
        /// Queue depth observed at rejection time (== capacity).
        depth: usize,
    },
    /// The pool is draining; no new work is admitted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { depth } => {
                write!(f, "pool queue full ({depth} jobs queued)")
            }
            SubmitError::Closed => write!(f, "pool is draining"),
        }
    }
}

impl std::error::Error for SubmitError {}

type Job = Box<dyn FnOnce(&CancelToken) + Send + 'static>;

struct Queued {
    job: Job,
    /// Absolute wall-clock deadline (submission time + requested budget).
    deadline: Option<Instant>,
    enqueued: Instant,
}

struct QueueState {
    high: VecDeque<Queued>,
    normal: VecDeque<Queued>,
    closed: bool,
    /// Jobs currently executing (admission counts queued only, but drain
    /// waits on this too).
    running: usize,
}

impl QueueState {
    fn depth(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

struct Shared {
    state: Mutex<QueueState>,
    takeable: Condvar,
    /// Signalled when a job finishes (drain waiters listen here).
    idle: Condvar,
    capacity: usize,
    age_limit: Duration,
    inflight: Inflight,
    watchdog_done: AtomicBool,
}

/// A resident supervised worker pool; see the module docs.
pub struct ResidentPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl ResidentPool {
    /// Spawns the worker threads and the deadline watchdog.
    pub fn new(opts: &PoolOptions) -> ResidentPool {
        let workers = opts.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                closed: false,
                running: 0,
            }),
            takeable: Condvar::new(),
            idle: Condvar::new(),
            capacity: opts.queue_capacity.max(1),
            age_limit: opts.age_limit,
            inflight: Inflight::new(workers),
            watchdog_done: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(w, &shared))
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            let interval = opts.watchdog_interval;
            Some(std::thread::spawn(move || {
                while !shared.watchdog_done.load(Ordering::Acquire) {
                    // A panicking sweep (possible only via fault
                    // injection today, but cheap insurance regardless)
                    // must not kill the watchdog: deadlines would
                    // silently stop being enforced.
                    let swept = catch_unwind(AssertUnwindSafe(|| {
                        dda_fail::fail_point!("pool.watchdog");
                        shared.inflight.sweep();
                    }));
                    if swept.is_err() {
                        dda_obs::count("pool.watchdog.panicked", 1);
                    }
                    std::thread::sleep(interval);
                }
            }))
        };
        ResidentPool {
            shared,
            workers: handles,
            watchdog,
        }
    }

    /// Submits a job. `deadline` is the job's total wall-clock budget
    /// measured from *now* — queue wait spends it, and the job's
    /// [`CancelToken`] trips once it is gone.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the bounded queue is full (the
    /// job is **not** admitted — shed it), [`SubmitError::Closed`] once
    /// [`close`](ResidentPool::close) has been called.
    pub fn submit<F>(
        &self,
        priority: Priority,
        deadline: Option<Duration>,
        job: F,
    ) -> Result<(), SubmitError>
    where
        F: FnOnce(&CancelToken) + Send + 'static,
    {
        // Failpoint before the queue lock so an injected panic can never
        // poison the pool mutex; `return` sheds as a synthetic overload.
        dda_fail::fail_point!(
            "pool.submit",
            Err(SubmitError::Overloaded {
                depth: self.shared.capacity,
            })
        );
        let now = Instant::now();
        let queued = Queued {
            job: Box::new(job),
            deadline: deadline.map(|d| now + d),
            enqueued: now,
        };
        let mut state = self.shared.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        let depth = state.depth();
        if depth >= self.shared.capacity {
            dda_obs::count("pool.job.shed", 1);
            return Err(SubmitError::Overloaded { depth });
        }
        match priority {
            Priority::High => state.high.push_back(queued),
            Priority::Normal => state.normal.push_back(queued),
        }
        dda_obs::count("pool.job.submitted", 1);
        dda_obs::gauge("pool.queue.depth", state.depth() as i64);
        drop(state);
        self.shared.takeable.notify_one();
        Ok(())
    }

    /// Queued (not yet running) jobs right now.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap().depth()
    }

    /// Stops admission. Already-queued jobs still run; workers exit once
    /// the queue drains. Idempotent, callable from any thread — including
    /// a job running *on* the pool (the serve daemon's `shutdown` request
    /// does exactly that).
    pub fn close(&self) {
        let mut state = self.shared.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.shared.takeable.notify_all();
    }

    /// Blocks until every queued and running job has finished. Does not
    /// require [`close`](ResidentPool::close) first — use it as a barrier
    /// between test phases or before snapshotting counters.
    pub fn quiesce(&self) {
        let mut state = self.shared.state.lock().unwrap();
        while state.depth() > 0 || state.running > 0 {
            state = self.shared.idle.wait(state).unwrap();
        }
    }

    /// Crash-stop: stops admission and discards every queued-but-not-yet
    /// -running job *without running it*, returning how many were
    /// dropped. Jobs already executing finish (or panic) on their own.
    ///
    /// This models what a process crash does to the queue, which is
    /// exactly what the serve supervisor needs: the dropped jobs are
    /// journaled-but-unanswered requests, and the restart path replays
    /// them. Idempotent; callable from any thread, including a job
    /// running on the pool.
    pub fn abort(&self) -> usize {
        let mut state = self.shared.state.lock().unwrap();
        state.closed = true;
        let dropped = state.depth();
        state.high.clear();
        state.normal.clear();
        drop(state);
        self.shared.takeable.notify_all();
        if dropped > 0 {
            dda_obs::count("pool.job.dropped", dropped as u64);
            dda_obs::gauge("pool.queue.depth", 0);
        }
        dropped
    }

    /// Graceful drain: stops admission, runs the backlog dry, joins the
    /// workers and the watchdog.
    pub fn join(mut self) {
        self.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.watchdog_done.store(true, Ordering::Release);
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }
}

impl Drop for ResidentPool {
    fn drop(&mut self) {
        // A dropped pool drains gracefully too, so tests and early-exit
        // paths never leak worker threads. The pool may be dropped *from
        // one of its own workers* (after `abort`, the last owner of the
        // enclosing service state can be a job closure being consumed on
        // a worker thread): a thread cannot join itself, so that handle
        // is skipped — the thread exits on its own right after this drop.
        self.close();
        let me = std::thread::current().id();
        for h in self.workers.drain(..) {
            if h.thread().id() == me {
                continue;
            }
            let _ = h.join();
        }
        self.shared.watchdog_done.store(true, Ordering::Release);
        if let Some(w) = self.watchdog.take() {
            if w.thread().id() != me {
                let _ = w.join();
            }
        }
    }
}

/// Takes the next job per the priority/aging policy, or `None` when the
/// pool is draining and the queue is dry.
fn take(shared: &Shared) -> Option<Queued> {
    let mut state = shared.state.lock().unwrap();
    loop {
        if state.depth() > 0 {
            // High first — unless the oldest normal job has aged past the
            // limit, which bounds how long a high-priority storm can
            // starve normal work.
            let aged = state
                .normal
                .front()
                .is_some_and(|q| q.enqueued.elapsed() > shared.age_limit);
            let queued = if (state.high.is_empty() || aged) && !state.normal.is_empty() {
                state.normal.pop_front()
            } else {
                state.high.pop_front()
            }
            .expect("depth > 0");
            state.running += 1;
            dda_obs::gauge("pool.queue.depth", state.depth() as i64);
            return Some(queued);
        }
        if state.closed {
            return None;
        }
        state = shared.takeable.wait(state).unwrap();
    }
}

fn worker_loop(worker: usize, shared: &Shared) {
    while let Some(queued) = take(shared) {
        let token = match queued.deadline {
            // Remaining budget after queueing; a job that waited out its
            // whole deadline starts already cancelled and fails fast.
            Some(at) => CancelToken::with_deadline(at.saturating_duration_since(Instant::now())),
            None => CancelToken::new(),
        };
        shared.inflight.arm(worker, &token);
        let result = catch_unwind(AssertUnwindSafe(|| {
            dda_fail::fail_point!("pool.exec");
            (queued.job)(&token)
        }));
        shared.inflight.disarm(worker);
        match result {
            Ok(()) => {
                dda_obs::count(
                    if token.is_expired() {
                        "pool.job.timedout"
                    } else {
                        "pool.job.completed"
                    },
                    1,
                );
            }
            Err(_) => {
                // The job's own panic isolation failed; swallow the
                // payload, count it, keep the worker alive.
                dda_obs::count("pool.job.panicked", 1);
            }
        }
        let mut state = shared.state.lock().unwrap();
        state.running -= 1;
        drop(state);
        shared.idle.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn small_pool(workers: usize, capacity: usize) -> ResidentPool {
        ResidentPool::new(&PoolOptions {
            workers,
            queue_capacity: capacity,
            ..PoolOptions::default()
        })
    }

    #[test]
    fn runs_submitted_jobs_and_drains() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = small_pool(3, 64);
        for _ in 0..20 {
            let done = Arc::clone(&done);
            pool.submit(Priority::Normal, None, move |_| {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn full_queue_sheds_instead_of_buffering() {
        let pool = small_pool(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Occupy the single worker...
        let g = Arc::clone(&gate);
        pool.submit(Priority::Normal, None, move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // ...wait until it is actually running (queue empty again)...
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        // ...fill the queue, then overflow it.
        pool.submit(Priority::Normal, None, |_| {}).unwrap();
        pool.submit(Priority::Normal, None, |_| {}).unwrap();
        let err = pool.submit(Priority::Normal, None, |_| {}).unwrap_err();
        assert!(
            matches!(err, SubmitError::Overloaded { depth: 2 }),
            "{err:?}"
        );
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.join();
    }

    #[test]
    fn closed_pool_rejects_new_work_but_finishes_backlog() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = small_pool(1, 64);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(Priority::Normal, None, move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        for _ in 0..5 {
            let done = Arc::clone(&done);
            pool.submit(Priority::Normal, None, move |_| {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.close();
        assert!(matches!(
            pool.submit(Priority::Normal, None, |_| {}),
            Err(SubmitError::Closed)
        ));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 5, "backlog was dropped");
    }

    #[test]
    fn abort_discards_queue_without_running_it() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pool = small_pool(1, 64);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(Priority::Normal, None, move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            pool.submit(Priority::Normal, None, move |_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        let dropped = pool.abort();
        assert_eq!(dropped, 5);
        assert!(matches!(
            pool.submit(Priority::Normal, None, |_| {}),
            Err(SubmitError::Closed)
        ));
        assert_eq!(pool.abort(), 0, "abort is idempotent");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.join();
        assert_eq!(ran.load(Ordering::Relaxed), 0, "aborted jobs must not run");
    }

    #[test]
    fn high_priority_jumps_the_queue() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let pool = small_pool(1, 64);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(Priority::Normal, None, move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        for (label, prio) in [
            ("n1", Priority::Normal),
            ("n2", Priority::Normal),
            ("h1", Priority::High),
        ] {
            let order = Arc::clone(&order);
            pool.submit(prio, None, move |_| {
                order.lock().unwrap().push(label);
            })
            .unwrap();
        }
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.join();
        assert_eq!(*order.lock().unwrap(), vec!["h1", "n1", "n2"]);
    }

    #[test]
    fn aged_normal_job_beats_fresh_high_priority() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let pool = ResidentPool::new(&PoolOptions {
            workers: 1,
            queue_capacity: 64,
            age_limit: Duration::from_millis(20),
            ..PoolOptions::default()
        });
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(Priority::Normal, None, move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        let o = Arc::clone(&order);
        pool.submit(Priority::Normal, None, move |_| {
            o.lock().unwrap().push("aged-normal");
        })
        .unwrap();
        // Let the normal job age past the limit, then stack high work on.
        std::thread::sleep(Duration::from_millis(40));
        let o = Arc::clone(&order);
        pool.submit(Priority::High, None, move |_| {
            o.lock().unwrap().push("high");
        })
        .unwrap();
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.join();
        assert_eq!(
            order.lock().unwrap()[0],
            "aged-normal",
            "aging failed to prevent starvation"
        );
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = small_pool(1, 64);
        pool.submit(Priority::Normal, None, |_| panic!("poisoned job"))
            .unwrap();
        let d = Arc::clone(&done);
        pool.submit(Priority::Normal, None, move |_| {
            d.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        pool.join();
        assert_eq!(
            done.load(Ordering::Relaxed),
            1,
            "worker died with the panic"
        );
    }

    #[test]
    fn queue_wait_spends_the_deadline() {
        let pool = small_pool(1, 64);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(Priority::Normal, None, move |_| {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        let expired = Arc::new(AtomicUsize::new(0));
        let e = Arc::clone(&expired);
        pool.submit(
            Priority::Normal,
            Some(Duration::from_millis(10)),
            move |token| {
                if token.is_cancelled() && token.is_expired() {
                    e.fetch_add(1, Ordering::Relaxed);
                }
            },
        )
        .unwrap();
        // Hold the worker well past the job's deadline before releasing.
        std::thread::sleep(Duration::from_millis(50));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.join();
        assert_eq!(
            expired.load(Ordering::Relaxed),
            1,
            "queue wait did not consume the deadline"
        );
    }

    #[test]
    fn quiesce_waits_for_running_work() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = small_pool(2, 64);
        for _ in 0..8 {
            let d = Arc::clone(&done);
            pool.submit(Priority::Normal, None, move |_| {
                std::thread::sleep(Duration::from_millis(5));
                d.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.quiesce();
        assert_eq!(done.load(Ordering::Relaxed), 8);
        pool.join();
    }
}
