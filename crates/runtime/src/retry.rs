//! Deterministic retry budgets with seeded exponential backoff.
//!
//! Backoff delays double per attempt and carry a seeded jitter so
//! concurrent retries de-synchronise, yet the whole schedule is a pure
//! function of `(seed, unit, attempt)` — the same run replays the same
//! delays, which keeps supervised sweeps reproducible end to end.

use std::time::Duration;

/// Retry budget and backoff schedule for one supervised run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per unit (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent attempt.
    pub base_backoff: Duration,
    /// Upper clamp on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure escalates immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep before retry number `attempt` (1-based: the
    /// delay between attempt `attempt` and attempt `attempt + 1`) of
    /// `unit`. Deterministic per `(seed, unit, attempt)`.
    pub fn backoff(&self, unit: usize, attempt: u32) -> Duration {
        let base = self.base_backoff.as_nanos() as u64;
        if base == 0 {
            return Duration::ZERO;
        }
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        // Jitter in [0, base): enough to spread synchronized retries
        // without perturbing the exponential envelope.
        let jitter = splitmix64(
            self.seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(unit as u64)
                .rotate_left(17)
                .wrapping_add(attempt as u64),
        ) % base;
        Duration::from_nanos(exp.saturating_add(jitter)).min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
            seed: 0xDDA,
        }
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy::default();
        for unit in 0..8 {
            for attempt in 1..5 {
                assert_eq!(p.backoff(unit, attempt), p.backoff(unit, attempt));
            }
        }
    }

    #[test]
    fn backoff_envelope_grows_then_clamps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(16),
            seed: 7,
        };
        // Attempt 1 sleeps >= base, attempt 5 sleeps >= 16*base... until
        // the clamp kicks in.
        assert!(p.backoff(0, 1) >= Duration::from_millis(1));
        assert!(p.backoff(0, 1) < Duration::from_millis(2));
        assert!(p.backoff(0, 3) >= Duration::from_millis(4));
        assert_eq!(p.backoff(0, 30), Duration::from_millis(16));
    }

    #[test]
    fn jitter_differs_across_units() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(10),
            ..RetryPolicy::default()
        };
        let delays: Vec<_> = (0..16).map(|u| p.backoff(u, 1)).collect();
        let distinct: std::collections::BTreeSet<_> = delays.iter().collect();
        assert!(distinct.len() > 8, "jitter too uniform: {delays:?}");
    }

    #[test]
    fn zero_base_means_zero_backoff() {
        let p = RetryPolicy {
            base_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(3, 2), Duration::ZERO);
    }
}
