//! In-flight attempt table shared between a worker pool and its watchdog.
//!
//! One slot per worker holds the [`CancelToken`] of the attempt that
//! worker is currently executing, together with its deadline instant. A
//! watchdog thread periodically [`sweep`]s the table and trips every
//! token whose deadline has passed — the second line of defence behind
//! the token's own embedded deadline, covering code that only polls the
//! cancellation flag and never reads the clock.
//!
//! [`sweep`]: Inflight::sweep

use crate::cancel::CancelToken;
use std::sync::Mutex;
use std::time::Instant;

/// One slot per worker: the armed token and its deadline, if any.
pub(crate) struct Inflight {
    slots: Vec<Mutex<Option<(CancelToken, Instant)>>>,
}

impl Inflight {
    pub(crate) fn new(workers: usize) -> Inflight {
        Inflight {
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Registers `token` as `worker`'s current attempt (no-op for tokens
    /// without a deadline — there is nothing for the watchdog to do).
    pub(crate) fn arm(&self, worker: usize, token: &CancelToken) {
        if let Some(at) = token.deadline() {
            *self.slots[worker].lock().unwrap() = Some((token.clone(), at));
        }
    }

    /// Clears `worker`'s slot after its attempt finishes.
    pub(crate) fn disarm(&self, worker: usize) {
        *self.slots[worker].lock().unwrap() = None;
    }

    /// Trips every armed token whose deadline has passed.
    pub(crate) fn sweep(&self) {
        let now = Instant::now();
        for slot in &self.slots {
            let guard = slot.lock().unwrap();
            if let Some((token, at)) = guard.as_ref() {
                if now >= *at && !token.is_cancelled() {
                    token.cancel();
                    dda_obs::count("engine.watchdog.fired", 1);
                }
            }
        }
    }
}
