//! Cooperative cancellation with optional wall-clock deadlines.
//!
//! A [`CancelToken`] is a cheap, clonable handle shared between a
//! supervisor and the code doing the work. The worker polls
//! [`CancelToken::is_cancelled`] at convenient points (the simulator does
//! so every few thousand interpreted statements) and unwinds gracefully
//! when the token trips. A token trips either because its embedded
//! deadline passed or because a supervisor called [`CancelToken::cancel`]
//! explicitly — the engine's watchdog thread does the latter as a second
//! line of defence, so a deadline fires even for code that only checks
//! the flag.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Wall-clock instant after which the token reads as cancelled.
    deadline: Option<Instant>,
    /// Parent link: a child token also trips when any ancestor trips.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn tripped(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if matches!(self.deadline, Some(at) if Instant::now() >= at) {
            return true;
        }
        match &self.parent {
            Some(p) => p.tripped(),
            None => false,
        }
    }

    fn expired(&self) -> bool {
        if matches!(self.deadline, Some(at) if Instant::now() >= at) {
            return true;
        }
        match &self.parent {
            Some(p) => p.expired(),
            None => false,
        }
    }
}

/// A shared cancellation flag with an optional wall-clock deadline.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same state.
/// The default token never cancels, so threading one through options
/// structs costs nothing on paths that don't use deadlines.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never trips on its own (manual [`cancel`] only).
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that trips `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: None,
            }),
        }
    }

    /// A child token linked to this one: it trips when this token (or any
    /// ancestor) trips, but [`cancel`]ing the child leaves the parent —
    /// and the child's siblings — untouched.
    ///
    /// This is how a group supervisor composes a shared stop signal with
    /// per-member cancellation: hand each member a child of the group
    /// token, and cut individual members loose without stopping the rest.
    /// The agent batch's early-exit does exactly that to cancel losing
    /// chains while the winning chain's deadline still applies.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// [`child`](CancelToken::child) with its own deadline `timeout` from
    /// now, in addition to whatever the parent carries.
    pub fn child_with_deadline(&self, timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Trips the token immediately.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (manual cancel, expired deadline, or
    /// — for [`child`](CancelToken::child) tokens — a tripped ancestor).
    pub fn is_cancelled(&self) -> bool {
        self.inner.tripped()
    }

    /// Whether a deadline along the token's parent chain (if any) has
    /// passed. Distinguishes a wall-timeout from a supervisor-initiated
    /// cancellation.
    pub fn is_expired(&self) -> bool {
        self.inner.expired()
    }

    /// The embedded deadline instant, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_trips() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.is_expired());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn manual_cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert!(!c.is_expired(), "manual cancel is not a deadline expiry");
    }

    #[test]
    fn deadline_trips_after_elapsing() {
        let t = CancelToken::with_deadline(Duration::from_millis(20));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(40));
        assert!(t.is_cancelled());
        assert!(t.is_expired());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn child_observes_parent_cancel_but_not_vice_versa() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert!(a.is_cancelled(), "own cancel trips the child");
        assert!(!parent.is_cancelled(), "child cancel must not leak up");
        assert!(!b.is_cancelled(), "child cancel must not leak sideways");
        parent.cancel();
        assert!(b.is_cancelled(), "parent cancel reaches every child");
    }

    #[test]
    fn child_deadline_composes_with_parent_state() {
        let parent = CancelToken::new();
        let c = parent.child_with_deadline(Duration::from_millis(20));
        assert!(!c.is_cancelled());
        std::thread::sleep(Duration::from_millis(40));
        assert!(c.is_cancelled());
        assert!(c.is_expired(), "own deadline counts as expiry");
        assert!(!parent.is_cancelled());

        let parent = CancelToken::with_deadline(Duration::from_millis(20));
        let c = parent.child();
        std::thread::sleep(Duration::from_millis(40));
        assert!(c.is_cancelled(), "parent deadline reaches the child");
        assert!(c.is_expired(), "parent expiry is expiry for the child");
    }

    #[test]
    fn generous_deadline_does_not_trip_early() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }
}
