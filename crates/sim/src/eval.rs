//! Expression evaluation against the simulator's signal store.
//!
//! Implements context-width propagation (so `{c, s} = a + b` keeps the
//! carry), 4-state semantics via [`crate::ops`], user-defined function
//! calls with bounded recursion, and `$display` format rendering.

use crate::exec::Simulator;
use crate::ops::{self, LogicVecExt};
use dda_verilog::ast::{BinaryOp, CaseKind, Stmt, UnaryOp};
use dda_verilog::{Expr, LogicBit, LogicVec};
use std::collections::HashMap;

/// A local variable frame for function evaluation.
pub(crate) type Frame = HashMap<String, LogicVec>;

const MAX_FN_DEPTH: usize = 64;
const MAX_FN_LOOP: usize = 1_000_000;

impl Simulator {
    fn lookup(&self, name: &str, frame: Option<&Frame>) -> Option<LogicVec> {
        if let Some(f) = frame {
            if let Some(v) = f.get(name) {
                return Some(v.clone());
            }
        }
        self.design
            .index
            .get(name)
            .map(|id| self.store[*id].to_logic_vec())
    }

    /// Natural (self-determined) width of an expression.
    pub(crate) fn natural_width(&self, e: &Expr, frame: Option<&Frame>) -> usize {
        match e {
            Expr::Number(n, _) => n.width.map(|w| w as usize).unwrap_or(32),
            Expr::Str(s, _) => (s.len() * 8).max(1),
            Expr::Ident(i) => {
                if let Some(f) = frame {
                    if let Some(v) = f.get(&i.name) {
                        return v.width();
                    }
                }
                self.design
                    .signal(&i.name)
                    .map(|(_, s)| s.width)
                    .unwrap_or(1)
            }
            Expr::Unary { op, expr, .. } => match op {
                UnaryOp::LogicNot
                | UnaryOp::RedAnd
                | UnaryOp::RedOr
                | UnaryOp::RedXor
                | UnaryOp::RedNand
                | UnaryOp::RedNor
                | UnaryOp::RedXnor => 1,
                _ => self.natural_width(expr, frame),
            },
            Expr::Binary { op, lhs, rhs, .. } => match op {
                BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::CaseEq
                | BinaryOp::CaseNe
                | BinaryOp::LogicAnd
                | BinaryOp::LogicOr => 1,
                BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr | BinaryOp::Pow => {
                    self.natural_width(lhs, frame)
                }
                _ => self
                    .natural_width(lhs, frame)
                    .max(self.natural_width(rhs, frame)),
            },
            Expr::Ternary {
                then_expr,
                else_expr,
                ..
            } => self
                .natural_width(then_expr, frame)
                .max(self.natural_width(else_expr, frame)),
            Expr::Concat(parts, _) => parts.iter().map(|p| self.natural_width(p, frame)).sum(),
            Expr::Repeat { count, exprs, .. } => {
                let c = self
                    .eval(count, 0, None)
                    .to_u64_ext()
                    .unwrap_or(0)
                    .min(4096) as usize;
                let inner: usize = exprs.iter().map(|p| self.natural_width(p, frame)).sum();
                (c * inner).max(1)
            }
            Expr::Index { base, .. } => {
                if let Some(name) = base.as_ident() {
                    if let Some((_, s)) = self.design.signal(name) {
                        if s.mem.is_some() {
                            return s.width;
                        }
                    }
                }
                1
            }
            Expr::PartSelect { msb, lsb, .. } => {
                let m = self.eval(msb, 0, frame).to_u64_ext().unwrap_or(0) as i64;
                let l = self.eval(lsb, 0, frame).to_u64_ext().unwrap_or(0) as i64;
                (m.abs_diff(l) as usize) + 1
            }
            Expr::IndexedPart { width, .. } => {
                self.eval(width, 0, frame).to_u64_ext().unwrap_or(1) as usize
            }
            Expr::Call { name, args, .. } => match name.name.as_str() {
                "$time" | "$stime" | "$realtime" => 64,
                "$random" | "$urandom" => 32,
                "$signed" | "$unsigned" => args
                    .first()
                    .map(|a| self.natural_width(a, frame))
                    .unwrap_or(1),
                "$clog2" => 32,
                _ => self
                    .design
                    .functions
                    .get(&name.name)
                    .map(|f| {
                        f.range
                            .as_ref()
                            .and_then(|r| {
                                let m = self.eval(&r.msb, 0, None).to_u64_ext()? as i64;
                                let l = self.eval(&r.lsb, 0, None).to_u64_ext()? as i64;
                                Some(m.abs_diff(l) as usize + 1)
                            })
                            .unwrap_or(1)
                    })
                    .unwrap_or(1),
            },
        }
    }

    /// Whether an expression carries two's-complement meaning.
    pub(crate) fn is_signed_expr(&self, e: &Expr, frame: Option<&Frame>) -> bool {
        match e {
            Expr::Number(n, _) => n.signed,
            Expr::Ident(i) => {
                if frame.is_some_and(|f| f.contains_key(&i.name)) {
                    return false;
                }
                self.design
                    .signal(&i.name)
                    .map(|(_, s)| s.signed)
                    .unwrap_or(false)
            }
            Expr::Unary {
                op: UnaryOp::Plus | UnaryOp::Neg,
                expr,
                ..
            } => self.is_signed_expr(expr, frame),
            Expr::Binary { op, lhs, rhs, .. } => {
                matches!(
                    op,
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod
                ) && self.is_signed_expr(lhs, frame)
                    && self.is_signed_expr(rhs, frame)
            }
            Expr::Ternary {
                then_expr,
                else_expr,
                ..
            } => self.is_signed_expr(then_expr, frame) && self.is_signed_expr(else_expr, frame),
            Expr::Call { name, args, .. } if name.name == "$signed" => {
                debug_assert!(args.len() <= 1);
                true
            }
            _ => false,
        }
    }

    /// Evaluates `e`. `ctx` is the context width (0 = self-determined):
    /// arithmetic is performed at `max(ctx, natural width)` so carries are
    /// kept when the assignment target is wider than the operands.
    pub(crate) fn eval(&self, e: &Expr, ctx: usize, frame: Option<&Frame>) -> LogicVec {
        self.eval_depth(e, ctx, frame, 0)
    }

    fn eval_depth(&self, e: &Expr, ctx: usize, frame: Option<&Frame>, depth: usize) -> LogicVec {
        if depth > MAX_FN_DEPTH {
            return LogicVec::xs(ctx.max(1));
        }
        match e {
            Expr::Number(n, _) => {
                let w = n.value.width().max(ctx);
                n.value.resize(w, n.signed)
            }
            Expr::Str(s, _) => {
                let mut bits = Vec::new();
                for byte in s.bytes().rev() {
                    for i in 0..8 {
                        bits.push(LogicBit::from(byte >> i & 1 == 1));
                    }
                }
                LogicVec::from_bits(bits)
            }
            Expr::Ident(i) => match self.lookup(&i.name, frame) {
                Some(v) => {
                    let signed = self.is_signed_expr(e, frame);
                    let w = v.width().max(ctx);
                    v.resize(w, signed)
                }
                None => LogicVec::xs(ctx.max(1)),
            },
            Expr::Unary { op, expr, .. } => {
                use UnaryOp::*;
                match op {
                    Plus => self.eval_depth(expr, ctx, frame, depth),
                    Neg => ops::neg(&self.eval_depth(expr, ctx, frame, depth)),
                    LogicNot => ops::log_not(&self.eval_depth(expr, 0, frame, depth)),
                    BitNot => ops::bit_not(&self.eval_depth(expr, ctx, frame, depth)),
                    RedAnd => ops::reduce(
                        &self.eval_depth(expr, 0, frame, depth),
                        LogicBit::and,
                        false,
                    ),
                    RedOr => {
                        ops::reduce(&self.eval_depth(expr, 0, frame, depth), LogicBit::or, false)
                    }
                    RedXor => ops::reduce(
                        &self.eval_depth(expr, 0, frame, depth),
                        LogicBit::xor,
                        false,
                    ),
                    RedNand => {
                        ops::reduce(&self.eval_depth(expr, 0, frame, depth), LogicBit::and, true)
                    }
                    RedNor => {
                        ops::reduce(&self.eval_depth(expr, 0, frame, depth), LogicBit::or, true)
                    }
                    RedXnor => {
                        ops::reduce(&self.eval_depth(expr, 0, frame, depth), LogicBit::xor, true)
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                use BinaryOp::*;
                match op {
                    Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | BitXnor => {
                        let w = ctx
                            .max(self.natural_width(lhs, frame))
                            .max(self.natural_width(rhs, frame));
                        // Selects/concats are self-determined and ignore the
                        // context, so force both operands to the operation
                        // width here (sign-extending signed operands).
                        let a = self
                            .eval_depth(lhs, w, frame, depth)
                            .resize(w, self.is_signed_expr(lhs, frame));
                        let b = self
                            .eval_depth(rhs, w, frame, depth)
                            .resize(w, self.is_signed_expr(rhs, frame));
                        match op {
                            Add => ops::add(&a, &b),
                            Sub => ops::sub(&a, &b),
                            Mul => ops::mul(&a, &b),
                            Div => ops::div(&a, &b),
                            Mod => ops::rem(&a, &b),
                            BitAnd => ops::bit_and(&a, &b),
                            BitOr => ops::bit_or(&a, &b),
                            BitXor => ops::bit_xor(&a, &b),
                            _ => ops::bit_xnor(&a, &b),
                        }
                    }
                    Pow => {
                        let a = self.eval_depth(lhs, ctx, frame, depth);
                        let b = self.eval_depth(rhs, 0, frame, depth);
                        ops::pow(&a, &b)
                    }
                    Shl | Shr | AShr => {
                        let a = self.eval_depth(lhs, ctx, frame, depth);
                        let b = self.eval_depth(rhs, 0, frame, depth);
                        match op {
                            Shl => ops::shl(&a, &b),
                            Shr => ops::shr(&a, &b),
                            _ => {
                                if self.is_signed_expr(lhs, frame) {
                                    ops::ashr(&a, &b)
                                } else {
                                    ops::shr(&a, &b)
                                }
                            }
                        }
                    }
                    Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => {
                        let w = self
                            .natural_width(lhs, frame)
                            .max(self.natural_width(rhs, frame));
                        let signed =
                            self.is_signed_expr(lhs, frame) && self.is_signed_expr(rhs, frame);
                        let a = self.eval_depth(lhs, w, frame, depth).resize(w, signed);
                        let b = self.eval_depth(rhs, w, frame, depth).resize(w, signed);
                        match op {
                            Eq => ops::log_eq(&a, &b),
                            Ne => ops::log_ne(&a, &b),
                            CaseEq => ops::case_eq(&a, &b),
                            CaseNe => {
                                let r = ops::case_eq(&a, &b);
                                LogicVec::from_bool(r.to_u64() == Some(0))
                            }
                            Lt => ops::cmp_lt(&a, &b, signed),
                            Gt => ops::cmp_lt(&b, &a, signed),
                            Le => ops::log_not(&ops::cmp_lt(&b, &a, signed)),
                            _ => ops::log_not(&ops::cmp_lt(&a, &b, signed)),
                        }
                    }
                    LogicAnd => {
                        let a = self.eval_depth(lhs, 0, frame, depth);
                        let b = self.eval_depth(rhs, 0, frame, depth);
                        ops::log_and(&a, &b)
                    }
                    LogicOr => {
                        let a = self.eval_depth(lhs, 0, frame, depth);
                        let b = self.eval_depth(rhs, 0, frame, depth);
                        ops::log_or(&a, &b)
                    }
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                let c = self.eval_depth(cond, 0, frame, depth);
                match c.truthy() {
                    Some(true) => self.eval_depth(then_expr, ctx, frame, depth),
                    Some(false) => self.eval_depth(else_expr, ctx, frame, depth),
                    None => {
                        // IEEE: merge bitwise, x where branches disagree.
                        let a = self.eval_depth(then_expr, ctx, frame, depth);
                        let b = self.eval_depth(else_expr, ctx, frame, depth);
                        let w = a.width().max(b.width());
                        (0..w)
                            .map(|i| {
                                let x = a.bit(i.min(a.width().saturating_sub(1)));
                                let y = b.bit(i.min(b.width().saturating_sub(1)));
                                if x == y && !x.is_unknown() {
                                    x
                                } else {
                                    LogicBit::X
                                }
                            })
                            .collect()
                    }
                }
            }
            Expr::Concat(parts, _) => {
                let mut acc = LogicVec::from_bits(Vec::new());
                for p in parts {
                    let v = self.eval_depth(p, 0, frame, depth);
                    acc = acc.concat(&v);
                }
                if acc.is_empty() {
                    LogicVec::xs(1)
                } else {
                    acc
                }
            }
            Expr::Repeat { count, exprs, .. } => {
                let c = self
                    .eval_depth(count, 0, frame, depth)
                    .to_u64_ext()
                    .unwrap_or(0)
                    .min(4096) as usize;
                let mut inner = LogicVec::from_bits(Vec::new());
                for p in exprs {
                    let v = self.eval_depth(p, 0, frame, depth);
                    inner = inner.concat(&v);
                }
                let r = ops::replicate(&inner, c);
                if r.is_empty() {
                    LogicVec::zeros(1)
                } else {
                    r
                }
            }
            Expr::Index { base, index, .. } => {
                let idx = self.eval_depth(index, 0, frame, depth);
                let Some(name) = base.as_ident() else {
                    // Select on a computed value: evaluate then pick a bit.
                    let b = self.eval_depth(base, 0, frame, depth);
                    return match idx.to_u64_ext() {
                        Some(i) => LogicVec::from_bit(b.bit(i as usize)),
                        None => LogicVec::xs(1),
                    };
                };
                if let Some((id, def)) = self.design.signal(name) {
                    if def.mem.is_some() {
                        // Memory word read.
                        let Some(i) = idx.to_u64_ext() else {
                            return LogicVec::xs(def.width);
                        };
                        return match def.word_offset(i as i64) {
                            Some(off) => self.mems[id][off].to_logic_vec(),
                            None => LogicVec::xs(def.width),
                        };
                    }
                    let Some(i) = idx.to_u64_ext() else {
                        return LogicVec::xs(1);
                    };
                    return match def.bit_offset(i as i64) {
                        Some(off) => LogicVec::from_bit(self.store[id].bit(off)),
                        None => LogicVec::xs(1),
                    };
                }
                // Function-frame local with a bit select.
                if let Some(v) = self.lookup(name, frame) {
                    return match idx.to_u64_ext() {
                        Some(i) => LogicVec::from_bit(v.bit(i as usize)),
                        None => LogicVec::xs(1),
                    };
                }
                LogicVec::xs(1)
            }
            Expr::PartSelect { base, msb, lsb, .. } => {
                let m = self.eval_depth(msb, 0, frame, depth).to_u64_ext();
                let l = self.eval_depth(lsb, 0, frame, depth).to_u64_ext();
                let (Some(m), Some(l)) = (m, l) else {
                    return LogicVec::xs(1);
                };
                let (m, l) = (m as i64, l as i64);
                let width = m.abs_diff(l) as usize + 1;
                if let Some(name) = base.as_ident() {
                    if let Some((id, def)) = self.design.signal(name) {
                        let lo = def.bit_offset(if def.msb >= def.lsb { l } else { m });
                        return match lo {
                            Some(lo) => self.store[id].slice(lo, width).to_logic_vec(),
                            None => LogicVec::xs(width),
                        };
                    }
                    if let Some(v) = self.lookup(name, frame) {
                        return v.slice(l.min(m) as usize, width);
                    }
                }
                let b = self.eval_depth(base, 0, frame, depth);
                b.slice(l.min(m) as usize, width)
            }
            Expr::IndexedPart {
                base,
                start,
                width,
                ascending,
                ..
            } => {
                let s = self.eval_depth(start, 0, frame, depth).to_u64_ext();
                let w = self.eval_depth(width, 0, frame, depth).to_u64_ext();
                let (Some(s), Some(w)) = (s, w) else {
                    return LogicVec::xs(1);
                };
                let (s, w) = (s as i64, w.max(1) as usize);
                let (msb, lsb) = if *ascending {
                    (s + w as i64 - 1, s)
                } else {
                    (s, s - w as i64 + 1)
                };
                if let Some(name) = base.as_ident() {
                    if let Some((id, def)) = self.design.signal(name) {
                        let lo = def.bit_offset(if def.msb >= def.lsb { lsb } else { msb });
                        return match lo {
                            Some(lo) => self.store[id].slice(lo, w).to_logic_vec(),
                            None => LogicVec::xs(w),
                        };
                    }
                }
                let b = self.eval_depth(base, 0, frame, depth);
                b.slice(lsb.max(0) as usize, w)
            }
            Expr::Call { name, args, .. } => self.eval_call(name, args, ctx, frame, depth),
        }
    }

    fn eval_call(
        &self,
        name: &dda_verilog::ast::Ident,
        args: &[Expr],
        ctx: usize,
        frame: Option<&Frame>,
        depth: usize,
    ) -> LogicVec {
        match name.name.as_str() {
            "$time" | "$stime" | "$realtime" => ops::from_u128(self.time as u128, 64),
            "$signed" | "$unsigned" => args
                .first()
                .map(|a| self.eval_depth(a, ctx, frame, depth))
                .unwrap_or_else(|| LogicVec::xs(1)),
            "$clog2" => {
                let v = args
                    .first()
                    .and_then(|a| self.eval_depth(a, 0, frame, depth).to_u64_ext())
                    .unwrap_or(0);
                ops::from_u128((64 - (v.max(1) - 1).leading_zeros() as u64) as u128, 32)
            }
            "$random" | "$urandom" => {
                // Deterministic xorshift from the per-run seed; pure w.r.t.
                // &self, so successive calls in one statement repeat — the
                // scheduler refreshes the state between process steps.
                let mut s = self.rand_state.get();
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                self.rand_state.set(s);
                ops::from_u128((s & 0xFFFF_FFFF) as u128, 32)
            }
            _ => {
                let Some(f) = self.design.functions.get(&name.name) else {
                    return LogicVec::xs(ctx.max(1));
                };
                let mut frame_new: Frame = HashMap::new();
                // Bind arguments.
                for (i, (range, argname)) in f.args.iter().enumerate() {
                    let w = range
                        .as_ref()
                        .and_then(|r| {
                            let m = self.eval_depth(&r.msb, 0, None, depth).to_u64_ext()? as i64;
                            let l = self.eval_depth(&r.lsb, 0, None, depth).to_u64_ext()? as i64;
                            Some(m.abs_diff(l) as usize + 1)
                        })
                        .unwrap_or(1);
                    let v = args
                        .get(i)
                        .map(|a| self.eval_depth(a, w, frame, depth))
                        .unwrap_or_else(|| LogicVec::xs(w))
                        .resize(w, false);
                    frame_new.insert(argname.name.clone(), v);
                }
                // Locals.
                for l in &f.locals {
                    let w = l
                        .range
                        .as_ref()
                        .and_then(|r| {
                            let m = self.eval_depth(&r.msb, 0, None, depth).to_u64_ext()? as i64;
                            let lo = self.eval_depth(&r.lsb, 0, None, depth).to_u64_ext()? as i64;
                            Some(m.abs_diff(lo) as usize + 1)
                        })
                        .unwrap_or(if matches!(l.kind, dda_verilog::ast::NetKind::Integer) {
                            32
                        } else {
                            1
                        });
                    for n in &l.nets {
                        frame_new.insert(n.name.name.clone(), LogicVec::xs(w));
                    }
                }
                // Return variable.
                let ret_w = f
                    .range
                    .as_ref()
                    .and_then(|r| {
                        let m = self.eval_depth(&r.msb, 0, None, depth).to_u64_ext()? as i64;
                        let l = self.eval_depth(&r.lsb, 0, None, depth).to_u64_ext()? as i64;
                        Some(m.abs_diff(l) as usize + 1)
                    })
                    .unwrap_or(1);
                frame_new.insert(f.name.name.clone(), LogicVec::xs(ret_w));
                let mut budget = MAX_FN_LOOP;
                self.exec_fn_stmt(&f.body, &mut frame_new, depth + 1, &mut budget);
                frame_new
                    .remove(&f.name.name)
                    .unwrap_or_else(|| LogicVec::xs(ret_w))
            }
        }
    }

    /// Executes a (blocking-only) function body statement against a frame.
    fn exec_fn_stmt(&self, s: &Stmt, frame: &mut Frame, depth: usize, budget: &mut usize) {
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        match s {
            Stmt::Block { stmts, .. } => {
                for st in stmts {
                    self.exec_fn_stmt(st, frame, depth, budget);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let (target_name, lo, width) = match lhs {
                    Expr::Ident(i) => {
                        let w = frame.get(&i.name).map(|v| v.width()).unwrap_or(1);
                        (i.name.clone(), 0usize, w)
                    }
                    Expr::Index { base, index, .. } => {
                        let Some(n) = base.as_ident() else { return };
                        let i = self
                            .eval_depth(index, 0, Some(frame), depth)
                            .to_u64_ext()
                            .unwrap_or(0) as usize;
                        (n.to_owned(), i, 1)
                    }
                    Expr::PartSelect { base, msb, lsb, .. } => {
                        let Some(n) = base.as_ident() else { return };
                        let m = self
                            .eval_depth(msb, 0, Some(frame), depth)
                            .to_u64_ext()
                            .unwrap_or(0) as usize;
                        let l = self
                            .eval_depth(lsb, 0, Some(frame), depth)
                            .to_u64_ext()
                            .unwrap_or(0) as usize;
                        (n.to_owned(), l.min(m), m.abs_diff(l) + 1)
                    }
                    _ => return,
                };
                let v = self
                    .eval_depth(rhs, width, Some(frame), depth)
                    .resize(width.max(1), false);
                if let Some(slot) = frame.get_mut(&target_name) {
                    if lo == 0 && width >= slot.width() {
                        *slot = v.resize(slot.width(), false);
                    } else {
                        for i in 0..width {
                            slot.set_bit(lo + i, v.bit(i));
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_stmt,
                else_stmt,
                ..
            } => {
                let c = self.eval_depth(cond, 0, Some(frame), depth);
                if c.truthy() == Some(true) {
                    self.exec_fn_stmt(then_stmt, frame, depth, budget);
                } else if let Some(e) = else_stmt {
                    self.exec_fn_stmt(e, frame, depth, budget);
                }
            }
            Stmt::Case {
                kind, expr, arms, ..
            } => {
                let sel = self.eval_depth(expr, 0, Some(frame), depth);
                let mut default = None;
                for arm in arms {
                    if arm.labels.is_empty() {
                        default = Some(&arm.body);
                        continue;
                    }
                    for l in &arm.labels {
                        let lv = self.eval_depth(l, 0, Some(frame), depth);
                        if case_label_matches(*kind, &sel, &lv) {
                            self.exec_fn_stmt(&arm.body, frame, depth, budget);
                            return;
                        }
                    }
                }
                if let Some(d) = default {
                    self.exec_fn_stmt(d, frame, depth, budget);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.exec_fn_stmt(init, frame, depth, budget);
                while *budget > 0
                    && self.eval_depth(cond, 0, Some(frame), depth).truthy() == Some(true)
                {
                    self.exec_fn_stmt(body, frame, depth, budget);
                    self.exec_fn_stmt(step, frame, depth, budget);
                }
            }
            Stmt::While { cond, body, .. } => {
                while *budget > 0
                    && self.eval_depth(cond, 0, Some(frame), depth).truthy() == Some(true)
                {
                    self.exec_fn_stmt(body, frame, depth, budget);
                }
            }
            Stmt::Repeat { count, body, .. } => {
                let n = self
                    .eval_depth(count, 0, Some(frame), depth)
                    .to_u64_ext()
                    .unwrap_or(0);
                for _ in 0..n {
                    if *budget == 0 {
                        break;
                    }
                    self.exec_fn_stmt(body, frame, depth, budget);
                }
            }
            // Delays/events/waits are illegal in functions; ignore.
            _ => {}
        }
    }
}

/// Case-arm matching with `casez`/`casex` wildcard rules.
pub(crate) fn case_label_matches(kind: CaseKind, sel: &LogicVec, label: &LogicVec) -> bool {
    let w = sel.width().max(label.width());
    for i in 0..w {
        let s = sel.bits().get(i).copied().unwrap_or(LogicBit::Zero);
        let l = label.bits().get(i).copied().unwrap_or(LogicBit::Zero);
        let wild = match kind {
            CaseKind::Exact => false,
            CaseKind::Z => s == LogicBit::Z || l == LogicBit::Z,
            CaseKind::X => s.is_unknown() || l.is_unknown(),
        };
        if wild {
            continue;
        }
        if s != l {
            return false;
        }
    }
    true
}

/// Formats a value for `%d`/`%b`/`%h`/`%o`/`%c`.
pub(crate) fn format_value(v: &LogicVec, conv: char, signed: bool) -> String {
    match conv {
        'b' | 'B' => v.to_string(),
        'h' | 'H' | 'x' | 'X' => {
            let mut out = String::new();
            let nibbles = v.width().div_ceil(4);
            for n in (0..nibbles).rev() {
                let mut val = 0u8;
                let mut any_x = false;
                let mut all_z = true;
                for i in 0..4 {
                    let idx = n * 4 + i;
                    if idx >= v.width() {
                        all_z = false;
                        continue;
                    }
                    match v.bit(idx) {
                        LogicBit::One => {
                            val |= 1 << i;
                            all_z = false;
                        }
                        LogicBit::Zero => {
                            all_z = false;
                        }
                        LogicBit::X => {
                            any_x = true;
                            all_z = false;
                        }
                        LogicBit::Z => {}
                    }
                }
                if any_x {
                    out.push('x');
                } else if all_z && v.width() > n * 4 {
                    out.push('z');
                } else {
                    out.push(char::from_digit(val as u32, 16).unwrap_or('?'));
                }
            }
            if out.is_empty() {
                out.push('0');
            }
            out
        }
        'o' | 'O' => {
            if v.has_unknown() {
                "x".to_owned()
            } else {
                format!("{:o}", v.to_u128().unwrap_or(0))
            }
        }
        'c' | 'C' => {
            let b = v.to_u64().unwrap_or(0) as u8;
            (b as char).to_string()
        }
        's' | 'S' => {
            // Interpret as packed ASCII, MSB first.
            let mut s = String::new();
            let bytes = v.width().div_ceil(8);
            for b in (0..bytes).rev() {
                let mut val = 0u8;
                for i in 0..8 {
                    if v.bit(b * 8 + i) == LogicBit::One {
                        val |= 1 << i;
                    }
                }
                if val != 0 {
                    s.push(val as char);
                }
            }
            s
        }
        _ => {
            // decimal
            if v.has_unknown() {
                "x".to_owned()
            } else if signed {
                let w = v.width().min(64);
                let sv = v.resize(w, true).to_i64().unwrap_or(0);
                sv.to_string()
            } else {
                v.to_u128()
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "?".into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> LogicVec {
        LogicVec::parse_binary(s).unwrap()
    }

    #[test]
    fn case_matching_rules() {
        use CaseKind::*;
        assert!(case_label_matches(Exact, &v("10"), &v("10")));
        assert!(!case_label_matches(Exact, &v("1x"), &v("10")));
        // casez: z is a wildcard on either side
        assert!(case_label_matches(Z, &v("10"), &v("1z")));
        assert!(!case_label_matches(Z, &v("10"), &v("1x")));
        // casex: x and z both wild
        assert!(case_label_matches(X, &v("10"), &v("1x")));
    }

    #[test]
    fn value_formatting() {
        let x = LogicVec::from_u64(0xAB, 8);
        assert_eq!(format_value(&x, 'h', false), "ab");
        assert_eq!(format_value(&x, 'd', false), "171");
        let x = LogicVec::from_u64(0xFF, 8);
        assert_eq!(format_value(&x, 'd', true), "-1");
        let mixed = v("1x00");
        assert_eq!(format_value(&mixed, 'd', false), "x");
        assert_eq!(format_value(&mixed, 'h', false), "x");
    }

    #[test]
    fn binary_format_exact() {
        let x = LogicVec::from_u64(0xAB, 8);
        assert_eq!(format_value(&x, 'b', false), "10101011");
    }
}
