//! Value Change Dump (IEEE 1364 §18) waveform recording.
//!
//! Attach a [`VcdRecorder`] to a [`Simulator`](crate::Simulator) run to
//! capture every signal transition, then render the standard `.vcd` text
//! any waveform viewer (GTKWave etc.) reads. Recording is in-memory; the
//! caller decides where the text goes.

use crate::elab::SigId;
use dda_verilog::{LogicBit, LogicVec};
use std::fmt::Write as _;

/// One recorded transition.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Change {
    time: u64,
    sig: SigId,
    value: LogicVec,
}

/// Collects signal transitions during a simulation run.
#[derive(Debug, Clone, Default)]
pub struct VcdRecorder {
    /// (name, width) per recorded signal, indexed by [`SigId`].
    signals: Vec<(String, usize)>,
    changes: Vec<Change>,
    /// Optional filter: record only signals whose name passes.
    prefix_filter: Option<String>,
}

impl VcdRecorder {
    /// Creates a recorder for all signals.
    pub fn new() -> Self {
        VcdRecorder::default()
    }

    /// Creates a recorder limited to signals under a hierarchical prefix
    /// (e.g. `"dut."`); top-level signals always record when the prefix is
    /// empty.
    pub fn with_prefix(prefix: impl Into<String>) -> Self {
        VcdRecorder {
            prefix_filter: Some(prefix.into()),
            ..VcdRecorder::default()
        }
    }

    pub(crate) fn register(&mut self, name: &str, width: usize) {
        self.signals.push((name.to_owned(), width));
    }

    pub(crate) fn record(&mut self, time: u64, sig: SigId, value: &LogicVec) {
        if let Some(p) = &self.prefix_filter {
            match self.signals.get(sig) {
                Some((name, _)) if name.starts_with(p.as_str()) => {}
                _ => return,
            }
        }
        self.changes.push(Change {
            time,
            sig,
            value: value.clone(),
        });
    }

    /// Number of recorded transitions.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Renders the standard VCD text.
    pub fn render(&self, timescale: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date chipdda $end");
        let _ = writeln!(out, "$version dda-sim $end");
        let _ = writeln!(out, "$timescale {timescale} $end");
        let _ = writeln!(out, "$scope module top $end");
        let used: Vec<SigId> = {
            let mut v: Vec<SigId> = self.changes.iter().map(|c| c.sig).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for &sig in &used {
            let (name, width) = &self.signals[sig];
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                width,
                idcode(sig),
                name.replace('.', "_")
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut last_time = u64::MAX;
        for c in &self.changes {
            if c.time != last_time {
                let _ = writeln!(out, "#{}", c.time);
                last_time = c.time;
            }
            let (_, width) = &self.signals[c.sig];
            if *width == 1 {
                let _ = writeln!(out, "{}{}", bit_char(c.value.bit(0)), idcode(c.sig));
            } else {
                let _ = writeln!(out, "b{} {}", c.value, idcode(c.sig));
            }
        }
        out
    }
}

fn bit_char(b: LogicBit) -> char {
    match b {
        LogicBit::Zero => '0',
        LogicBit::One => '1',
        LogicBit::X => 'x',
        LogicBit::Z => 'z',
    }
}

/// VCD identifier codes: printable ASCII 33..=126, little-endian digits.
fn idcode(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimOptions, Simulator};
    use dda_verilog::parse;

    #[test]
    fn records_counter_waveform() {
        let sf = parse(
            "module tb;
             reg clk = 0;
             reg [1:0] n = 0;
             always #5 clk = ~clk;
             always @(posedge clk) n <= n + 1;
             initial #42 $finish;
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&sf, "tb").unwrap();
        sim.enable_vcd(VcdRecorder::new());
        sim.run(&SimOptions::default()).unwrap();
        let vcd = sim.take_vcd().expect("recorder attached");
        assert!(!vcd.is_empty());
        let text = vcd.render("1ns");
        assert!(text.contains("$timescale 1ns $end"));
        assert!(text.contains("$var wire 1"), "{text}");
        assert!(text.contains("$var wire 2"), "{text}");
        // Clock toggles at t=5, 15, 25, 35.
        assert!(text.contains("#5\n"), "{text}");
        assert!(text.contains("#35\n"), "{text}");
        // Multi-bit values use the b-format.
        assert!(text.lines().any(|l| l.starts_with("b10 ")), "{text}");
    }

    #[test]
    fn prefix_filter_limits_scope() {
        let sf = parse(
            "module inner(input clk, output reg q);
             initial q = 0;
             always @(posedge clk) q <= ~q;
             endmodule
             module tb;
             reg clk = 0;
             wire q;
             inner dut(.clk(clk), .q(q));
             always #5 clk = ~clk;
             initial #22 $finish;
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&sf, "tb").unwrap();
        sim.enable_vcd(VcdRecorder::with_prefix("dut."));
        sim.run(&SimOptions::default()).unwrap();
        let vcd = sim.take_vcd().unwrap();
        let text = vcd.render("1ns");
        assert!(text.contains("dut_q"), "{text}");
        assert!(!text.contains("$var wire 1 ! clk"), "{text}");
    }

    #[test]
    fn idcodes_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..10_000 {
            let c = idcode(n);
            assert!(c.chars().all(|ch| (33..=126).contains(&(ch as u32))));
            assert!(seen.insert(c));
        }
    }
}
