//! Event-driven scheduler and process interpreter.
//!
//! The simulator follows the IEEE 1364 stratified event queue: active events
//! run to exhaustion, then nonblocking-assignment updates apply (one delta),
//! and only when the current time is quiescent does time advance to the next
//! scheduled event. Procedural processes are resumable: their continuation
//! is an explicit task stack, so `#delay`, `@(event)` and `wait` suspend and
//! resume without threads.
//!
//! Two execution engines share this scheduler (selected by
//! [`SimOptions::eval_mode`]):
//!
//! * **AST interpretation** re-walks the syntax tree per event — the
//!   reference semantics.
//! * **Bytecode** (the default) runs the flat programs produced by
//!   [`crate::compile`]: signal slots are pre-resolved, expression trees are
//!   register programs, and loop bodies re-push `Arc` pointers instead of
//!   cloning subtrees. Task-stack structure is kept 1:1 with the
//!   interpreter so step budgets and event ordering match exactly.

use crate::compile::{CCont, CStmt, CompiledDesign, ExprProg, Instr};
use crate::elab::{elaborate, Design, ElabError, Process, ProcessKind, SigId};
use crate::eval::{case_label_matches, format_value};
use crate::ops::LogicVecExt;
use dda_runtime::CancelToken;
use dda_verilog::ast::{AssignKind, BinaryOp, Edge, Sensitivity, Stmt, UnaryOp};
use dda_verilog::{Expr, LogicBit, LogicVec, PackedVec, SourceFile};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Which execution engine drives process bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Re-interpret the AST on every event (reference semantics).
    Ast,
    /// Run bytecode compiled once at start-up (same observable behaviour,
    /// checked against the interpreter by the dual-mode tests).
    #[default]
    Bytecode,
    /// Batch-vectorized lockstep execution across R same-design runs (see
    /// [`crate::batch::BatchSim`]). A scalar [`Simulator`] asked to run in
    /// this mode silently executes single-lane bytecode — the mode only
    /// changes behaviour for the batch driver, which retires diverged
    /// lanes back onto the scalar engine.
    Batch,
}

/// Limits for one simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Hard stop on simulated time (a run reaching this is not "finished").
    pub max_time: u64,
    /// Delta-cycle limit within one time step (combinational-loop guard).
    pub max_deltas: usize,
    /// Total statement-execution budget.
    pub max_steps: u64,
    /// Cap on captured `$display` output, in bytes.
    pub output_limit: usize,
    /// Cooperative wall-clock cancellation: the exec loop polls this token
    /// every few thousand statements and aborts with
    /// [`RunErrorKind::WallTimeout`] when it trips. The default token
    /// never trips, so untimed runs pay only an occasional atomic load.
    pub cancel: CancelToken,
    /// Which execution engine to use (bytecode by default).
    pub eval_mode: EvalMode,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_time: 1_000_000,
            max_deltas: 10_000,
            max_steps: 20_000_000,
            output_limit: 1 << 20,
            cancel: CancelToken::new(),
            eval_mode: EvalMode::default(),
        }
    }
}

/// Outcome of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// `$finish`/`$stop` was executed.
    pub finished: bool,
    /// Final simulated time.
    pub time: u64,
    /// Captured `$display`/`$write`/`$monitor` output.
    pub output: String,
    /// Number of `$error`/`$fatal` calls.
    pub error_count: usize,
}

/// Which resource a failed run exhausted. Distinguishes *wall-clock*
/// timeouts (the host spent too long, regardless of simulated time) from
/// the simulated-resource budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunErrorKind {
    /// Delta-cycle limit within one time step (combinational loop).
    DeltaLimit,
    /// Total statement-execution budget (zero-delay runaway loop).
    StepBudget,
    /// The wall-clock deadline on [`SimOptions::cancel`] tripped (or the
    /// run was cancelled by a supervisor).
    WallTimeout,
}

/// A hard simulation failure (runaway loops, wall-clock cutoff).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// What blew up.
    pub message: String,
    /// Simulated time at failure.
    pub time: u64,
    /// Which budget was exhausted.
    pub kind: RunErrorKind,
}

impl RunError {
    /// Whether this failure was a wall-clock cutoff rather than a
    /// simulated-resource budget.
    pub fn is_wall_timeout(&self) -> bool {
        self.kind == RunErrorKind::WallTimeout
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation failed at t={}: {}", self.time, self.message)
    }
}

impl Error for RunError {}

/// How often (in interpreted statements) the exec loop polls the
/// wall-clock cancel token. A power of two keeps the modulo a mask. The
/// period balances overhead (one atomic load per poll) against detection
/// latency for slow-burn bodies whose individual statements are
/// expensive (wide-vector ops run ~µs–ms per statement).
pub(crate) const WALL_POLL_PERIOD: u64 = 1024;

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum Task {
    Exec(Stmt),
    /// Apply a pre-evaluated blocking write (after an intra-assign delay).
    Apply(WriteTarget, PackedVec),
    LoopWhile {
        cond: Expr,
        body: Box<Stmt>,
    },
    LoopFor {
        cond: Expr,
        step: Box<Stmt>,
        body: Box<Stmt>,
    },
    LoopRepeat {
        remaining: u64,
        body: Box<Stmt>,
    },
    LoopForever {
        body: Box<Stmt>,
    },
    /// Re-check a `wait` condition on resume.
    WaitCheck(Expr),
    /// Execute one compiled statement (bytecode mode).
    CExec(Arc<CStmt>),
    /// Loop continuations over compiled nodes: each holds the loop's own
    /// [`CStmt`] so re-pushing is an `Arc` clone, not a subtree clone.
    CLoopWhile(Arc<CStmt>),
    CLoopFor(Arc<CStmt>),
    CLoopRepeat {
        remaining: u64,
        node: Arc<CStmt>,
    },
    CLoopForever(Arc<CStmt>),
    /// Re-check a compiled `wait` condition on resume.
    CWaitCheck {
        cond: Arc<ExprProg>,
        watches: Arc<[SensWatch]>,
    },
}

/// Where a write lands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WriteTarget {
    Full(SigId),
    Bits(SigId, usize, usize),
    Word(SigId, usize),
    /// Concatenated lvalue: parts MSB-first with widths.
    Pack(Vec<(WriteTarget, usize)>),
    /// Discarded (out of range / unknown index).
    Void,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    WaitEvent,
    WaitTime,
    Done,
}

/// One entry of a process's wait set: a signal, an optional bit, and an
/// optional edge requirement.
#[derive(Debug, Clone)]
pub(crate) struct SensWatch {
    pub(crate) sig: SigId,
    pub(crate) bit: Option<usize>,
    pub(crate) edge: Option<Edge>,
}

#[derive(Debug)]
struct ProcRt {
    tasks: Vec<Task>,
    status: Status,
    /// Current wait set (event controls / always sensitivity).
    watches: Arc<[SensWatch]>,
    /// Re-arm sensitivity for `always @(...)` processes.
    rearm: Option<Arc<[SensWatch]>>,
    /// `always` with no event control re-runs on completion.
    free_running: bool,
    is_initial: bool,
    /// Dotted instance path (reserved for `%m` in scoped processes).
    #[allow(dead_code)]
    path: String,
}

#[derive(Debug)]
struct MonitorSpec {
    args: Vec<Expr>,
    last: Option<String>,
}

#[derive(Debug)]
enum FutureEvent {
    Wake(usize),
    Nba(WriteTarget, PackedVec),
}

/// The simulator: elaborated design + runtime state.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sf = dda_verilog::parse(
///     "module tb;\n\
///      reg [3:0] n = 0;\n\
///      initial begin n = n + 1; $display(\"n=%d\", n); $finish; end\n\
///      endmodule")?;
/// let mut sim = dda_sim::Simulator::new(&sf, "tb")?;
/// let result = sim.run(&dda_sim::SimOptions::default())?;
/// assert!(result.finished);
/// assert_eq!(result.output.trim(), "n=1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    pub(crate) design: Design,
    pub(crate) store: Vec<PackedVec>,
    pub(crate) mems: Vec<Vec<PackedVec>>,
    pub(crate) time: u64,
    pub(crate) rand_state: Cell<u64>,
    procs: Vec<ProcRt>,
    /// AST `(lhs, rhs)` pair for continuous assignments (bytecode keeps its
    /// own compiled form; this is the fallback and the `Ast`-mode source).
    cont: Vec<Option<Arc<(Expr, Expr)>>>,
    ready: VecDeque<usize>,
    in_ready: Vec<bool>,
    future: BTreeMap<u64, Vec<FutureEvent>>,
    nba: Vec<(WriteTarget, PackedVec)>,
    pending: Vec<(SigId, PackedVec, PackedVec)>,
    monitors: Vec<MonitorSpec>,
    output: String,
    finished: bool,
    error_count: usize,
    started: bool,
    mode: EvalMode,
    /// The design's bytecode, installed at `start` in bytecode mode.
    compiled: Option<Arc<CompiledDesign>>,
    /// Register file reused across [`Self::eval_prog`] calls (taken with
    /// `mem::take` during evaluation, so programs never observe each
    /// other's registers — they are written before read anyway).
    scratch: Vec<PackedVec>,
    /// Recycled future-map buckets (see [`SimArena`]): `BTreeMap` nodes
    /// cannot retain capacity across inserts, but their `Vec` payloads can.
    bucket_pool: Vec<Vec<FutureEvent>>,
    /// Fused superinstructions executed (reported to dda-obs per run).
    pub(crate) fused_hits: u64,
    vcd: Option<crate::vcd::VcdRecorder>,
}

impl Simulator {
    /// Elaborates `top` from `sf` and prepares a simulator.
    ///
    /// # Errors
    ///
    /// Propagates [`ElabError`] from elaboration.
    pub fn new(sf: &SourceFile, top: &str) -> Result<Simulator, ElabError> {
        let design = elaborate(sf, top)?;
        Ok(Simulator::from_design(design))
    }

    /// Builds a simulator from an already-elaborated design.
    pub fn from_design(design: Design) -> Simulator {
        let mut store = Vec::with_capacity(design.signals.len());
        let mut mems = Vec::with_capacity(design.signals.len());
        for s in &design.signals {
            store.push(PackedVec::xs(s.width));
            if s.mem.is_some() {
                mems.push(vec![PackedVec::xs(s.width); s.mem_len()]);
            } else {
                mems.push(Vec::new());
            }
        }
        let mut procs = Vec::new();
        let mut cont = Vec::new();
        for p in &design.processes {
            let (rt, c) = Self::make_proc(p, &design);
            procs.push(rt);
            cont.push(c);
        }
        Simulator {
            design,
            store,
            mems,
            time: 0,
            rand_state: Cell::new(0x9E3779B97F4A7C15),
            procs,
            cont,
            ready: VecDeque::new(),
            in_ready: Vec::new(),
            future: BTreeMap::new(),
            nba: Vec::new(),
            pending: Vec::new(),
            monitors: Vec::new(),
            output: String::new(),
            finished: false,
            error_count: 0,
            started: false,
            mode: EvalMode::default(),
            compiled: None,
            scratch: Vec::new(),
            bucket_pool: Vec::new(),
            fused_hits: 0,
            vcd: None,
        }
    }

    /// Attaches a waveform recorder; every subsequent signal transition is
    /// captured (see [`crate::vcd::VcdRecorder`]).
    pub fn enable_vcd(&mut self, mut recorder: crate::vcd::VcdRecorder) {
        for s in &self.design.signals {
            recorder.register(&s.name, s.width);
        }
        self.vcd = Some(recorder);
    }

    /// Detaches and returns the waveform recorder, if one was attached.
    pub fn take_vcd(&mut self) -> Option<crate::vcd::VcdRecorder> {
        self.vcd.take()
    }

    /// Seeds the `$random` generator (runs are deterministic per seed).
    pub fn seed_random(&mut self, seed: u64) {
        // splitmix64 step so nearby seeds give unrelated streams
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        self.rand_state.set((z ^ (z >> 31)) | 1);
    }

    /// Clones a process body, defaulting to an empty block so a malformed
    /// `Process` (no body) degrades to a no-op instead of panicking.
    fn body_stmt(p: &Process) -> Stmt {
        p.body
            .as_ref()
            .map(|b| (**b).clone())
            .unwrap_or(Stmt::Block {
                name: None,
                stmts: Vec::new(),
                span: dda_verilog::token::Span::default(),
            })
    }

    fn make_proc(p: &Process, design: &Design) -> (ProcRt, Option<Arc<(Expr, Expr)>>) {
        match &p.kind {
            ProcessKind::Initial => (
                ProcRt {
                    tasks: vec![Task::Exec(Self::body_stmt(p))],
                    status: Status::Ready,
                    watches: Vec::new().into(),
                    rearm: None,
                    free_running: false,
                    is_initial: true,
                    path: p.path.clone(),
                },
                None,
            ),
            ProcessKind::Always(sens) => {
                let watches: Arc<[SensWatch]> = compile_sens(sens, design).into();
                let free_running = watches.is_empty();
                (
                    ProcRt {
                        tasks: vec![Task::Exec(Self::body_stmt(p))],
                        status: if free_running {
                            Status::Ready
                        } else {
                            Status::WaitEvent
                        },
                        watches: Arc::clone(&watches),
                        rearm: Some(watches),
                        free_running,
                        is_initial: false,
                        path: p.path.clone(),
                    },
                    None,
                )
            }
            ProcessKind::Continuous { lhs, rhs } => {
                let mut reads = Vec::new();
                collect_expr_reads(rhs, &mut reads);
                collect_lhs_index_reads(lhs, &mut reads);
                let watches: Arc<[SensWatch]> = reads
                    .iter()
                    .filter_map(|n| {
                        design.index.get(n).map(|id| SensWatch {
                            sig: *id,
                            bit: None,
                            edge: None,
                        })
                    })
                    .collect::<Vec<_>>()
                    .into();
                (
                    ProcRt {
                        tasks: Vec::new(),
                        status: Status::Ready,
                        watches: Arc::clone(&watches),
                        rearm: Some(watches),
                        free_running: false,
                        is_initial: false,
                        path: p.path.clone(),
                    },
                    Some(Arc::new((lhs.clone(), rhs.clone()))),
                )
            }
        }
    }

    /// Reads a signal by hierarchical name.
    pub fn peek(&self, name: &str) -> Option<LogicVec> {
        self.design
            .index
            .get(name)
            .map(|id| self.store[*id].to_logic_vec())
    }

    /// Forces a signal value (testing hook); triggers dependent processes.
    pub fn poke(&mut self, name: &str, value: LogicVec) -> bool {
        let Some(&id) = self.design.index.get(name) else {
            return false;
        };
        self.write(WriteTarget::Full(id), PackedVec::from_logic(&value));
        self.drain_changes();
        true
    }

    /// Captured output so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Current simulated time.
    pub fn time(&self) -> u64 {
        self.time
    }

    fn start(&mut self, mode: EvalMode) {
        self.started = true;
        // A scalar simulator asked for batch mode runs plain bytecode: the
        // batch driver owns lane orchestration, and its retired lanes land
        // here expecting bytecode semantics.
        self.mode = if mode == EvalMode::Batch {
            EvalMode::Bytecode
        } else {
            mode
        };
        if self.mode == EvalMode::Bytecode {
            let compiled = self.design.compiled();
            self.scratch.clear();
            self.scratch.resize(compiled.nregs, PackedVec::default());
            // Swap the AST body seeds for their compiled forms (continuous
            // processes have no body and keep their empty task stack).
            for (i, cp) in compiled.procs.iter().enumerate() {
                if let Some(b) = &cp.body {
                    self.procs[i].tasks = vec![Task::CExec(Arc::clone(b))];
                }
            }
            self.compiled = Some(compiled);
        }
        self.in_ready = vec![false; self.procs.len()];
        // Apply reg initialisers as time-0 changes so combinational logic
        // watching them wakes up.
        for (id, def) in self.design.signals.iter().enumerate() {
            if let Some(init) = &def.init {
                let old = self.store[id].clone();
                let new = PackedVec::from_logic(init).resize(def.width, false);
                self.store[id] = new.clone();
                self.pending.push((id, old, new));
            }
        }
        for (i, p) in self.procs.iter().enumerate() {
            if p.status == Status::Ready {
                self.ready.push_back(i);
                self.in_ready[i] = true;
            }
        }
        self.drain_changes();
    }

    /// Runs to completion, quiescence, or a limit.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the delta or step budget is exhausted
    /// (combinational loops, zero-delay infinite loops).
    pub fn run(&mut self, opts: &SimOptions) -> Result<SimResult, RunError> {
        if !self.started {
            self.start(opts.eval_mode);
        }
        if dda_obs::enabled() {
            dda_obs::count(
                match self.mode {
                    EvalMode::Bytecode | EvalMode::Batch => "sim.run.bytecode",
                    EvalMode::Ast => "sim.run.ast",
                },
                1,
            );
        }
        let mut steps: u64 = 0;
        let result = self.run_loop(opts, &mut steps);
        if dda_obs::enabled() {
            if steps > 0 {
                dda_obs::count("sim.steps", steps);
            }
            if self.fused_hits > 0 {
                dda_obs::count("sim.fused.hits", self.fused_hits);
            }
        }
        self.fused_hits = 0;
        result
    }

    /// The event loop behind [`Sim::run`], split out so the retired-step
    /// count is observable on every exit path (quiescence, `$finish`, and
    /// budget trips alike).
    fn run_loop(&mut self, opts: &SimOptions, steps: &mut u64) -> Result<SimResult, RunError> {
        loop {
            // One time step: drain active events and NBA deltas.
            let mut deltas = 0usize;
            loop {
                if self.finished {
                    break;
                }
                if let Some(p) = self.ready.pop_front() {
                    self.in_ready[p] = false;
                    self.run_proc(p, steps, opts)?;
                    continue;
                }
                if !self.nba.is_empty() {
                    deltas += 1;
                    if deltas > opts.max_deltas {
                        return Err(RunError {
                            message: "nonblocking-update delta limit exceeded".into(),
                            time: self.time,
                            kind: RunErrorKind::DeltaLimit,
                        });
                    }
                    let updates = std::mem::take(&mut self.nba);
                    for (t, v) in updates {
                        self.write(t, v);
                    }
                    self.drain_changes();
                    continue;
                }
                break;
            }
            if self.finished {
                break;
            }
            self.print_monitors();
            // Advance time.
            let Some((&t, _)) = self.future.iter().next() else {
                break; // quiescent
            };
            if t > opts.max_time {
                break;
            }
            // Also poll once per time advance: event-driven livelocks (clock
            // ticks with tiny bodies) advance time far faster than they
            // retire statements.
            self.check_wall(opts)?;
            self.time = t;
            let mut events = self.future.remove(&t).unwrap_or_default();
            for ev in events.drain(..) {
                match ev {
                    FutureEvent::Wake(p) => {
                        if self.procs[p].status == Status::WaitTime {
                            self.procs[p].status = Status::Ready;
                            self.enqueue(p);
                        }
                    }
                    FutureEvent::Nba(t, v) => self.nba.push((t, v)),
                }
            }
            if self.bucket_pool.len() < 64 {
                self.bucket_pool.push(events);
            }
        }
        Ok(SimResult {
            finished: self.finished,
            time: self.time,
            output: self.output.clone(),
            error_count: self.error_count,
        })
    }

    /// Returns a [`RunErrorKind::WallTimeout`] error if the run's cancel
    /// token has tripped (deadline passed or supervisor cancellation).
    #[inline]
    fn check_wall(&self, opts: &SimOptions) -> Result<(), RunError> {
        if opts.cancel.is_cancelled() {
            return Err(RunError {
                message: "wall-clock deadline exceeded".into(),
                time: self.time,
                kind: RunErrorKind::WallTimeout,
            });
        }
        Ok(())
    }

    fn enqueue(&mut self, p: usize) {
        if !self.in_ready[p] {
            self.in_ready[p] = true;
            self.ready.push_back(p);
        }
    }

    fn run_proc(&mut self, p: usize, steps: &mut u64, opts: &SimOptions) -> Result<(), RunError> {
        // Continuous assignment: evaluate and re-suspend.
        if self.cont[p].is_some() {
            self.run_cont(p);
            return Ok(());
        }
        loop {
            if self.finished {
                return Ok(());
            }
            *steps += 1;
            if *steps > opts.max_steps {
                return Err(RunError {
                    message: "statement budget exceeded (runaway loop?)".into(),
                    time: self.time,
                    kind: RunErrorKind::StepBudget,
                });
            }
            // Wall-clock deadline: polled sparsely so the common case pays
            // one branch per statement, and slow wide-vector statements
            // (which burn wall time at few steps) are still caught within
            // a few thousand steps.
            if (*steps).is_multiple_of(WALL_POLL_PERIOD) {
                self.check_wall(opts)?;
            }
            let Some(task) = self.procs[p].tasks.pop() else {
                // Body complete.
                if self.procs[p].is_initial {
                    self.procs[p].status = Status::Done;
                    return Ok(());
                }
                let rearm = self.procs[p]
                    .rearm
                    .clone()
                    .unwrap_or_else(|| Vec::new().into());
                if self.design.processes[p].body.is_none() {
                    // Malformed always with no body: never reschedule.
                    return Ok(());
                }
                let task = match self.mode {
                    EvalMode::Bytecode | EvalMode::Batch => {
                        let body = self
                            .compiled
                            .as_ref()
                            .expect("bytecode installed at start")
                            .procs[p]
                            .body
                            .clone()
                            .expect("non-continuous process has a compiled body");
                        Task::CExec(body)
                    }
                    EvalMode::Ast => {
                        let body = self.design.processes[p]
                            .body
                            .as_ref()
                            .map(|b| (**b).clone())
                            .expect("checked above");
                        Task::Exec(body)
                    }
                };
                self.procs[p].tasks.push(task);
                if self.procs[p].free_running {
                    continue; // always with no sensitivity: run again
                }
                self.procs[p].watches = rearm;
                self.procs[p].status = Status::WaitEvent;
                return Ok(());
            };
            if !self.exec_task(p, task)? {
                return Ok(()); // suspended
            }
        }
    }

    /// One evaluation of a continuous assignment, then re-suspend.
    fn run_cont(&mut self, p: usize) {
        if self.mode == EvalMode::Bytecode {
            let compiled = Arc::clone(self.compiled.as_ref().expect("bytecode installed"));
            if let Some(CCont::Prog { rhs, target }) = &compiled.procs[p].cont {
                let v = self.eval_prog(rhs);
                let wt = self.resolve_ctarget(target);
                let width = target_width(&wt, &self.design);
                self.write(wt, v.resize(width.max(1), false));
                self.procs[p].status = Status::WaitEvent;
                self.drain_changes();
                return;
            }
        }
        let pair = Arc::clone(self.cont[p].as_ref().expect("continuous process"));
        let (lhs, rhs) = (&pair.0, &pair.1);
        let w = self.natural_width(lhs, None);
        let v = self.eval(rhs, w, None);
        let target = self.resolve_target(lhs);
        let width = target_width(&target, &self.design);
        self.write(
            target,
            PackedVec::from_logic(&v.resize(width.max(1), false)),
        );
        self.procs[p].status = Status::WaitEvent;
        self.drain_changes();
    }

    /// Executes one task; returns `false` when the process suspended.
    fn exec_task(&mut self, p: usize, task: Task) -> Result<bool, RunError> {
        match task {
            Task::Apply(target, value) => {
                self.write(target, value);
                self.drain_changes();
                Ok(true)
            }
            Task::WaitCheck(cond) => {
                let v = self.eval(&cond, 0, None);
                if v.truthy() == Some(true) {
                    Ok(true)
                } else {
                    // Keep waiting: push ourselves back and re-suspend.
                    self.procs[p].tasks.push(Task::WaitCheck(cond.clone()));
                    self.set_level_watch(p, &cond);
                    self.procs[p].status = Status::WaitEvent;
                    Ok(false)
                }
            }
            Task::LoopWhile { cond, body } => {
                if self.eval(&cond, 0, None).truthy() == Some(true) {
                    self.procs[p].tasks.push(Task::LoopWhile {
                        cond,
                        body: body.clone(),
                    });
                    self.procs[p].tasks.push(Task::Exec(*body));
                }
                Ok(true)
            }
            Task::LoopFor { cond, step, body } => {
                if self.eval(&cond, 0, None).truthy() == Some(true) {
                    self.procs[p].tasks.push(Task::LoopFor {
                        cond,
                        step: step.clone(),
                        body: body.clone(),
                    });
                    self.procs[p].tasks.push(Task::Exec(*step));
                    self.procs[p].tasks.push(Task::Exec(*body));
                }
                Ok(true)
            }
            Task::LoopRepeat { remaining, body } => {
                if remaining > 0 {
                    self.procs[p].tasks.push(Task::LoopRepeat {
                        remaining: remaining - 1,
                        body: body.clone(),
                    });
                    self.procs[p].tasks.push(Task::Exec(*body));
                }
                Ok(true)
            }
            Task::LoopForever { body } => {
                self.procs[p]
                    .tasks
                    .push(Task::LoopForever { body: body.clone() });
                self.procs[p].tasks.push(Task::Exec(*body));
                Ok(true)
            }
            Task::Exec(stmt) => self.exec_stmt(p, stmt),
            Task::CExec(node) => self.exec_cstmt(p, node),
            Task::CLoopWhile(node) => {
                let CStmt::While { cond, body } = &*node else {
                    unreachable!("CLoopWhile holds a While node");
                };
                if self.eval_prog(cond).truthy() == Some(true) {
                    let body = Arc::clone(body);
                    self.procs[p]
                        .tasks
                        .push(Task::CLoopWhile(Arc::clone(&node)));
                    self.procs[p].tasks.push(Task::CExec(body));
                }
                Ok(true)
            }
            Task::CLoopFor(node) => {
                let CStmt::For {
                    cond, step, body, ..
                } = &*node
                else {
                    unreachable!("CLoopFor holds a For node");
                };
                if self.eval_prog(cond).truthy() == Some(true) {
                    let (step, body) = (Arc::clone(step), Arc::clone(body));
                    self.procs[p].tasks.push(Task::CLoopFor(Arc::clone(&node)));
                    self.procs[p].tasks.push(Task::CExec(step));
                    self.procs[p].tasks.push(Task::CExec(body));
                }
                Ok(true)
            }
            Task::CLoopRepeat { remaining, node } => {
                if remaining > 0 {
                    let CStmt::Repeat { body, .. } = &*node else {
                        unreachable!("CLoopRepeat holds a Repeat node");
                    };
                    let body = Arc::clone(body);
                    self.procs[p].tasks.push(Task::CLoopRepeat {
                        remaining: remaining - 1,
                        node: Arc::clone(&node),
                    });
                    self.procs[p].tasks.push(Task::CExec(body));
                }
                Ok(true)
            }
            Task::CLoopForever(node) => {
                let CStmt::Forever { body } = &*node else {
                    unreachable!("CLoopForever holds a Forever node");
                };
                let body = Arc::clone(body);
                self.procs[p]
                    .tasks
                    .push(Task::CLoopForever(Arc::clone(&node)));
                self.procs[p].tasks.push(Task::CExec(body));
                Ok(true)
            }
            Task::CWaitCheck { cond, watches } => {
                if self.eval_prog(&cond).truthy() == Some(true) {
                    Ok(true)
                } else {
                    self.procs[p].tasks.push(Task::CWaitCheck {
                        cond,
                        watches: Arc::clone(&watches),
                    });
                    self.procs[p].watches = watches;
                    self.procs[p].status = Status::WaitEvent;
                    Ok(false)
                }
            }
        }
    }

    fn exec_stmt(&mut self, p: usize, stmt: Stmt) -> Result<bool, RunError> {
        match stmt {
            Stmt::Block { stmts, .. } => {
                for s in stmts.into_iter().rev() {
                    self.procs[p].tasks.push(Task::Exec(s));
                }
                Ok(true)
            }
            Stmt::Null { .. } => Ok(true),
            Stmt::Assign {
                lhs,
                rhs,
                kind,
                delay,
                ..
            } => {
                let w = self.natural_width(&lhs, None);
                let value = self.eval(&rhs, w, None);
                let target = self.resolve_target(&lhs);
                let width = target_width(&target, &self.design).max(1);
                let value =
                    PackedVec::from_logic(&value.resize(width, self.is_signed_expr(&rhs, None)));
                let delay_amt = delay
                    .as_ref()
                    .map(|d| self.eval(d, 0, None).to_u64_ext().unwrap_or(0));
                self.finish_assign(p, kind, target, value, delay_amt)
            }
            Stmt::If {
                cond,
                then_stmt,
                else_stmt,
                ..
            } => {
                let c = self.eval(&cond, 0, None);
                if c.truthy() == Some(true) {
                    self.procs[p].tasks.push(Task::Exec(*then_stmt));
                } else if let Some(e) = else_stmt {
                    self.procs[p].tasks.push(Task::Exec(*e));
                }
                Ok(true)
            }
            Stmt::Case {
                kind, expr, arms, ..
            } => {
                let selw = self.natural_width(&expr, None);
                let sel = self.eval(&expr, 0, None);
                let mut default = None;
                for arm in arms {
                    if arm.labels.is_empty() {
                        default = Some(arm.body);
                        continue;
                    }
                    let mut hit = false;
                    for l in &arm.labels {
                        let lv = self.eval(l, selw, None);
                        if case_label_matches(kind, &sel, &lv) {
                            hit = true;
                            break;
                        }
                    }
                    if hit {
                        self.procs[p].tasks.push(Task::Exec(arm.body));
                        return Ok(true);
                    }
                }
                if let Some(d) = default {
                    self.procs[p].tasks.push(Task::Exec(d));
                }
                Ok(true)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.procs[p].tasks.push(Task::LoopFor { cond, step, body });
                self.procs[p].tasks.push(Task::Exec(*init));
                Ok(true)
            }
            Stmt::While { cond, body, .. } => {
                self.procs[p].tasks.push(Task::LoopWhile { cond, body });
                Ok(true)
            }
            Stmt::Repeat { count, body, .. } => {
                let n = self.eval(&count, 0, None).to_u64_ext().unwrap_or(0);
                self.procs[p]
                    .tasks
                    .push(Task::LoopRepeat { remaining: n, body });
                Ok(true)
            }
            Stmt::Forever { body, .. } => {
                self.procs[p].tasks.push(Task::LoopForever { body });
                Ok(true)
            }
            Stmt::Delay { amount, stmt, .. } => {
                let d = self.eval(&amount, 0, None).to_u64_ext().unwrap_or(0);
                if let Some(s) = stmt {
                    self.procs[p].tasks.push(Task::Exec(*s));
                }
                self.schedule_wake(p, self.time + d);
                Ok(false)
            }
            Stmt::Event {
                sensitivity, stmt, ..
            } => {
                if let Some(s) = stmt {
                    self.procs[p].tasks.push(Task::Exec(*s));
                }
                let watches = compile_sens(&sensitivity, &self.design);
                if watches.is_empty() {
                    // Nothing observable: treat as a no-op rather than hang.
                    return Ok(true);
                }
                self.procs[p].watches = watches.into();
                self.procs[p].status = Status::WaitEvent;
                Ok(false)
            }
            Stmt::Wait { cond, stmt, .. } => {
                if let Some(s) = stmt {
                    self.procs[p].tasks.push(Task::Exec(*s));
                }
                let v = self.eval(&cond, 0, None);
                if v.truthy() == Some(true) {
                    Ok(true)
                } else {
                    self.procs[p].tasks.push(Task::WaitCheck(cond.clone()));
                    self.set_level_watch(p, &cond);
                    self.procs[p].status = Status::WaitEvent;
                    Ok(false)
                }
            }
            Stmt::SysCall { name, args, .. } => {
                self.exec_syscall(p, &name, &args);
                Ok(!self.finished)
            }
        }
    }

    /// Executes one compiled statement (bytecode mode). Task-push order
    /// matches [`Self::exec_stmt`] arm for arm so step counts and event
    /// ordering are identical across modes.
    fn exec_cstmt(&mut self, p: usize, node: Arc<CStmt>) -> Result<bool, RunError> {
        match &*node {
            CStmt::Block(stmts) => {
                for s in stmts.iter().rev() {
                    self.procs[p].tasks.push(Task::CExec(Arc::clone(s)));
                }
                Ok(true)
            }
            CStmt::Null => Ok(true),
            CStmt::Assign {
                rhs,
                target,
                signed,
                kind,
                delay,
            } => {
                let value = self.eval_prog(rhs);
                let target = self.resolve_ctarget(target);
                let width = target_width(&target, &self.design).max(1);
                let value = value.resize(width, *signed);
                let delay_amt = delay
                    .as_ref()
                    .map(|d| self.eval_prog(d).to_u64_ext().unwrap_or(0));
                self.finish_assign(p, *kind, target, value, delay_amt)
            }
            CStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                if self.eval_prog(cond).truthy() == Some(true) {
                    self.procs[p].tasks.push(Task::CExec(Arc::clone(then_s)));
                } else if let Some(e) = else_s {
                    self.procs[p].tasks.push(Task::CExec(Arc::clone(e)));
                }
                Ok(true)
            }
            CStmt::Case {
                wild_z,
                wild_x,
                sel,
                arms,
            } => {
                let sel = self.eval_prog(sel);
                let mut default = None;
                for arm in arms.iter() {
                    if arm.labels.is_empty() {
                        default = Some(&arm.body);
                        continue;
                    }
                    let mut hit = false;
                    for l in arm.labels.iter() {
                        let lv = self.eval_prog(l);
                        if sel.matches_with_wildcards(&lv, *wild_z, *wild_x) {
                            hit = true;
                            break;
                        }
                    }
                    if hit {
                        self.procs[p].tasks.push(Task::CExec(Arc::clone(&arm.body)));
                        return Ok(true);
                    }
                }
                if let Some(d) = default {
                    self.procs[p].tasks.push(Task::CExec(Arc::clone(d)));
                }
                Ok(true)
            }
            CStmt::For { init, .. } => {
                self.procs[p].tasks.push(Task::CLoopFor(Arc::clone(&node)));
                self.procs[p].tasks.push(Task::CExec(Arc::clone(init)));
                Ok(true)
            }
            CStmt::While { .. } => {
                self.procs[p]
                    .tasks
                    .push(Task::CLoopWhile(Arc::clone(&node)));
                Ok(true)
            }
            CStmt::Repeat { count, .. } => {
                let n = self.eval_prog(count).to_u64_ext().unwrap_or(0);
                self.procs[p].tasks.push(Task::CLoopRepeat {
                    remaining: n,
                    node: Arc::clone(&node),
                });
                Ok(true)
            }
            CStmt::Forever { .. } => {
                self.procs[p]
                    .tasks
                    .push(Task::CLoopForever(Arc::clone(&node)));
                Ok(true)
            }
            CStmt::Delay { amount, stmt } => {
                let d = self.eval_prog(amount).to_u64_ext().unwrap_or(0);
                if let Some(s) = stmt {
                    self.procs[p].tasks.push(Task::CExec(Arc::clone(s)));
                }
                self.schedule_wake(p, self.time + d);
                Ok(false)
            }
            CStmt::Event { watches, stmt } => {
                if let Some(s) = stmt {
                    self.procs[p].tasks.push(Task::CExec(Arc::clone(s)));
                }
                if watches.is_empty() {
                    return Ok(true);
                }
                self.procs[p].watches = Arc::clone(watches);
                self.procs[p].status = Status::WaitEvent;
                Ok(false)
            }
            CStmt::Wait {
                cond,
                watches,
                stmt,
            } => {
                if let Some(s) = stmt {
                    self.procs[p].tasks.push(Task::CExec(Arc::clone(s)));
                }
                if self.eval_prog(cond).truthy() == Some(true) {
                    Ok(true)
                } else {
                    self.procs[p].tasks.push(Task::CWaitCheck {
                        cond: Arc::clone(cond),
                        watches: Arc::clone(watches),
                    });
                    self.procs[p].watches = Arc::clone(watches);
                    self.procs[p].status = Status::WaitEvent;
                    Ok(false)
                }
            }
            CStmt::SysCall { name, args } => {
                self.exec_syscall(p, name, args);
                Ok(!self.finished)
            }
            CStmt::Ast(s) => self.exec_stmt(p, (**s).clone()),
        }
    }

    /// Shared tail of blocking/nonblocking assignment dispatch.
    fn finish_assign(
        &mut self,
        p: usize,
        kind: AssignKind,
        target: WriteTarget,
        value: PackedVec,
        delay_amt: Option<u64>,
    ) -> Result<bool, RunError> {
        match (kind, delay_amt) {
            (AssignKind::Blocking, None) => {
                self.write(target, value);
                self.drain_changes();
                Ok(true)
            }
            (AssignKind::Blocking, Some(d)) => {
                self.procs[p].tasks.push(Task::Apply(target, value));
                self.schedule_wake(p, self.time + d);
                Ok(false)
            }
            (AssignKind::NonBlocking, None) => {
                self.nba.push((target, value));
                Ok(true)
            }
            (AssignKind::NonBlocking, Some(d)) => {
                let t = self.time + d;
                self.future_push(t, FutureEvent::Nba(target, value));
                Ok(true)
            }
        }
    }

    /// Runs a register program and returns its result value.
    fn eval_prog(&mut self, prog: &ExprProg) -> PackedVec {
        // Take the scratch register file so `&self` helpers (the AST
        // fallback, `$random`) can run while registers are held. Programs
        // write every register before reading it, so stale values from a
        // previous program are never observed.
        let mut regs = std::mem::take(&mut self.scratch);
        if regs.len() < prog.nregs {
            regs.resize(prog.nregs, PackedVec::default());
        }
        for ins in prog.instrs.iter() {
            let (dst, v) = match ins {
                Instr::Const { dst, v } => (*dst, v.clone()),
                Instr::Load { dst, sig } => (*dst, self.store[*sig].clone()),
                Instr::LoadBit { dst, sig, off } => {
                    (*dst, PackedVec::from_bit(self.store[*sig].bit(*off)))
                }
                Instr::LoadSlice {
                    dst,
                    sig,
                    lo,
                    width,
                } => (*dst, self.store[*sig].slice(*lo, *width)),
                Instr::LoadWordConst { dst, sig, off } => (*dst, self.mems[*sig][*off].clone()),
                Instr::LoadWord { dst, sig, idx } => {
                    let def = &self.design.signals[*sig];
                    let v = match regs[*idx].to_u64_ext() {
                        Some(i) => match def.word_offset(i as i64) {
                            Some(off) => self.mems[*sig][off].clone(),
                            None => PackedVec::xs(def.width),
                        },
                        None => PackedVec::xs(def.width),
                    };
                    (*dst, v)
                }
                Instr::LoadBitDyn { dst, sig, idx } => {
                    let v = match regs[*idx].to_u64_ext() {
                        Some(i) => match self.design.signals[*sig].bit_offset(i as i64) {
                            Some(off) => PackedVec::from_bit(self.store[*sig].bit(off)),
                            None => PackedVec::xs(1),
                        },
                        None => PackedVec::xs(1),
                    };
                    (*dst, v)
                }
                Instr::SliceReg { dst, a, lo, width } => (*dst, regs[*a].slice(*lo, *width)),
                Instr::Resize {
                    dst,
                    a,
                    width,
                    signed,
                } => (*dst, regs[*a].resize(*width, *signed)),
                Instr::Un { dst, op, a } => {
                    use UnaryOp::*;
                    let x = &regs[*a];
                    let v = match op {
                        Plus => x.clone(),
                        Neg => x.neg(),
                        LogicNot => x.log_not(),
                        BitNot => x.bit_not(),
                        RedAnd => x.reduce_and(false),
                        RedNand => x.reduce_and(true),
                        RedOr => x.reduce_or(false),
                        RedNor => x.reduce_or(true),
                        RedXor => x.reduce_xor(false),
                        RedXnor => x.reduce_xor(true),
                    };
                    (*dst, v)
                }
                Instr::Bin {
                    dst,
                    op,
                    a,
                    b,
                    signed,
                } => (*dst, apply_bin(*op, &regs[*a], &regs[*b], *signed)),
                Instr::LoadBin {
                    dst,
                    sig,
                    op,
                    b,
                    swapped,
                    signed,
                } => {
                    self.fused_hits += 1;
                    let s = &self.store[*sig];
                    let v = if *swapped {
                        apply_bin(*op, &regs[*b], s, *signed)
                    } else {
                        apply_bin(*op, s, &regs[*b], *signed)
                    };
                    (*dst, v)
                }
                Instr::BinImm {
                    dst,
                    op,
                    a,
                    imm,
                    swapped,
                    signed,
                } => {
                    self.fused_hits += 1;
                    let v = if *swapped {
                        apply_bin(*op, imm, &regs[*a], *signed)
                    } else {
                        apply_bin(*op, &regs[*a], imm, *signed)
                    };
                    (*dst, v)
                }
                Instr::Mux { dst, cond, t, f } => {
                    let v = match regs[*cond].truthy() {
                        Some(true) => regs[*t].clone(),
                        Some(false) => regs[*f].clone(),
                        None => regs[*t].ternary_merge(&regs[*f]),
                    };
                    (*dst, v)
                }
                Instr::CmpMux {
                    dst,
                    op,
                    a,
                    b,
                    signed,
                    t,
                    f,
                } => {
                    self.fused_hits += 1;
                    let cond = apply_bin(*op, &regs[*a], &regs[*b], *signed);
                    let v = match cond.truthy() {
                        Some(true) => regs[*t].clone(),
                        Some(false) => regs[*f].clone(),
                        None => regs[*t].ternary_merge(&regs[*f]),
                    };
                    (*dst, v)
                }
                Instr::Concat { dst, parts } => {
                    let mut acc = PackedVec::default();
                    for r in parts.iter() {
                        acc = acc.concat(&regs[*r]);
                    }
                    let v = if acc.is_empty() {
                        PackedVec::xs(1)
                    } else {
                        acc
                    };
                    (*dst, v)
                }
                Instr::Repl { dst, parts, count } => {
                    let mut inner = PackedVec::default();
                    for r in parts.iter() {
                        inner = inner.concat(&regs[*r]);
                    }
                    let r = inner.replicate(*count);
                    let v = if r.is_empty() { PackedVec::zeros(1) } else { r };
                    (*dst, v)
                }
                Instr::Rand { dst } => {
                    let mut s = self.rand_state.get();
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    self.rand_state.set(s);
                    (*dst, PackedVec::from_u64(s & 0xFFFF_FFFF, 32))
                }
                Instr::Time { dst } => (*dst, PackedVec::from_u64(self.time, 64)),
                Instr::Fallback { dst, expr, ctx } => {
                    (*dst, PackedVec::from_logic(&self.eval(expr, *ctx, None)))
                }
            };
            regs[dst] = v;
        }
        let out = std::mem::take(&mut regs[prog.out]);
        self.scratch = regs;
        out
    }

    /// Resolves a compiled lvalue, running index programs for the dynamic
    /// shapes; mirrors [`Self::resolve_target`].
    fn resolve_ctarget(&mut self, t: &crate::compile::CTarget) -> WriteTarget {
        use crate::compile::CTarget;
        match t {
            CTarget::Full(id) => WriteTarget::Full(*id),
            CTarget::BitsConst(id, lo, w) => WriteTarget::Bits(*id, *lo, *w),
            CTarget::WordConst(id, off) => WriteTarget::Word(*id, *off),
            CTarget::BitDyn { sig, idx } => match self.eval_prog(idx).to_u64_ext() {
                Some(v) => match self.design.signals[*sig].bit_offset(v as i64) {
                    Some(o) => WriteTarget::Bits(*sig, o, 1),
                    None => WriteTarget::Void,
                },
                None => WriteTarget::Void,
            },
            CTarget::WordDyn { sig, idx } => match self.eval_prog(idx).to_u64_ext() {
                Some(v) => match self.design.signals[*sig].word_offset(v as i64) {
                    Some(o) => WriteTarget::Word(*sig, o),
                    None => WriteTarget::Void,
                },
                None => WriteTarget::Void,
            },
            CTarget::Pack(parts) => WriteTarget::Pack(
                parts
                    .iter()
                    .map(|part| {
                        let t = self.resolve_ctarget(part);
                        let w = target_width(&t, &self.design);
                        (t, w)
                    })
                    .collect(),
            ),
            CTarget::Void => WriteTarget::Void,
        }
    }

    fn set_level_watch(&mut self, p: usize, cond: &Expr) {
        self.procs[p].watches = level_watches(cond, &self.design).into();
    }

    fn schedule_wake(&mut self, p: usize, t: u64) {
        self.procs[p].status = Status::WaitTime;
        self.future_push(t, FutureEvent::Wake(p));
    }

    /// Inserts a future event, reusing a pooled bucket for new time slots
    /// so repeated runs through a [`SimArena`] stop allocating.
    fn future_push(&mut self, t: u64, ev: FutureEvent) {
        use std::collections::btree_map::Entry;
        match self.future.entry(t) {
            Entry::Occupied(mut e) => e.get_mut().push(ev),
            Entry::Vacant(e) => {
                let mut bucket = self.bucket_pool.pop().unwrap_or_default();
                bucket.push(ev);
                e.insert(bucket);
            }
        }
    }

    fn exec_syscall(&mut self, p: usize, name: &str, args: &[Expr]) {
        match name {
            "display" | "write" | "strobe" => {
                let text = self.format_args(args);
                self.push_output(&text);
                if name != "write" {
                    self.push_output("\n");
                }
            }
            "monitor" => {
                self.monitors.push(MonitorSpec {
                    args: args.to_vec(),
                    last: None,
                });
            }
            "finish" | "stop" => {
                self.finished = true;
            }
            "error" | "warning" | "info" => {
                if name == "error" {
                    self.error_count += 1;
                }
                let text = self.format_args(args);
                self.push_output(&format!("[{}] {}\n", name.to_uppercase(), text));
            }
            "fatal" => {
                self.error_count += 1;
                let text = self.format_args(args);
                self.push_output(&format!("[FATAL] {text}\n"));
                self.finished = true;
            }
            // Waveform / misc directives are accepted and ignored.
            "dumpfile" | "dumpvars" | "dumpon" | "dumpoff" | "timeformat" | "readmemh"
            | "readmemb" => {}
            _ => {
                let _ = p;
            }
        }
    }

    fn push_output(&mut self, s: &str) {
        // Output cap prevents runaway testbenches from eating memory; the
        // limit is generous compared to benchmark transcripts.
        if self.output.len() < (1 << 20) {
            self.output.push_str(s);
        }
    }

    pub(crate) fn format_args(&self, args: &[Expr]) -> String {
        let mut out = String::new();
        if args.is_empty() {
            return out;
        }
        if let Expr::Str(fmt, _) = &args[0] {
            let mut rest = args[1..].iter();
            let mut chars = fmt.chars().peekable();
            while let Some(c) = chars.next() {
                if c != '%' {
                    out.push(c);
                    continue;
                }
                // %[0][width]conv
                let mut zero = false;
                let mut width = String::new();
                while let Some(&d) = chars.peek() {
                    if d == '0' && width.is_empty() {
                        zero = true;
                        chars.next();
                    } else if d.is_ascii_digit() {
                        width.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let Some(conv) = chars.next() else { break };
                match conv {
                    '%' => out.push('%'),
                    'm' | 'M' => {
                        // Instance path of the calling process; best-effort.
                        out.push_str("top");
                    }
                    't' | 'T' => {
                        if let Some(a) = rest.next() {
                            let v = self.eval(a, 0, None);
                            out.push_str(&format_value(&v, 'd', false));
                        }
                    }
                    's' | 'S' => {
                        if let Some(a) = rest.next() {
                            if let Expr::Str(s, _) = a {
                                out.push_str(s);
                            } else {
                                let v = self.eval(a, 0, None);
                                out.push_str(&format_value(&v, 's', false));
                            }
                        }
                    }
                    c => {
                        if let Some(a) = rest.next() {
                            let signed = self.is_signed_expr(a, None);
                            let v = self.eval(a, 0, None);
                            let s = format_value(&v, c, signed);
                            let w: usize = width.parse().unwrap_or(0);
                            if s.len() < w {
                                let pad = if zero { '0' } else { ' ' };
                                for _ in 0..(w - s.len()) {
                                    out.push(pad);
                                }
                            }
                            out.push_str(&s);
                        }
                    }
                }
            }
        } else {
            let parts: Vec<String> = args
                .iter()
                .map(|a| {
                    let signed = self.is_signed_expr(a, None);
                    let v = self.eval(a, 0, None);
                    format_value(&v, 'd', signed)
                })
                .collect();
            out.push_str(&parts.join(" "));
        }
        out
    }

    fn print_monitors(&mut self) {
        for i in 0..self.monitors.len() {
            let text = self.format_args(&self.monitors[i].args);
            if self.monitors[i].last.as_deref() != Some(text.as_str()) {
                self.push_output(&text);
                self.push_output("\n");
                self.monitors[i].last = Some(text);
            }
        }
    }

    /// Resolves an lvalue expression to a write target, evaluating index
    /// expressions with current values.
    pub(crate) fn resolve_target(&self, lhs: &Expr) -> WriteTarget {
        match lhs {
            Expr::Ident(i) => match self.design.index.get(&i.name) {
                Some(id) => WriteTarget::Full(*id),
                None => WriteTarget::Void,
            },
            Expr::Index { base, index, .. } => {
                let Some(name) = base.as_ident() else {
                    return WriteTarget::Void;
                };
                let Some((id, def)) = self.design.signal(name) else {
                    return WriteTarget::Void;
                };
                let (is_mem, bit_off, word_off) = {
                    let idx = self.eval(index, 0, None);
                    match idx.to_u64_ext() {
                        None => return WriteTarget::Void,
                        Some(v) => {
                            let v = v as i64;
                            (def.mem.is_some(), def.bit_offset(v), def.word_offset(v))
                        }
                    }
                };
                if is_mem {
                    match word_off {
                        Some(o) => WriteTarget::Word(id, o),
                        None => WriteTarget::Void,
                    }
                } else {
                    match bit_off {
                        Some(o) => WriteTarget::Bits(id, o, 1),
                        None => WriteTarget::Void,
                    }
                }
            }
            Expr::PartSelect { base, msb, lsb, .. } => {
                let Some(name) = base.as_ident() else {
                    return WriteTarget::Void;
                };
                let Some((id, def)) = self.design.signal(name) else {
                    return WriteTarget::Void;
                };
                let m = self.eval(msb, 0, None).to_u64_ext();
                let l = self.eval(lsb, 0, None).to_u64_ext();
                let (Some(m), Some(l)) = (m, l) else {
                    return WriteTarget::Void;
                };
                let (m, l) = (m as i64, l as i64);
                let width = m.abs_diff(l) as usize + 1;
                let lo = def.bit_offset(if def.msb >= def.lsb { l } else { m });
                match lo {
                    Some(lo) => WriteTarget::Bits(id, lo, width),
                    None => WriteTarget::Void,
                }
            }
            Expr::IndexedPart {
                base,
                start,
                width,
                ascending,
                ..
            } => {
                let Some(name) = base.as_ident() else {
                    return WriteTarget::Void;
                };
                let Some((id, def)) = self.design.signal(name) else {
                    return WriteTarget::Void;
                };
                let s = self.eval(start, 0, None).to_u64_ext();
                let w = self.eval(width, 0, None).to_u64_ext();
                let (Some(s), Some(w)) = (s, w) else {
                    return WriteTarget::Void;
                };
                let (s, w) = (s as i64, w.max(1) as usize);
                let (msb, lsb) = if *ascending {
                    (s + w as i64 - 1, s)
                } else {
                    (s, s - w as i64 + 1)
                };
                let lo = def.bit_offset(if def.msb >= def.lsb { lsb } else { msb });
                match lo {
                    Some(lo) => WriteTarget::Bits(id, lo, w),
                    None => WriteTarget::Void,
                }
            }
            Expr::Concat(parts, _) => {
                let resolved: Vec<(WriteTarget, usize)> = parts
                    .iter()
                    .map(|p| {
                        let t = self.resolve_target(p);
                        let w = target_width(&t, &self.design);
                        (t, w)
                    })
                    .collect();
                WriteTarget::Pack(resolved)
            }
            _ => WriteTarget::Void,
        }
    }

    /// Applies a write, recording value changes for event wake-up.
    pub(crate) fn write(&mut self, target: WriteTarget, value: PackedVec) {
        match target {
            WriteTarget::Void => {}
            WriteTarget::Full(id) => {
                let width = self.design.signals[id].width;
                let new = value.resize(width, false);
                let old = std::mem::replace(&mut self.store[id], new.clone());
                if old != new {
                    if let Some(vcd) = &mut self.vcd {
                        vcd.record(self.time, id, &new.to_logic_vec());
                    }
                    self.pending.push((id, old, new));
                }
            }
            WriteTarget::Bits(id, lo, width) => {
                let old = self.store[id].clone();
                let mut new = old.clone();
                new.set_range(lo, width, &value);
                if old != new {
                    self.store[id] = new.clone();
                    if let Some(vcd) = &mut self.vcd {
                        vcd.record(self.time, id, &new.to_logic_vec());
                    }
                    self.pending.push((id, old, new));
                }
            }
            WriteTarget::Word(id, off) => {
                let width = self.design.signals[id].width;
                let new = value.resize(width, false);
                if let Some(slot) = self.mems[id].get_mut(off) {
                    let old = std::mem::replace(slot, new.clone());
                    if old != new {
                        // Word writes wake level watchers of the memory.
                        self.pending
                            .push((id, PackedVec::zeros(1), PackedVec::from_bool(true)));
                        let _ = old;
                    }
                }
            }
            WriteTarget::Pack(parts) => {
                // MSB-first: the first part takes the top bits.
                let total: usize = parts.iter().map(|(_, w)| w).sum();
                let v = value.resize(total.max(1), false);
                let mut hi = total;
                for (t, w) in parts {
                    let lo = hi - w;
                    self.write(t, v.slice(lo, w));
                    hi = lo;
                }
            }
        }
    }

    /// Wakes processes whose watches match the pending changes.
    pub(crate) fn drain_changes(&mut self) {
        while !self.pending.is_empty() {
            let changes = std::mem::take(&mut self.pending);
            let mut to_wake = Vec::new();
            for (pi, proc) in self.procs.iter().enumerate() {
                if proc.status != Status::WaitEvent {
                    continue;
                }
                'w: for w in proc.watches.iter() {
                    for (sig, old, new) in &changes {
                        if w.sig != *sig {
                            continue;
                        }
                        if watch_matches(w, old, new) {
                            to_wake.push(pi);
                            break 'w;
                        }
                    }
                }
            }
            for pi in to_wake {
                self.procs[pi].status = Status::Ready;
                self.enqueue(pi);
            }
        }
    }
}

/// Applies a compiled binary operator exactly as the bytecode engine does
/// (shared by the scalar `Bin` arm, the fused superinstructions, and the
/// batch engine's per-lane lifts).
pub(crate) fn apply_bin(op: BinaryOp, x: &PackedVec, y: &PackedVec, signed: bool) -> PackedVec {
    use BinaryOp::*;
    match op {
        Add => x.add(y),
        Sub => x.sub(y),
        Mul => x.mul(y),
        Div => x.div(y),
        Mod => x.rem(y),
        Pow => x.pow(y),
        Shl => x.shl(y),
        Shr => x.shr(y),
        AShr => {
            if signed {
                x.ashr(y)
            } else {
                x.shr(y)
            }
        }
        Eq => x.log_eq(y),
        Ne => x.log_ne(y),
        CaseEq => PackedVec::from_bool(x.case_eq(y)),
        CaseNe => PackedVec::from_bool(!x.case_eq(y)),
        Lt => x.cmp_lt(y, signed),
        Gt => y.cmp_lt(x, signed),
        Le => y.cmp_lt(x, signed).log_not(),
        Ge => x.cmp_lt(y, signed).log_not(),
        BitAnd => x.bit_and(y),
        BitOr => x.bit_or(y),
        BitXor => x.bit_xor(y),
        BitXnor => x.bit_xnor(y),
        LogicAnd => x.log_and(y),
        LogicOr => x.log_or(y),
    }
}

/// Initial scheduling configuration of one process, as [`Simulator`]'s
/// `make_proc` derives it — shared with the batch driver so lane processes
/// arm identically to scalar ones.
pub(crate) struct ProcSeed {
    pub(crate) ready: bool,
    pub(crate) watches: Arc<[SensWatch]>,
    pub(crate) rearm: Option<Arc<[SensWatch]>>,
    pub(crate) free_running: bool,
    pub(crate) is_initial: bool,
    pub(crate) is_continuous: bool,
}

pub(crate) fn proc_seed(p: &Process, design: &Design) -> ProcSeed {
    match &p.kind {
        ProcessKind::Initial => ProcSeed {
            ready: true,
            watches: Vec::new().into(),
            rearm: None,
            free_running: false,
            is_initial: true,
            is_continuous: false,
        },
        ProcessKind::Always(sens) => {
            let watches: Arc<[SensWatch]> = compile_sens(sens, design).into();
            let free_running = watches.is_empty();
            ProcSeed {
                ready: free_running,
                watches: Arc::clone(&watches),
                rearm: Some(watches),
                free_running,
                is_initial: false,
                is_continuous: false,
            }
        }
        ProcessKind::Continuous { lhs, rhs } => {
            let mut reads = Vec::new();
            collect_expr_reads(rhs, &mut reads);
            collect_lhs_index_reads(lhs, &mut reads);
            let watches: Arc<[SensWatch]> = reads
                .iter()
                .filter_map(|n| {
                    design.index.get(n).map(|id| SensWatch {
                        sig: *id,
                        bit: None,
                        edge: None,
                    })
                })
                .collect::<Vec<_>>()
                .into();
            ProcSeed {
                ready: true,
                watches: Arc::clone(&watches),
                rearm: Some(watches),
                free_running: false,
                is_initial: false,
                is_continuous: true,
            }
        }
    }
}

/// Recycled scheduler allocations for back-to-back runs of fresh
/// [`Simulator`]s over the same (or different) designs.
///
/// A pass@k sweep builds one simulator per candidate; each run grows the
/// ready deque, the future-map buckets, and the NBA/pending vectors from
/// empty. An arena lends those containers to a simulator before `run` and
/// reclaims them (cleared, capacity kept) afterwards, so steady-state sweep
/// iterations stop hitting the allocator for scheduler state.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sf = dda_verilog::parse(
///     "module t; initial $finish; endmodule")?;
/// let mut arena = dda_sim::SimArena::new();
/// for _ in 0..3 {
///     let mut sim = dda_sim::Simulator::new(&sf, "t")?;
///     arena.lend(&mut sim);
///     let r = sim.run(&dda_sim::SimOptions::default())?;
///     arena.reclaim(&mut sim);
///     assert!(r.finished);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SimArena {
    ready: VecDeque<usize>,
    buckets: Vec<Vec<FutureEvent>>,
    nba: Vec<(WriteTarget, PackedVec)>,
    pending: Vec<(SigId, PackedVec, PackedVec)>,
    scratch: Vec<PackedVec>,
}

/// How many future-map buckets the arena keeps between runs.
const ARENA_BUCKET_CAP: usize = 64;

impl SimArena {
    /// An empty arena; containers grow on first use and are kept after.
    pub fn new() -> SimArena {
        SimArena::default()
    }

    /// Moves the arena's containers into `sim`. Call before `run` on a
    /// freshly built simulator.
    pub fn lend(&mut self, sim: &mut Simulator) {
        std::mem::swap(&mut sim.ready, &mut self.ready);
        std::mem::swap(&mut sim.bucket_pool, &mut self.buckets);
        std::mem::swap(&mut sim.nba, &mut self.nba);
        std::mem::swap(&mut sim.pending, &mut self.pending);
        std::mem::swap(&mut sim.scratch, &mut self.scratch);
    }

    /// Takes the containers back (cleared, capacity retained) so the next
    /// simulator reuses their allocations.
    pub fn reclaim(&mut self, sim: &mut Simulator) {
        std::mem::swap(&mut sim.ready, &mut self.ready);
        std::mem::swap(&mut sim.bucket_pool, &mut self.buckets);
        std::mem::swap(&mut sim.nba, &mut self.nba);
        std::mem::swap(&mut sim.pending, &mut self.pending);
        std::mem::swap(&mut sim.scratch, &mut self.scratch);
        self.ready.clear();
        self.nba.clear();
        self.pending.clear();
        // Registers hold run values; drop them but keep the outer buffer.
        self.scratch.clear();
        // Buckets still parked in the future map (quiescent runs leave
        // none; budget trips can) join the pool up to the cap.
        for (_, mut b) in std::mem::take(&mut sim.future) {
            if self.buckets.len() >= ARENA_BUCKET_CAP {
                break;
            }
            b.clear();
            self.buckets.push(b);
        }
        self.buckets.truncate(ARENA_BUCKET_CAP);
    }
}

pub(crate) fn watch_matches(w: &SensWatch, old: &PackedVec, new: &PackedVec) -> bool {
    match w.edge {
        None => {
            if let Some(b) = w.bit {
                old.bit(b) != new.bit(b)
            } else {
                old != new
            }
        }
        Some(edge) => {
            let b = w.bit.unwrap_or(0);
            let (o, n) = (old.bit(b), new.bit(b));
            match edge {
                Edge::Pos => {
                    (o == LogicBit::Zero && n != LogicBit::Zero)
                        || (o.is_unknown() && n == LogicBit::One)
                }
                Edge::Neg => {
                    (o == LogicBit::One && n != LogicBit::One)
                        || (o.is_unknown() && n == LogicBit::Zero)
                }
            }
        }
    }
}

pub(crate) fn target_width(t: &WriteTarget, design: &Design) -> usize {
    match t {
        WriteTarget::Void => 0,
        WriteTarget::Full(id) | WriteTarget::Word(id, _) => design.signals[*id].width,
        WriteTarget::Bits(_, _, w) => *w,
        WriteTarget::Pack(parts) => parts.iter().map(|(_, w)| w).sum(),
    }
}

/// Lowers a sensitivity list to watches against the design's signal table.
pub(crate) fn compile_sens(s: &Sensitivity, design: &Design) -> Vec<SensWatch> {
    let mut out = Vec::new();
    let Sensitivity::List(items) = s else {
        return out;
    };
    for item in items {
        match &item.expr {
            Expr::Ident(i) => {
                if let Some(id) = design.index.get(&i.name) {
                    out.push(SensWatch {
                        sig: *id,
                        bit: None,
                        edge: item.edge,
                    });
                }
            }
            Expr::Index { base, index, .. } => {
                if let (Some(name), Expr::Number(n, _)) = (base.as_ident(), index.as_ref()) {
                    if let Some((id, def)) = design.signal(name) {
                        let bit = n.value.to_u64().and_then(|v| def.bit_offset(v as i64));
                        out.push(SensWatch {
                            sig: id,
                            bit,
                            edge: item.edge,
                        });
                        continue;
                    }
                }
                // Fallback: level-watch every identifier in the expression.
                out.extend(level_watches(&item.expr, design));
            }
            other => {
                out.extend(level_watches(other, design));
            }
        }
    }
    out
}

/// Level (any-change) watches for every identifier an expression reads.
pub(crate) fn level_watches(e: &Expr, design: &Design) -> Vec<SensWatch> {
    let mut reads = Vec::new();
    collect_expr_reads(e, &mut reads);
    reads
        .iter()
        .filter_map(|n| {
            design.index.get(n).map(|id| SensWatch {
                sig: *id,
                bit: None,
                edge: None,
            })
        })
        .collect()
}

fn collect_expr_reads(e: &Expr, out: &mut Vec<String>) {
    use dda_verilog::visit::{walk_expr, Visitor};
    struct R<'v>(&'v mut Vec<String>);
    impl Visitor for R<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let Expr::Ident(i) = e {
                self.0.push(i.name.clone());
            }
            walk_expr(self, e);
        }
    }
    R(out).visit_expr(e);
}

fn collect_lhs_index_reads(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Index { index, .. } => collect_expr_reads(index, out),
        Expr::PartSelect { msb, lsb, .. } => {
            collect_expr_reads(msb, out);
            collect_expr_reads(lsb, out);
        }
        Expr::IndexedPart { start, width, .. } => {
            collect_expr_reads(start, out);
            collect_expr_reads(width, out);
        }
        Expr::Concat(parts, _) => {
            for p in parts {
                collect_lhs_index_reads(p, out);
            }
        }
        _ => {}
    }
}
