//! Elaboration: flattens a module hierarchy into a [`Design`] of signals and
//! processes.
//!
//! Each instance is expanded by cloning the instantiated module's items,
//! substituting parameters with their (possibly overridden) constant values,
//! and prefixing every local name with the instance path (`dut.count`).
//! Port connections become continuous assignments between parent and child
//! scopes, so the simulator only ever sees one flat namespace.

use crate::ops;
use dda_verilog::ast::*;
use dda_verilog::consteval::{eval_const, eval_range};
use dda_verilog::{Expr, LogicVec, Span, Stmt};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Elaboration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl ElabError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        ElabError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error at {}: {}", self.span, self.message)
    }
}

impl Error for ElabError {}

/// Index of a signal in the flattened design.
pub type SigId = usize;

/// A flattened signal.
#[derive(Debug, Clone)]
pub struct SignalDef {
    /// Dotted hierarchical name (`dut.count`).
    pub name: String,
    /// Packed width in bits.
    pub width: usize,
    /// Declared MSB label.
    pub msb: i64,
    /// Declared LSB label.
    pub lsb: i64,
    /// Two's-complement interpretation in comparisons.
    pub signed: bool,
    /// Declared as a variable (`reg`/`integer`).
    pub is_reg: bool,
    /// Array bounds for memories (`reg [7:0] mem [0:255]`).
    pub mem: Option<(i64, i64)>,
    /// Initial value from a reg initialiser.
    pub init: Option<LogicVec>,
}

impl SignalDef {
    /// Number of words for memories, 0 for plain signals.
    pub fn mem_len(&self) -> usize {
        self.mem
            .map(|(a, b)| a.abs_diff(b) as usize + 1)
            .unwrap_or(0)
    }

    /// Maps a Verilog bit index to a storage offset (`None` if out of range).
    pub fn bit_offset(&self, idx: i64) -> Option<usize> {
        let off = if self.msb >= self.lsb {
            idx.checked_sub(self.lsb)?
        } else {
            self.lsb.checked_sub(idx)?
        };
        usize::try_from(off).ok().filter(|o| *o < self.width)
    }

    /// Maps a memory word index to a storage offset.
    pub fn word_offset(&self, idx: i64) -> Option<usize> {
        let (a, b) = self.mem?;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if idx < lo || idx > hi {
            return None;
        }
        Some((idx - lo) as usize)
    }
}

/// How a process is (re)triggered.
#[derive(Debug, Clone)]
pub enum ProcessKind {
    /// Runs once from time 0.
    Initial,
    /// Loops: wait for the sensitivity, run the body.
    Always(Sensitivity),
    /// Continuous assignment (including synthesized port bindings).
    Continuous {
        /// Target lvalue.
        lhs: Expr,
        /// Driven expression.
        rhs: Expr,
    },
}

/// One elaborated process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Trigger discipline.
    pub kind: ProcessKind,
    /// Procedural body (absent for continuous assignments).
    pub body: Option<Arc<Stmt>>,
    /// Dotted instance path, used for `%m`.
    pub path: String,
}

/// The flattened design.
#[derive(Debug, Clone, Default)]
pub struct Design {
    /// Signals in declaration order.
    pub signals: Vec<SignalDef>,
    /// Name → signal index.
    pub index: HashMap<String, SigId>,
    /// All processes.
    pub processes: Vec<Process>,
    /// Functions by flattened name.
    pub functions: HashMap<String, FunctionDecl>,
    /// Lazily built bytecode programs, shared by every clone made after the
    /// first compilation (cloning an initialized `OnceLock` keeps its value,
    /// and the payload is behind an `Arc`).
    pub(crate) compiled: std::sync::OnceLock<std::sync::Arc<crate::compile::CompiledDesign>>,
}

/// The global design cache hands clones of one [`Design`] to concurrent
/// service requests; this fails to compile if a non-thread-safe pointer
/// (`Rc`, `Cell`, ...) ever sneaks back into the design graph.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Design>()
};

impl Design {
    /// Looks up a signal by hierarchical name.
    pub fn signal(&self, name: &str) -> Option<(SigId, &SignalDef)> {
        self.index.get(name).map(|id| (*id, &self.signals[*id]))
    }

    /// The design's bytecode, compiling it on first use.
    pub(crate) fn compiled(&self) -> std::sync::Arc<crate::compile::CompiledDesign> {
        self.compiled
            .get_or_init(|| std::sync::Arc::new(crate::compile::compile_design(self)))
            .clone()
    }
}

/// Elaborates `top` (and everything it instantiates) from `sf`.
///
/// # Errors
///
/// Returns [`ElabError`] when the top module is missing, an instantiated
/// module has no definition (and is not a gate primitive), a range is not
/// constant, or the hierarchy exceeds the depth limit.
pub fn elaborate(sf: &SourceFile, top: &str) -> Result<Design, ElabError> {
    let module = sf
        .module(top)
        .ok_or_else(|| ElabError::new(format!("top module `{top}` not found"), Span::default()))?;
    let mut design = Design::default();
    let mut ctx = Elaborator {
        file: sf,
        design: &mut design,
        depth: 0,
    };
    ctx.instantiate(module, "", &HashMap::new(), module.span)?;
    Ok(design)
}

const GATES: &[&str] = &["and", "or", "not", "nand", "nor", "xor", "xnor", "buf"];
const MAX_DEPTH: usize = 64;

/// Widest vector elaboration will allocate. Untrusted sources can declare
/// `reg [8388607:0]`-style signals whose four-state storage would exhaust
/// memory; past this limit elaboration fails with an [`ElabError`] instead.
const MAX_SIGNAL_WIDTH: usize = 1 << 16;

/// Largest memory (array) word count, for the same reason.
const MAX_MEMORY_WORDS: u64 = 1 << 16;

struct Elaborator<'a> {
    file: &'a SourceFile,
    design: &'a mut Design,
    depth: usize,
}

impl Elaborator<'_> {
    fn instantiate(
        &mut self,
        module: &Module,
        prefix: &str,
        param_overrides: &HashMap<String, i64>,
        span: Span,
    ) -> Result<(), ElabError> {
        if self.depth > MAX_DEPTH {
            return Err(ElabError::new("instance hierarchy too deep", span));
        }
        // 1. Resolve parameters (header order, then body order).
        let mut params: HashMap<String, i64> = HashMap::new();
        for p in &module.header_params {
            let v = match param_overrides.get(&p.name.name) {
                Some(v) => *v,
                None => {
                    eval_const(&p.value, &params).map_err(|e| ElabError::new(e.reason, e.span))?
                }
            };
            params.insert(p.name.name.clone(), v);
        }
        for item in &module.items {
            if let Item::Param(p) = item {
                let v = match param_overrides.get(&p.name.name).filter(|_| !p.local) {
                    Some(v) => *v,
                    None => eval_const(&p.value, &params)
                        .map_err(|e| ElabError::new(e.reason, e.span))?,
                };
                params.insert(p.name.name.clone(), v);
            }
        }
        // 2. Compute the set of local names that must be prefixed.
        let mut locals: HashSet<String> = HashSet::new();
        for p in &module.ports {
            locals.insert(p.name.name.clone());
        }
        for item in &module.items {
            match item {
                Item::Port(pd) => {
                    for n in &pd.names {
                        locals.insert(n.name.clone());
                    }
                }
                Item::Net(nd) => {
                    for n in &nd.nets {
                        locals.insert(n.name.name.clone());
                    }
                }
                Item::Function(f) => {
                    locals.insert(f.name.name.clone());
                }
                _ => {}
            }
        }
        let ren = Renamer {
            prefix,
            locals: &locals,
            params: &params,
        };

        // 3. Declare signals: merge header ports with body declarations.
        let mut decls: HashMap<String, SignalDef> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let upsert = |decls: &mut HashMap<String, SignalDef>,
                      order: &mut Vec<String>,
                      name: &str,
                      range: &Option<Range>,
                      signed: bool,
                      is_reg: bool,
                      array: Option<(i64, i64)>,
                      init: Option<LogicVec>|
         -> Result<(), ElabError> {
            let (msb, lsb) = match range {
                None => (0, 0),
                Some(r) => eval_range(r, &params).map_err(|e| ElabError::new(e.reason, e.span))?,
            };
            let width = msb.abs_diff(lsb) as usize + 1;
            if width > MAX_SIGNAL_WIDTH {
                return Err(ElabError::new(
                    format!(
                        "signal `{prefix}{name}` is {width} bits wide \
                             (limit {MAX_SIGNAL_WIDTH})"
                    ),
                    range.as_ref().map(|r| r.span).unwrap_or_default(),
                ));
            }
            if let Some((a, b)) = array {
                let words = a.abs_diff(b).saturating_add(1);
                if words > MAX_MEMORY_WORDS {
                    return Err(ElabError::new(
                        format!(
                            "memory `{prefix}{name}` has {words} words \
                                 (limit {MAX_MEMORY_WORDS})"
                        ),
                        range.as_ref().map(|r| r.span).unwrap_or_default(),
                    ));
                }
            }
            let full = format!("{prefix}{name}");
            match decls.get_mut(&full) {
                Some(existing) => {
                    if range.is_some() && existing.width == 1 {
                        existing.width = width;
                        existing.msb = msb;
                        existing.lsb = lsb;
                    }
                    existing.is_reg |= is_reg;
                    existing.signed |= signed;
                    if existing.mem.is_none() {
                        existing.mem = array;
                    }
                    if existing.init.is_none() {
                        existing.init = init;
                    }
                }
                None => {
                    order.push(full.clone());
                    decls.insert(
                        full.clone(),
                        SignalDef {
                            name: full,
                            width,
                            msb,
                            lsb,
                            signed,
                            is_reg,
                            mem: array,
                            init,
                        },
                    );
                }
            }
            Ok(())
        };

        for p in &module.ports {
            upsert(
                &mut decls,
                &mut order,
                &p.name.name,
                &p.range,
                p.signed,
                p.is_reg,
                None,
                None,
            )?;
        }
        for item in &module.items {
            match item {
                Item::Port(pd) => {
                    for n in &pd.names {
                        upsert(
                            &mut decls, &mut order, &n.name, &pd.range, pd.signed, pd.is_reg, None,
                            None,
                        )?;
                    }
                }
                Item::Net(nd) => {
                    let is_reg = matches!(nd.kind, NetKind::Reg | NetKind::Integer);
                    for ni in &nd.nets {
                        let array = match &ni.array {
                            None => None,
                            Some(r) => Some(
                                eval_range(r, &params)
                                    .map_err(|e| ElabError::new(e.reason, e.span))?,
                            ),
                        };
                        // Constant reg initialisers become time-0 values; all
                        // others become processes below.
                        let init = ni
                            .init
                            .as_ref()
                            .filter(|_| is_reg)
                            .and_then(|e| eval_const(e, &params).ok())
                            .map(|v| {
                                let range = if nd.kind == NetKind::Integer {
                                    Some((31, 0))
                                } else {
                                    match &nd.range {
                                        None => None,
                                        Some(r) => eval_range(r, &params).ok(),
                                    }
                                };
                                let w = range.map(|(m, l)| m.abs_diff(l) as usize + 1).unwrap_or(1);
                                ops::from_u128(v as u128, w)
                            });
                        if nd.kind == NetKind::Integer {
                            let full = format!("{prefix}{}", ni.name.name);
                            if !decls.contains_key(&full) {
                                order.push(full.clone());
                                decls.insert(
                                    full.clone(),
                                    SignalDef {
                                        name: full,
                                        width: 32,
                                        msb: 31,
                                        lsb: 0,
                                        signed: true,
                                        is_reg: true,
                                        mem: array,
                                        init,
                                    },
                                );
                            }
                        } else {
                            upsert(
                                &mut decls,
                                &mut order,
                                &ni.name.name,
                                &nd.range,
                                nd.signed,
                                is_reg,
                                array,
                                init,
                            )?;
                        }
                    }
                }
                _ => {}
            }
        }
        for name in order {
            // `order` holds each name once (pushed only on first insert),
            // but stay total on malformed input rather than panicking.
            let Some(def) = decls.remove(&name) else {
                continue;
            };
            let id = self.design.signals.len();
            self.design.index.insert(name, id);
            self.design.signals.push(def);
        }

        // 4. Convert items to processes / functions / child instances.
        for item in &module.items {
            match item {
                Item::Assign(a) => {
                    self.design.processes.push(Process {
                        kind: ProcessKind::Continuous {
                            lhs: ren.expr(&a.lhs),
                            rhs: ren.expr(&a.rhs),
                        },
                        body: None,
                        path: prefix.trim_end_matches('.').to_owned(),
                    });
                }
                Item::Net(nd) => {
                    // Wire initialisers and non-constant reg initialisers.
                    for ni in &nd.nets {
                        let Some(init) = &ni.init else { continue };
                        let is_reg = matches!(nd.kind, NetKind::Reg | NetKind::Integer);
                        if is_reg && eval_const(init, &params).is_ok() {
                            continue; // handled as a time-0 value
                        }
                        let lhs = Expr::Ident(Ident::spanned(
                            format!("{prefix}{}", ni.name.name),
                            ni.name.span,
                        ));
                        let rhs = ren.expr(init);
                        if is_reg {
                            self.design.processes.push(Process {
                                kind: ProcessKind::Initial,
                                body: Some(Arc::new(Stmt::Assign {
                                    lhs,
                                    rhs,
                                    kind: AssignKind::Blocking,
                                    delay: None,
                                    span: nd.span,
                                })),
                                path: prefix.trim_end_matches('.').to_owned(),
                            });
                        } else {
                            self.design.processes.push(Process {
                                kind: ProcessKind::Continuous { lhs, rhs },
                                body: None,
                                path: prefix.trim_end_matches('.').to_owned(),
                            });
                        }
                    }
                }
                Item::Always(a) => {
                    let sens = match &a.sensitivity {
                        Sensitivity::Star => Sensitivity::List(star_sensitivity(&a.body, &ren)),
                        s => ren.sensitivity(s),
                    };
                    self.design.processes.push(Process {
                        kind: ProcessKind::Always(sens),
                        body: Some(Arc::new(ren.stmt(&a.body))),
                        path: prefix.trim_end_matches('.').to_owned(),
                    });
                }
                Item::Initial(i) => {
                    self.design.processes.push(Process {
                        kind: ProcessKind::Initial,
                        body: Some(Arc::new(ren.stmt(&i.body))),
                        path: prefix.trim_end_matches('.').to_owned(),
                    });
                }
                Item::Function(f) => {
                    let renamed = ren.function(f);
                    self.design
                        .functions
                        .insert(format!("{prefix}{}", f.name.name), renamed);
                }
                Item::Instance(inst) => self.elab_instance(inst, prefix, &ren)?,
                Item::Param(_) | Item::Port(_) => {}
            }
        }
        Ok(())
    }

    fn elab_instance(
        &mut self,
        inst: &Instance,
        prefix: &str,
        ren: &Renamer<'_>,
    ) -> Result<(), ElabError> {
        let mod_name = inst.module.name.as_str();
        if GATES.contains(&mod_name) {
            return self.elab_gate(inst, ren);
        }
        let Some(child) = self.file.module(mod_name) else {
            return Err(ElabError::new(
                format!("module `{mod_name}` is not defined"),
                inst.module.span,
            ));
        };
        // Parameter overrides evaluate in the parent scope.
        let mut overrides = HashMap::new();
        for (i, c) in inst.params.iter().enumerate() {
            let Some(expr) = &c.expr else { continue };
            let renamed = ren.expr(expr);
            let v = eval_const(&renamed, &HashMap::new())
                .map_err(|e| ElabError::new(e.reason, e.span))?;
            let pname = match &c.name {
                Some(n) => n.name.clone(),
                None => child
                    .header_params
                    .get(i)
                    .map(|p| p.name.name.clone())
                    .ok_or_else(|| {
                        ElabError::new("too many positional parameter overrides", inst.span)
                    })?,
            };
            overrides.insert(pname, v);
        }
        let child_prefix = format!("{prefix}{}.", inst.name.name);
        self.depth += 1;
        self.instantiate(child, &child_prefix, &overrides, inst.span)?;
        self.depth -= 1;

        // Port bindings. Determine each header port's direction (from the
        // header or from body declarations).
        let dir_of = |port: &Port| -> PortDir {
            if let Some(d) = port.dir {
                return d;
            }
            for item in &child.items {
                if let Item::Port(pd) = item {
                    if pd.names.iter().any(|n| n.name == port.name.name) {
                        return pd.dir;
                    }
                }
            }
            PortDir::Input
        };
        for (i, c) in inst.ports.iter().enumerate() {
            let Some(expr) = &c.expr else { continue };
            let port = match &c.name {
                Some(n) => child.ports.iter().find(|p| p.name.name == n.name),
                None => child.ports.get(i),
            };
            let Some(port) = port else {
                return Err(ElabError::new(
                    format!("connection does not match a port of `{mod_name}`"),
                    inst.span,
                ));
            };
            let parent_expr = ren.expr(expr);
            let child_sig = Expr::Ident(Ident::spanned(
                format!("{child_prefix}{}", port.name.name),
                port.name.span,
            ));
            let (lhs, rhs) = match dir_of(port) {
                PortDir::Input => (child_sig, parent_expr),
                PortDir::Output | PortDir::Inout => (parent_expr, child_sig),
            };
            self.design.processes.push(Process {
                kind: ProcessKind::Continuous { lhs, rhs },
                body: None,
                path: prefix.trim_end_matches('.').to_owned(),
            });
        }
        Ok(())
    }

    fn elab_gate(&mut self, inst: &Instance, ren: &Renamer<'_>) -> Result<(), ElabError> {
        let exprs: Vec<Expr> = inst
            .ports
            .iter()
            .filter_map(|c| c.expr.as_ref())
            .map(|e| ren.expr(e))
            .collect();
        if exprs.len() < 2 {
            return Err(ElabError::new(
                format!(
                    "gate `{}` needs an output and at least one input",
                    inst.module.name
                ),
                inst.span,
            ));
        }
        let out = exprs[0].clone();
        let ins = &exprs[1..];
        let fold = |op: BinaryOp| -> Expr {
            let mut it = ins.iter().cloned();
            let first = it
                .next()
                .unwrap_or(Expr::Number(Number::from_u64(0), inst.span));
            it.fold(first, |acc, e| Expr::Binary {
                op,
                span: inst.span,
                lhs: Box::new(acc),
                rhs: Box::new(e),
            })
        };
        let invert = |e: Expr| Expr::Unary {
            op: UnaryOp::BitNot,
            expr: Box::new(e),
            span: inst.span,
        };
        let rhs = match inst.module.name.as_str() {
            "and" => fold(BinaryOp::BitAnd),
            "or" => fold(BinaryOp::BitOr),
            "xor" => fold(BinaryOp::BitXor),
            "nand" => invert(fold(BinaryOp::BitAnd)),
            "nor" => invert(fold(BinaryOp::BitOr)),
            "xnor" => invert(fold(BinaryOp::BitXor)),
            "not" => invert(ins[0].clone()),
            _ => ins[0].clone(), // buf
        };
        self.design.processes.push(Process {
            kind: ProcessKind::Continuous { lhs: out, rhs },
            body: None,
            path: String::new(),
        });
        Ok(())
    }
}

/// Computes the static sensitivity of an `always @(*)` body: every signal
/// read by the body (rhs expressions, conditions, selectors, and lvalue
/// index expressions), already renamed.
fn star_sensitivity(body: &Stmt, ren: &Renamer<'_>) -> Vec<SensItem> {
    let mut reads: Vec<String> = Vec::new();
    collect_reads_stmt(body, &mut reads);
    let mut seen = HashSet::new();
    let mut items = Vec::new();
    for name in reads {
        let renamed = ren.rename_name(&name);
        if seen.insert(renamed.clone()) {
            items.push(SensItem {
                edge: None,
                expr: Expr::Ident(Ident::new(renamed)),
            });
        }
    }
    items
}

fn collect_reads_expr(e: &Expr, out: &mut Vec<String>) {
    use dda_verilog::visit::{walk_expr, Visitor};
    struct R<'v>(&'v mut Vec<String>);
    impl Visitor for R<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let Expr::Ident(i) = e {
                self.0.push(i.name.clone());
            }
            walk_expr(self, e);
        }
    }
    R(out).visit_expr(e);
}

fn collect_lvalue_index_reads(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Index { index, .. } => collect_reads_expr(index, out),
        Expr::PartSelect { msb, lsb, .. } => {
            collect_reads_expr(msb, out);
            collect_reads_expr(lsb, out);
        }
        Expr::IndexedPart { start, width, .. } => {
            collect_reads_expr(start, out);
            collect_reads_expr(width, out);
        }
        Expr::Concat(parts, _) => {
            for p in parts {
                collect_lvalue_index_reads(p, out);
            }
        }
        _ => {}
    }
}

fn collect_reads_stmt(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Block { stmts, .. } => {
            for st in stmts {
                collect_reads_stmt(st, out);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            collect_reads_expr(rhs, out);
            collect_lvalue_index_reads(lhs, out);
        }
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
            ..
        } => {
            collect_reads_expr(cond, out);
            collect_reads_stmt(then_stmt, out);
            if let Some(e) = else_stmt {
                collect_reads_stmt(e, out);
            }
        }
        Stmt::Case { expr, arms, .. } => {
            collect_reads_expr(expr, out);
            for a in arms {
                for l in &a.labels {
                    collect_reads_expr(l, out);
                }
                collect_reads_stmt(&a.body, out);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            collect_reads_stmt(init, out);
            collect_reads_expr(cond, out);
            collect_reads_stmt(step, out);
            collect_reads_stmt(body, out);
        }
        Stmt::While { cond, body, .. } => {
            collect_reads_expr(cond, out);
            collect_reads_stmt(body, out);
        }
        Stmt::Repeat { count, body, .. } => {
            collect_reads_expr(count, out);
            collect_reads_stmt(body, out);
        }
        Stmt::Forever { body, .. } => collect_reads_stmt(body, out),
        Stmt::Delay { stmt, .. } | Stmt::Event { stmt, .. } => {
            if let Some(s) = stmt {
                collect_reads_stmt(s, out);
            }
        }
        Stmt::Wait { cond, stmt, .. } => {
            collect_reads_expr(cond, out);
            if let Some(s) = stmt {
                collect_reads_stmt(s, out);
            }
        }
        Stmt::SysCall { args, .. } => {
            for a in args {
                collect_reads_expr(a, out);
            }
        }
        Stmt::Null { .. } => {}
    }
}

/// Rewrites identifiers to flat hierarchical names and substitutes
/// parameters with literal values.
struct Renamer<'a> {
    prefix: &'a str,
    locals: &'a HashSet<String>,
    params: &'a HashMap<String, i64>,
}

impl Renamer<'_> {
    fn rename_name(&self, name: &str) -> String {
        if self.locals.contains(name) {
            format!("{}{}", self.prefix, name)
        } else {
            name.to_owned()
        }
    }

    fn ident(&self, i: &Ident) -> Ident {
        Ident::spanned(self.rename_name(&i.name), i.span)
    }

    fn expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Ident(i) => {
                if let Some(v) = self.params.get(&i.name) {
                    Expr::Number(
                        Number {
                            width: Some(32),
                            signed: true,
                            value: ops::from_u128(*v as u64 as u128, 32),
                            spelling: if *v < 0 {
                                format!("32'sd{}", (*v as u32))
                            } else {
                                v.to_string()
                            },
                        },
                        i.span,
                    )
                } else {
                    Expr::Ident(self.ident(i))
                }
            }
            Expr::Number(..) | Expr::Str(..) => e.clone(),
            Expr::Unary { op, expr, span } => Expr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr)),
                span: *span,
            },
            Expr::Binary { op, lhs, rhs, span } => Expr::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
                span: *span,
            },
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                span,
            } => Expr::Ternary {
                cond: Box::new(self.expr(cond)),
                then_expr: Box::new(self.expr(then_expr)),
                else_expr: Box::new(self.expr(else_expr)),
                span: *span,
            },
            Expr::Concat(parts, span) => {
                Expr::Concat(parts.iter().map(|p| self.expr(p)).collect(), *span)
            }
            Expr::Repeat { count, exprs, span } => Expr::Repeat {
                count: Box::new(self.expr(count)),
                exprs: exprs.iter().map(|p| self.expr(p)).collect(),
                span: *span,
            },
            Expr::Index { base, index, span } => Expr::Index {
                base: Box::new(self.expr(base)),
                index: Box::new(self.expr(index)),
                span: *span,
            },
            Expr::PartSelect {
                base,
                msb,
                lsb,
                span,
            } => Expr::PartSelect {
                base: Box::new(self.expr(base)),
                msb: Box::new(self.expr(msb)),
                lsb: Box::new(self.expr(lsb)),
                span: *span,
            },
            Expr::IndexedPart {
                base,
                start,
                width,
                ascending,
                span,
            } => Expr::IndexedPart {
                base: Box::new(self.expr(base)),
                start: Box::new(self.expr(start)),
                width: Box::new(self.expr(width)),
                ascending: *ascending,
                span: *span,
            },
            Expr::Call { name, args, span } => Expr::Call {
                name: if name.name.starts_with('$') {
                    name.clone()
                } else {
                    self.ident(name)
                },
                args: args.iter().map(|a| self.expr(a)).collect(),
                span: *span,
            },
        }
    }

    fn sensitivity(&self, s: &Sensitivity) -> Sensitivity {
        match s {
            Sensitivity::Star => Sensitivity::Star,
            Sensitivity::None => Sensitivity::None,
            Sensitivity::List(items) => Sensitivity::List(
                items
                    .iter()
                    .map(|i| SensItem {
                        edge: i.edge,
                        expr: self.expr(&i.expr),
                    })
                    .collect(),
            ),
        }
    }

    fn stmt(&self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Block { name, stmts, span } => Stmt::Block {
                name: name.clone(),
                stmts: stmts.iter().map(|st| self.stmt(st)).collect(),
                span: *span,
            },
            Stmt::Assign {
                lhs,
                rhs,
                kind,
                delay,
                span,
            } => Stmt::Assign {
                lhs: self.expr(lhs),
                rhs: self.expr(rhs),
                kind: *kind,
                delay: delay.as_ref().map(|d| self.expr(d)),
                span: *span,
            },
            Stmt::If {
                cond,
                then_stmt,
                else_stmt,
                span,
            } => Stmt::If {
                cond: self.expr(cond),
                then_stmt: Box::new(self.stmt(then_stmt)),
                else_stmt: else_stmt.as_ref().map(|e| Box::new(self.stmt(e))),
                span: *span,
            },
            Stmt::Case {
                kind,
                expr,
                arms,
                span,
            } => Stmt::Case {
                kind: *kind,
                expr: self.expr(expr),
                arms: arms
                    .iter()
                    .map(|a| CaseArm {
                        labels: a.labels.iter().map(|l| self.expr(l)).collect(),
                        body: self.stmt(&a.body),
                    })
                    .collect(),
                span: *span,
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => Stmt::For {
                init: Box::new(self.stmt(init)),
                cond: self.expr(cond),
                step: Box::new(self.stmt(step)),
                body: Box::new(self.stmt(body)),
                span: *span,
            },
            Stmt::While { cond, body, span } => Stmt::While {
                cond: self.expr(cond),
                body: Box::new(self.stmt(body)),
                span: *span,
            },
            Stmt::Repeat { count, body, span } => Stmt::Repeat {
                count: self.expr(count),
                body: Box::new(self.stmt(body)),
                span: *span,
            },
            Stmt::Forever { body, span } => Stmt::Forever {
                body: Box::new(self.stmt(body)),
                span: *span,
            },
            Stmt::Delay { amount, stmt, span } => Stmt::Delay {
                amount: self.expr(amount),
                stmt: stmt.as_ref().map(|s| Box::new(self.stmt(s))),
                span: *span,
            },
            Stmt::Event {
                sensitivity,
                stmt,
                span,
            } => Stmt::Event {
                sensitivity: self.sensitivity(sensitivity),
                stmt: stmt.as_ref().map(|s| Box::new(self.stmt(s))),
                span: *span,
            },
            Stmt::Wait { cond, stmt, span } => Stmt::Wait {
                cond: self.expr(cond),
                stmt: stmt.as_ref().map(|s| Box::new(self.stmt(s))),
                span: *span,
            },
            Stmt::SysCall { name, args, span } => Stmt::SysCall {
                name: name.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
                span: *span,
            },
            Stmt::Null { span } => Stmt::Null { span: *span },
        }
    }

    /// Renames a function: the function name is global (prefixed); args and
    /// locals stay call-frame-local.
    fn function(&self, f: &FunctionDecl) -> FunctionDecl {
        let mut fn_locals: HashSet<String> = HashSet::new();
        fn_locals.insert(f.name.name.clone());
        for (_, a) in &f.args {
            fn_locals.insert(a.name.clone());
        }
        for l in &f.locals {
            for n in &l.nets {
                fn_locals.insert(n.name.name.clone());
            }
        }
        // Names local to the frame keep their spelling except the function
        // name itself, which becomes the prefixed return variable.
        let narrowed: HashSet<String> = self
            .locals
            .iter()
            .filter(|n| !fn_locals.contains(*n) || **n == f.name.name)
            .cloned()
            .collect();
        let inner = Renamer {
            prefix: self.prefix,
            locals: &narrowed,
            params: self.params,
        };
        FunctionDecl {
            range: f.range.clone(),
            name: inner.ident(&f.name),
            args: f.args.clone(),
            locals: f.locals.clone(),
            body: inner.stmt(&f.body),
            span: f.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_verilog::parse;

    #[test]
    fn flattens_simple_hierarchy() {
        let sf = parse(
            "module inv(input a, output y); assign y = ~a; endmodule\n\
             module top(input x, output z);\n\
             wire w;\n\
             inv u0(.a(x), .y(w));\n\
             inv u1(.a(w), .y(z));\n\
             endmodule",
        )
        .unwrap();
        let d = elaborate(&sf, "top").unwrap();
        assert!(d.signal("x").is_some());
        assert!(d.signal("u0.a").is_some());
        assert!(d.signal("u1.y").is_some());
        // 2 gate bodies + 4 port bindings
        assert_eq!(d.processes.len(), 6);
    }

    #[test]
    fn parameter_overrides_apply() {
        let sf = parse(
            "module buffer #(parameter W = 2)(input [W-1:0] a, output [W-1:0] y);\n\
             assign y = a;\n\
             endmodule\n\
             module top(input [7:0] i, output [7:0] o);\n\
             buffer #(.W(8)) u(.a(i), .y(o));\n\
             endmodule",
        )
        .unwrap();
        let d = elaborate(&sf, "top").unwrap();
        let (_, s) = d.signal("u.a").unwrap();
        assert_eq!(s.width, 8);
    }

    #[test]
    fn missing_module_is_an_error() {
        let sf = parse("module top; ghost u(); endmodule").unwrap();
        let e = elaborate(&sf, "top").unwrap_err();
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn missing_top_is_an_error() {
        let sf = parse("module a; endmodule").unwrap();
        assert!(elaborate(&sf, "b").is_err());
    }

    #[test]
    fn star_sensitivity_collects_reads() {
        let sf = parse(
            "module m(input a, b, s, output reg y);\n\
             always @(*) if (s) y = a; else y = b;\n\
             endmodule",
        )
        .unwrap();
        let d = elaborate(&sf, "m").unwrap();
        let ProcessKind::Always(Sensitivity::List(items)) = &d.processes[0].kind else {
            panic!("expected always process");
        };
        let names: Vec<_> = items.iter().filter_map(|i| i.expr.as_ident()).collect();
        assert_eq!(names, vec!["s", "a", "b"]);
    }

    #[test]
    fn reg_initialisers_become_time0_values() {
        let sf = parse("module m; reg clk = 0; reg [3:0] n = 5; endmodule").unwrap();
        let d = elaborate(&sf, "m").unwrap();
        let (_, clk) = d.signal("clk").unwrap();
        assert_eq!(clk.init.as_ref().unwrap().to_u64(), Some(0));
        let (_, n) = d.signal("n").unwrap();
        assert_eq!(n.init.as_ref().unwrap().to_u64(), Some(5));
        assert_eq!(n.init.as_ref().unwrap().width(), 4);
    }

    #[test]
    fn memories_get_bounds() {
        let sf = parse("module m; reg [7:0] mem [0:15]; endmodule").unwrap();
        let d = elaborate(&sf, "m").unwrap();
        let (_, s) = d.signal("mem").unwrap();
        assert_eq!(s.mem_len(), 16);
        assert_eq!(s.width, 8);
        assert_eq!(s.word_offset(3), Some(3));
        assert_eq!(s.word_offset(16), None);
    }

    #[test]
    fn bit_offset_handles_descending_and_ascending() {
        let s = SignalDef {
            name: "x".into(),
            width: 4,
            msb: 3,
            lsb: 0,
            signed: false,
            is_reg: false,
            mem: None,
            init: None,
        };
        assert_eq!(s.bit_offset(0), Some(0));
        assert_eq!(s.bit_offset(3), Some(3));
        assert_eq!(s.bit_offset(4), None);
        let s2 = SignalDef {
            msb: 0,
            lsb: 3,
            ..s
        };
        assert_eq!(s2.bit_offset(3), Some(0));
        assert_eq!(s2.bit_offset(0), Some(3));
    }

    #[test]
    fn localparams_substitute() {
        let sf = parse(
            "module m(output [7:0] y);\n\
             localparam W = 8;\n\
             wire [W-1:0] t;\n\
             assign t = {W{1'b1}};\n\
             assign y = t;\n\
             endmodule",
        )
        .unwrap();
        let d = elaborate(&sf, "m").unwrap();
        let (_, t) = d.signal("t").unwrap();
        assert_eq!(t.width, 8);
    }

    #[test]
    fn gate_primitives_become_continuous() {
        let sf = parse("module m(input a, b, output y); and g(y, a, b); endmodule").unwrap();
        let d = elaborate(&sf, "m").unwrap();
        assert!(matches!(
            d.processes[0].kind,
            ProcessKind::Continuous { .. }
        ));
    }

    #[test]
    fn huge_signal_width_is_an_error_not_an_allocation() {
        let sf = parse("module m; reg [8388607:0] big; endmodule").unwrap();
        let err = elaborate(&sf, "m").unwrap_err();
        assert!(err.message.contains("bits wide"), "{}", err.message);
    }

    #[test]
    fn huge_memory_is_an_error_not_an_allocation() {
        let sf = parse("module m; reg [7:0] mem [0:16777215]; endmodule").unwrap();
        let err = elaborate(&sf, "m").unwrap_err();
        assert!(err.message.contains("words"), "{}", err.message);
    }

    #[test]
    fn wide_but_reasonable_signals_still_elaborate() {
        let sf = parse("module m; reg [1023:0] wide; reg [7:0] mem [0:255]; endmodule").unwrap();
        let d = elaborate(&sf, "m").unwrap();
        assert_eq!(d.signal("wide").unwrap().1.width, 1024);
    }
}
