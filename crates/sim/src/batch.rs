//! Batch-vectorized lockstep simulation.
//!
//! A [`BatchSim`] advances R same-design runs ("lanes") through **one**
//! stratified event queue. Signal values are held as [`PackedBatch`]es, so
//! while all lanes agree (the uniform fast path — the common case for
//! pass@k sweeps that re-simulate one candidate under one testbench) every
//! value operation runs once for all R lanes, which is where the batched
//! throughput comes from.
//!
//! Lockstep is sound only while every *scheduling decision* — branch
//! conditions, loop trip counts, case arm selection, delay amounts, event
//! wake-ups, dynamic write indices — agrees across lanes. Each such
//! decision is unified: the group of lanes agreeing with the lowest still
//! active lane continues in lockstep, and disagreeing lanes are *retired*.
//! A retired lane is re-run from scratch on the scalar [`Simulator`]
//! bytecode engine with its own fresh budgets, which makes its result
//! bit-identical to a sequential run by construction. Value-level lane
//! divergence (an `x` in one lane, a different word in another) needs no
//! fallback: values live in per-lane [`PackedBatch`] storage.
//!
//! Designs using constructs the lockstep core cannot mirror exactly —
//! interpreter-fallback statements/expressions, `$monitor`, or `$random`
//! inside `case` labels (lazy label evaluation would desynchronise per-lane
//! random streams) — are detected by a static scan and run entirely on the
//! scalar engine, one lane at a time.
//!
//! Per-lane `$display`/`$write` formatting goes through an embedded *probe*
//! [`Simulator`]: the lane's values, time, and random state are synced in,
//! the scalar formatting path runs verbatim, and the (possibly advanced)
//! random state is synced back — so output text and `$random` streams match
//! sequential execution exactly.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sf = dda_verilog::parse(
//!     "module tb;\n\
//!      reg [7:0] n = 1;\n\
//!      initial begin repeat (5) n = n + n; $display(\"n=%0d\", n); $finish; end\n\
//!      endmodule")?;
//! let design = dda_sim::elaborate(&sf, "tb")?;
//! let results = dda_sim::run_batch(&design, &[None; 4], &dda_sim::SimOptions::default());
//! for r in results {
//!     let r = r?;
//!     assert!(r.finished);
//!     assert_eq!(r.output.trim(), "n=32");
//! }
//! # Ok(())
//! # }
//! ```

use crate::compile::{CCont, CStmt, CTarget, CompiledDesign, ExprProg, Instr};
use crate::elab::{Design, SigId};
use crate::exec::{
    apply_bin, proc_seed, target_width, EvalMode, RunError, RunErrorKind, SensWatch, SimOptions,
    SimResult, Simulator, WriteTarget, WALL_POLL_PERIOD,
};
use dda_verilog::ast::{AssignKind, BinaryOp, Edge, UnaryOp};
use dda_verilog::{Expr, LogicBit, PackedBatch, PackedVec, MAX_BATCH_LANES};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// How a batched run executed, for observability and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Lanes launched.
    pub lanes: usize,
    /// Lanes that ran to the end in lockstep.
    pub lockstep_completed: usize,
    /// Lanes retired to the scalar engine by a divergent decision.
    pub diverged: usize,
    /// The design failed the static scan; every lane ran scalar.
    pub unsupported: bool,
}

/// Batched lockstep driver over one design and R per-lane `$random` seeds
/// (`None` = the unseeded default stream, like a fresh [`Simulator`]).
#[derive(Debug)]
pub struct BatchSim {
    design: Design,
    seeds: Vec<Option<u64>>,
    report: BatchReport,
}

impl BatchSim {
    /// Prepares a batch of `seeds.len()` lanes over `design`.
    ///
    /// # Panics
    ///
    /// Panics when more than [`MAX_BATCH_LANES`] lanes are requested.
    pub fn new(design: Design, seeds: Vec<Option<u64>>) -> BatchSim {
        assert!(
            seeds.len() <= MAX_BATCH_LANES,
            "at most {MAX_BATCH_LANES} lanes per batch"
        );
        BatchSim {
            design,
            seeds,
            report: BatchReport::default(),
        }
    }

    /// How the most recent [`BatchSim::run`] executed.
    pub fn report(&self) -> &BatchReport {
        &self.report
    }

    /// Runs every lane and returns per-lane results, index-aligned with the
    /// seeds. Each lane's result is bit-identical to running that seed on a
    /// fresh scalar [`Simulator`] in bytecode mode with the same options.
    pub fn run(&mut self, opts: &SimOptions) -> Vec<Result<SimResult, RunError>> {
        let lanes = self.seeds.len();
        if lanes == 0 {
            self.report = BatchReport::default();
            return Vec::new();
        }
        let compiled = self.design.compiled();
        if dda_obs::enabled() {
            dda_obs::count("sim.run.batch", 1);
            dda_obs::count("sim.batch.lanes", lanes as u64);
        }
        if !design_supported(&compiled) {
            self.report = BatchReport {
                lanes,
                lockstep_completed: 0,
                diverged: 0,
                unsupported: true,
            };
            if dda_obs::enabled() {
                dda_obs::count("sim.batch.fallback", lanes as u64);
            }
            return self
                .seeds
                .iter()
                .map(|s| run_scalar(&self.design, *s, opts))
                .collect();
        }
        let mut core = Core::new(&self.design, compiled, &self.seeds);
        let outcome = core.run(opts);
        let diverged = core.retired.count_ones() as usize;
        if dda_obs::enabled() {
            if core.steps > 0 {
                dda_obs::count("sim.steps", core.steps);
            }
            if core.fused_hits > 0 {
                dda_obs::count("sim.fused.hits", core.fused_hits);
            }
            if diverged > 0 {
                dda_obs::count("sim.batch.fallback", diverged as u64);
            }
        }
        let results = (0..lanes)
            .map(|l| {
                if core.retired & (1u64 << l) != 0 {
                    // Fresh scalar run, fresh budgets: sequential-identical.
                    run_scalar(&self.design, self.seeds[l], opts)
                } else {
                    match &outcome {
                        Ok(()) => Ok(SimResult {
                            finished: core.finished,
                            time: core.time,
                            output: std::mem::take(&mut core.outputs[l]),
                            error_count: core.error_count,
                        }),
                        Err(e) => Err(e.clone()),
                    }
                }
            })
            .collect();
        self.report = BatchReport {
            lanes,
            lockstep_completed: lanes - diverged,
            diverged,
            unsupported: false,
        };
        results
    }
}

/// One-shot convenience over [`BatchSim`]: batch-runs `design` once per
/// seed and returns the per-lane results.
pub fn run_batch(
    design: &Design,
    seeds: &[Option<u64>],
    opts: &SimOptions,
) -> Vec<Result<SimResult, RunError>> {
    BatchSim::new(design.clone(), seeds.to_vec()).run(opts)
}

/// One lane on the scalar bytecode engine (retired-lane / unsupported-design
/// path). Budgets restart from the options, exactly like a sequential run.
fn run_scalar(
    design: &Design,
    seed: Option<u64>,
    opts: &SimOptions,
) -> Result<SimResult, RunError> {
    let mut sim = Simulator::from_design(design.clone());
    if let Some(s) = seed {
        sim.seed_random(s);
    }
    let mut o = opts.clone();
    o.eval_mode = EvalMode::Bytecode;
    sim.run(&o)
}

// ---------------------------------------------------------------------------
// Static design scan
// ---------------------------------------------------------------------------

/// Whether the compiled design can run in lockstep at all. Rejections:
/// interpreter fallbacks (statement or expression), `$monitor`, and
/// `$random` inside case labels (scalar label evaluation is lazy and stops
/// at the first match, so batched over-evaluation would desynchronise the
/// per-lane random streams; every other label expression is pure and safe
/// to over-evaluate).
fn design_supported(c: &CompiledDesign) -> bool {
    c.procs.iter().all(|p| {
        let cont_ok = match &p.cont {
            Some(CCont::Ast) => false,
            Some(CCont::Prog { rhs, target }) => prog_ok(rhs, false) && target_ok(target),
            None => true,
        };
        cont_ok && p.body.as_ref().is_none_or(|b| stmt_ok(b))
    })
}

fn stmt_ok(s: &CStmt) -> bool {
    match s {
        CStmt::Block(stmts) => stmts.iter().all(|s| stmt_ok(s)),
        CStmt::Null => true,
        CStmt::Assign {
            rhs, target, delay, ..
        } => {
            prog_ok(rhs, false)
                && target_ok(target)
                && delay.as_ref().is_none_or(|d| prog_ok(d, false))
        }
        CStmt::If {
            cond,
            then_s,
            else_s,
        } => prog_ok(cond, false) && stmt_ok(then_s) && else_s.as_ref().is_none_or(|e| stmt_ok(e)),
        CStmt::Case { sel, arms, .. } => {
            prog_ok(sel, false)
                && arms
                    .iter()
                    .all(|arm| arm.labels.iter().all(|l| prog_ok(l, true)) && stmt_ok(&arm.body))
        }
        CStmt::For {
            init,
            cond,
            step,
            body,
        } => prog_ok(cond, false) && stmt_ok(init) && stmt_ok(step) && stmt_ok(body),
        CStmt::While { cond, body } => prog_ok(cond, false) && stmt_ok(body),
        CStmt::Repeat { count, body } => prog_ok(count, false) && stmt_ok(body),
        CStmt::Forever { body } => stmt_ok(body),
        CStmt::Delay { amount, stmt } => {
            prog_ok(amount, false) && stmt.as_ref().is_none_or(|s| stmt_ok(s))
        }
        CStmt::Event { stmt, .. } => stmt.as_ref().is_none_or(|s| stmt_ok(s)),
        CStmt::Wait { cond, stmt, .. } => {
            prog_ok(cond, false) && stmt.as_ref().is_none_or(|s| stmt_ok(s))
        }
        CStmt::SysCall { name, .. } => name != "monitor",
        CStmt::Ast(_) => false,
    }
}

fn prog_ok(p: &ExprProg, forbid_rand: bool) -> bool {
    p.instrs.iter().all(|i| match i {
        Instr::Fallback { .. } => false,
        Instr::Rand { .. } => !forbid_rand,
        _ => true,
    })
}

fn target_ok(t: &CTarget) -> bool {
    match t {
        CTarget::BitDyn { idx, .. } | CTarget::WordDyn { idx, .. } => prog_ok(idx, false),
        CTarget::Pack(parts) => parts.iter().all(target_ok),
        _ => true,
    }
}

// ---------------------------------------------------------------------------
// Lockstep core
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneStatus {
    Ready,
    WaitEvent,
    WaitTime,
    Done,
}

/// Mirror of the scalar compiled task stack over batched values.
#[allow(clippy::large_enum_variant)]
enum BTask {
    Exec(Arc<CStmt>),
    /// Apply a pre-evaluated blocking write (after an intra-assign delay).
    Apply(WriteTarget, PackedBatch),
    LoopWhile(Arc<CStmt>),
    LoopFor(Arc<CStmt>),
    LoopRepeat {
        remaining: u64,
        node: Arc<CStmt>,
    },
    LoopForever(Arc<CStmt>),
    /// Re-check a `wait` condition on resume.
    WaitCheck {
        cond: Arc<ExprProg>,
        watches: Arc<[SensWatch]>,
    },
}

enum BFuture {
    Wake(usize),
    Nba(WriteTarget, PackedBatch),
}

struct BProc {
    tasks: Vec<BTask>,
    status: LaneStatus,
    watches: Arc<[SensWatch]>,
    rearm: Option<Arc<[SensWatch]>>,
    free_running: bool,
    is_initial: bool,
    is_continuous: bool,
}

struct Core<'d> {
    design: &'d Design,
    compiled: Arc<CompiledDesign>,
    lanes: usize,
    /// Lanes still in lockstep (bit per lane; never empty once started).
    active: u64,
    /// Lanes retired by a divergent scheduling decision.
    retired: u64,
    store: Vec<PackedBatch>,
    mems: Vec<Vec<PackedBatch>>,
    time: u64,
    /// Per-lane xorshift state, advanced exactly as the scalar engine does.
    rand: Vec<u64>,
    procs: Vec<BProc>,
    ready: VecDeque<usize>,
    in_ready: Vec<bool>,
    future: BTreeMap<u64, Vec<BFuture>>,
    nba: Vec<(WriteTarget, PackedBatch)>,
    pending: Vec<(SigId, PackedBatch, PackedBatch)>,
    outputs: Vec<String>,
    finished: bool,
    error_count: usize,
    steps: u64,
    scratch: Vec<PackedBatch>,
    fused_hits: u64,
    /// Scalar simulator used for `$display`-family formatting: lane state is
    /// synced in, the scalar formatting path runs, and the random state is
    /// synced back, keeping per-lane streams sequential-identical.
    probe: Simulator,
}

impl<'d> Core<'d> {
    fn new(design: &'d Design, compiled: Arc<CompiledDesign>, seeds: &[Option<u64>]) -> Core<'d> {
        let lanes = seeds.len();
        let mut store = Vec::with_capacity(design.signals.len());
        let mut mems = Vec::with_capacity(design.signals.len());
        for s in &design.signals {
            store.push(PackedBatch::splat(&PackedVec::xs(s.width), lanes));
            if s.mem.is_some() {
                mems.push(vec![
                    PackedBatch::splat(&PackedVec::xs(s.width), lanes);
                    s.mem_len()
                ]);
            } else {
                mems.push(Vec::new());
            }
        }
        let mut probe = Simulator::from_design(design.clone());
        let rand: Vec<u64> = seeds
            .iter()
            .map(|s| match s {
                Some(seed) => {
                    probe.seed_random(*seed);
                    probe.rand_state.get()
                }
                None => 0x9E3779B97F4A7C15,
            })
            .collect();
        probe.rand_state.set(0x9E3779B97F4A7C15);
        let procs: Vec<BProc> = design
            .processes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let seed = proc_seed(p, design);
                let tasks = if seed.is_continuous {
                    Vec::new()
                } else {
                    let body = compiled.procs[i]
                        .body
                        .clone()
                        .expect("non-continuous process has a compiled body");
                    vec![BTask::Exec(body)]
                };
                BProc {
                    tasks,
                    status: if seed.ready {
                        LaneStatus::Ready
                    } else {
                        LaneStatus::WaitEvent
                    },
                    watches: seed.watches,
                    rearm: seed.rearm,
                    free_running: seed.free_running,
                    is_initial: seed.is_initial,
                    is_continuous: seed.is_continuous,
                }
            })
            .collect();
        let nprocs = procs.len();
        let nregs = compiled.nregs;
        Core {
            design,
            compiled,
            lanes,
            active: PackedBatch::all_lanes_mask(lanes),
            retired: 0,
            store,
            mems,
            time: 0,
            rand,
            procs,
            ready: VecDeque::new(),
            in_ready: vec![false; nprocs],
            future: BTreeMap::new(),
            nba: Vec::new(),
            pending: Vec::new(),
            outputs: vec![String::new(); lanes],
            finished: false,
            error_count: 0,
            steps: 0,
            scratch: vec![PackedBatch::splat(&PackedVec::default(), lanes); nregs],
            fused_hits: 0,
            probe,
        }
    }

    // -- divergence ---------------------------------------------------------

    fn leader(&self) -> usize {
        self.active.trailing_zeros() as usize
    }

    fn retire(&mut self, mask: u64) {
        let mask = mask & self.active;
        if mask == 0 {
            return;
        }
        self.active &= !mask;
        self.retired |= mask;
        debug_assert!(self.active != 0, "the leader lane never retires");
    }

    /// Unifies a boolean decision from a per-lane truth mask: the leader's
    /// bit decides, lanes disagreeing with it retire.
    fn decide_mask(&mut self, truth: u64) -> bool {
        let d0 = truth & (1u64 << self.leader()) != 0;
        let agree = if d0 { truth } else { !truth };
        self.retire(self.active & !agree);
        d0
    }

    /// Unified `truthy() == Some(true)` decision over a batched value.
    fn decide_truthy(&mut self, v: &PackedBatch) -> bool {
        if let Some(u) = v.as_uniform() {
            return u.truthy() == Some(true);
        }
        let mut truth = 0u64;
        let mut m = self.active;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if v.truthy_lane(l) == Some(true) {
                truth |= 1u64 << l;
            }
        }
        self.decide_mask(truth)
    }

    /// Unified `to_u64_ext().unwrap_or(0)` decision (delay amounts, repeat
    /// counts).
    fn decide_u64(&mut self, v: &PackedBatch) -> u64 {
        if let Some(u) = v.as_uniform() {
            return u.to_u64_ext().unwrap_or(0);
        }
        let leader = self.leader();
        let d0 = v.lane(leader).to_u64_ext().unwrap_or(0);
        let mut retire_mask = 0u64;
        let mut m = self.active & !(1u64 << leader);
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if v.lane(l).to_u64_ext().unwrap_or(0) != d0 {
                retire_mask |= 1u64 << l;
            }
        }
        self.retire(retire_mask);
        d0
    }

    /// Unified `to_u64_ext()` decision (dynamic write indices, where `None`
    /// means a discarded write).
    fn decide_index(&mut self, v: &PackedBatch) -> Option<u64> {
        if let Some(u) = v.as_uniform() {
            return u.to_u64_ext();
        }
        let leader = self.leader();
        let d0 = v.lane(leader).to_u64_ext();
        let mut retire_mask = 0u64;
        let mut m = self.active & !(1u64 << leader);
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if v.lane(l).to_u64_ext() != d0 {
                retire_mask |= 1u64 << l;
            }
        }
        self.retire(retire_mask);
        d0
    }

    // -- event loop ---------------------------------------------------------

    fn start(&mut self) {
        for (id, def) in self.design.signals.iter().enumerate() {
            if let Some(init) = &def.init {
                let old = self.store[id].clone();
                let new = PackedBatch::splat(
                    &PackedVec::from_logic(init).resize(def.width, false),
                    self.lanes,
                );
                self.store[id] = new.clone();
                self.pending.push((id, old, new));
            }
        }
        for i in 0..self.procs.len() {
            if self.procs[i].status == LaneStatus::Ready {
                self.ready.push_back(i);
                self.in_ready[i] = true;
            }
        }
        self.drain_changes();
    }

    fn run(&mut self, opts: &SimOptions) -> Result<(), RunError> {
        self.start();
        loop {
            let mut deltas = 0usize;
            loop {
                if self.finished {
                    break;
                }
                if let Some(p) = self.ready.pop_front() {
                    self.in_ready[p] = false;
                    self.run_proc(p, opts)?;
                    continue;
                }
                if !self.nba.is_empty() {
                    deltas += 1;
                    if deltas > opts.max_deltas {
                        return Err(RunError {
                            message: "nonblocking-update delta limit exceeded".into(),
                            time: self.time,
                            kind: RunErrorKind::DeltaLimit,
                        });
                    }
                    let updates = std::mem::take(&mut self.nba);
                    for (t, v) in updates {
                        self.write(t, v);
                    }
                    self.drain_changes();
                    continue;
                }
                break;
            }
            if self.finished {
                break;
            }
            // (No $monitor in lockstep: the static scan rejects it.)
            let Some((&t, _)) = self.future.iter().next() else {
                break; // quiescent
            };
            if t > opts.max_time {
                break;
            }
            self.check_wall(opts)?;
            self.time = t;
            let events = self.future.remove(&t).unwrap_or_default();
            for ev in events {
                match ev {
                    BFuture::Wake(p) => {
                        if self.procs[p].status == LaneStatus::WaitTime {
                            self.procs[p].status = LaneStatus::Ready;
                            self.enqueue(p);
                        }
                    }
                    BFuture::Nba(t, v) => self.nba.push((t, v)),
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn check_wall(&self, opts: &SimOptions) -> Result<(), RunError> {
        if opts.cancel.is_cancelled() {
            return Err(RunError {
                message: "wall-clock deadline exceeded".into(),
                time: self.time,
                kind: RunErrorKind::WallTimeout,
            });
        }
        Ok(())
    }

    fn enqueue(&mut self, p: usize) {
        if !self.in_ready[p] {
            self.in_ready[p] = true;
            self.ready.push_back(p);
        }
    }

    fn run_proc(&mut self, p: usize, opts: &SimOptions) -> Result<(), RunError> {
        if self.procs[p].is_continuous {
            self.run_cont(p);
            return Ok(());
        }
        loop {
            if self.finished {
                return Ok(());
            }
            self.steps += 1;
            if self.steps > opts.max_steps {
                return Err(RunError {
                    message: "statement budget exceeded (runaway loop?)".into(),
                    time: self.time,
                    kind: RunErrorKind::StepBudget,
                });
            }
            if self.steps.is_multiple_of(WALL_POLL_PERIOD) {
                self.check_wall(opts)?;
            }
            let Some(task) = self.procs[p].tasks.pop() else {
                // Body complete.
                if self.procs[p].is_initial {
                    self.procs[p].status = LaneStatus::Done;
                    return Ok(());
                }
                let rearm = self.procs[p]
                    .rearm
                    .clone()
                    .unwrap_or_else(|| Vec::new().into());
                if self.design.processes[p].body.is_none() {
                    // Malformed always with no body: never reschedule.
                    return Ok(());
                }
                let body = self.compiled.procs[p]
                    .body
                    .clone()
                    .expect("non-continuous process has a compiled body");
                self.procs[p].tasks.push(BTask::Exec(body));
                if self.procs[p].free_running {
                    continue;
                }
                self.procs[p].watches = rearm;
                self.procs[p].status = LaneStatus::WaitEvent;
                return Ok(());
            };
            if !self.exec_task(p, task)? {
                return Ok(()); // suspended
            }
        }
    }

    fn run_cont(&mut self, p: usize) {
        let compiled = Arc::clone(&self.compiled);
        let Some(CCont::Prog { rhs, target }) = &compiled.procs[p].cont else {
            unreachable!("static scan rejects AST continuous assignments");
        };
        let v = self.eval_prog(rhs);
        let wt = self.resolve_ctarget(target);
        let width = target_width(&wt, self.design).max(1);
        self.write(wt, v.map1(|x| x.resize(width, false)));
        self.procs[p].status = LaneStatus::WaitEvent;
        self.drain_changes();
    }

    /// Executes one task; returns `false` when the process suspended.
    fn exec_task(&mut self, p: usize, task: BTask) -> Result<bool, RunError> {
        match task {
            BTask::Apply(target, value) => {
                self.write(target, value);
                self.drain_changes();
                Ok(true)
            }
            BTask::WaitCheck { cond, watches } => {
                let v = self.eval_prog(&cond);
                if self.decide_truthy(&v) {
                    Ok(true)
                } else {
                    self.procs[p].tasks.push(BTask::WaitCheck {
                        cond,
                        watches: Arc::clone(&watches),
                    });
                    self.procs[p].watches = watches;
                    self.procs[p].status = LaneStatus::WaitEvent;
                    Ok(false)
                }
            }
            BTask::LoopWhile(node) => {
                let CStmt::While { cond, body } = &*node else {
                    unreachable!("LoopWhile holds a While node");
                };
                let v = self.eval_prog(cond);
                if self.decide_truthy(&v) {
                    let body = Arc::clone(body);
                    self.procs[p]
                        .tasks
                        .push(BTask::LoopWhile(Arc::clone(&node)));
                    self.procs[p].tasks.push(BTask::Exec(body));
                }
                Ok(true)
            }
            BTask::LoopFor(node) => {
                let CStmt::For {
                    cond, step, body, ..
                } = &*node
                else {
                    unreachable!("LoopFor holds a For node");
                };
                let v = self.eval_prog(cond);
                if self.decide_truthy(&v) {
                    let (step, body) = (Arc::clone(step), Arc::clone(body));
                    self.procs[p].tasks.push(BTask::LoopFor(Arc::clone(&node)));
                    self.procs[p].tasks.push(BTask::Exec(step));
                    self.procs[p].tasks.push(BTask::Exec(body));
                }
                Ok(true)
            }
            BTask::LoopRepeat { remaining, node } => {
                if remaining > 0 {
                    let CStmt::Repeat { body, .. } = &*node else {
                        unreachable!("LoopRepeat holds a Repeat node");
                    };
                    let body = Arc::clone(body);
                    self.procs[p].tasks.push(BTask::LoopRepeat {
                        remaining: remaining - 1,
                        node: Arc::clone(&node),
                    });
                    self.procs[p].tasks.push(BTask::Exec(body));
                }
                Ok(true)
            }
            BTask::LoopForever(node) => {
                let CStmt::Forever { body } = &*node else {
                    unreachable!("LoopForever holds a Forever node");
                };
                let body = Arc::clone(body);
                self.procs[p]
                    .tasks
                    .push(BTask::LoopForever(Arc::clone(&node)));
                self.procs[p].tasks.push(BTask::Exec(body));
                Ok(true)
            }
            BTask::Exec(node) => self.exec_cstmt(p, node),
        }
    }

    /// Mirrors the scalar `exec_cstmt` arm for arm so step counts and event
    /// ordering are identical; every scheduling decision goes through a
    /// `decide_*` unifier.
    fn exec_cstmt(&mut self, p: usize, node: Arc<CStmt>) -> Result<bool, RunError> {
        match &*node {
            CStmt::Block(stmts) => {
                for s in stmts.iter().rev() {
                    self.procs[p].tasks.push(BTask::Exec(Arc::clone(s)));
                }
                Ok(true)
            }
            CStmt::Null => Ok(true),
            CStmt::Assign {
                rhs,
                target,
                signed,
                kind,
                delay,
            } => {
                let value = self.eval_prog(rhs);
                let target = self.resolve_ctarget(target);
                let width = target_width(&target, self.design).max(1);
                let value = value.map1(|v| v.resize(width, *signed));
                let delay_amt = delay.as_ref().map(|d| {
                    let dv = self.eval_prog(d);
                    self.decide_u64(&dv)
                });
                self.finish_assign(p, *kind, target, value, delay_amt)
            }
            CStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let v = self.eval_prog(cond);
                if self.decide_truthy(&v) {
                    self.procs[p].tasks.push(BTask::Exec(Arc::clone(then_s)));
                } else if let Some(e) = else_s {
                    self.procs[p].tasks.push(BTask::Exec(Arc::clone(e)));
                }
                Ok(true)
            }
            CStmt::Case {
                wild_z,
                wild_x,
                sel,
                arms,
            } => {
                let sel = self.eval_prog(sel);
                // Per-lane first-matching arm (None = default; the last
                // default arm wins, like the scalar overwrite). Labels are
                // pure (the static scan forbids $random there), so
                // over-evaluating them relative to the scalar lazy walk is
                // unobservable.
                let mut decided = [None::<usize>; MAX_BATCH_LANES];
                let mut undecided = self.active;
                let mut default_idx: Option<usize> = None;
                for (k, arm) in arms.iter().enumerate() {
                    if arm.labels.is_empty() {
                        default_idx = Some(k);
                        continue;
                    }
                    if undecided == 0 {
                        continue;
                    }
                    for lprog in arm.labels.iter() {
                        if undecided == 0 {
                            break;
                        }
                        let lv = self.eval_prog(lprog);
                        if let (Some(s), Some(lu)) = (sel.as_uniform(), lv.as_uniform()) {
                            if s.matches_with_wildcards(lu, *wild_z, *wild_x) {
                                let mut m = undecided;
                                while m != 0 {
                                    let l = m.trailing_zeros() as usize;
                                    m &= m - 1;
                                    decided[l] = Some(k);
                                }
                                undecided = 0;
                            }
                        } else {
                            let mut m = undecided;
                            while m != 0 {
                                let l = m.trailing_zeros() as usize;
                                m &= m - 1;
                                if sel
                                    .lane(l)
                                    .matches_with_wildcards(&lv.lane(l), *wild_z, *wild_x)
                                {
                                    decided[l] = Some(k);
                                    undecided &= !(1u64 << l);
                                }
                            }
                        }
                    }
                }
                // Which arm runs is a scheduling decision: unify on it.
                let leader = self.leader();
                let d0 = decided[leader];
                let mut retire_mask = 0u64;
                let mut m = self.active & !(1u64 << leader);
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if decided[l] != d0 {
                        retire_mask |= 1u64 << l;
                    }
                }
                self.retire(retire_mask);
                match d0 {
                    Some(k) => {
                        self.procs[p]
                            .tasks
                            .push(BTask::Exec(Arc::clone(&arms[k].body)));
                    }
                    None => {
                        if let Some(dk) = default_idx {
                            self.procs[p]
                                .tasks
                                .push(BTask::Exec(Arc::clone(&arms[dk].body)));
                        }
                    }
                }
                Ok(true)
            }
            CStmt::For { init, .. } => {
                self.procs[p].tasks.push(BTask::LoopFor(Arc::clone(&node)));
                self.procs[p].tasks.push(BTask::Exec(Arc::clone(init)));
                Ok(true)
            }
            CStmt::While { .. } => {
                self.procs[p]
                    .tasks
                    .push(BTask::LoopWhile(Arc::clone(&node)));
                Ok(true)
            }
            CStmt::Repeat { count, .. } => {
                let v = self.eval_prog(count);
                let n = self.decide_u64(&v);
                self.procs[p].tasks.push(BTask::LoopRepeat {
                    remaining: n,
                    node: Arc::clone(&node),
                });
                Ok(true)
            }
            CStmt::Forever { .. } => {
                self.procs[p]
                    .tasks
                    .push(BTask::LoopForever(Arc::clone(&node)));
                Ok(true)
            }
            CStmt::Delay { amount, stmt } => {
                let v = self.eval_prog(amount);
                let d = self.decide_u64(&v);
                if let Some(s) = stmt {
                    self.procs[p].tasks.push(BTask::Exec(Arc::clone(s)));
                }
                self.schedule_wake(p, self.time + d);
                Ok(false)
            }
            CStmt::Event { watches, stmt } => {
                if let Some(s) = stmt {
                    self.procs[p].tasks.push(BTask::Exec(Arc::clone(s)));
                }
                if watches.is_empty() {
                    return Ok(true);
                }
                self.procs[p].watches = Arc::clone(watches);
                self.procs[p].status = LaneStatus::WaitEvent;
                Ok(false)
            }
            CStmt::Wait {
                cond,
                watches,
                stmt,
            } => {
                if let Some(s) = stmt {
                    self.procs[p].tasks.push(BTask::Exec(Arc::clone(s)));
                }
                let v = self.eval_prog(cond);
                if self.decide_truthy(&v) {
                    Ok(true)
                } else {
                    self.procs[p].tasks.push(BTask::WaitCheck {
                        cond: Arc::clone(cond),
                        watches: Arc::clone(watches),
                    });
                    self.procs[p].watches = Arc::clone(watches);
                    self.procs[p].status = LaneStatus::WaitEvent;
                    Ok(false)
                }
            }
            CStmt::SysCall { name, args } => {
                self.exec_syscall(name, args);
                Ok(!self.finished)
            }
            CStmt::Ast(_) => unreachable!("static scan rejects AST statements"),
        }
    }

    /// Shared tail of blocking/nonblocking assignment dispatch.
    fn finish_assign(
        &mut self,
        p: usize,
        kind: AssignKind,
        target: WriteTarget,
        value: PackedBatch,
        delay_amt: Option<u64>,
    ) -> Result<bool, RunError> {
        match (kind, delay_amt) {
            (AssignKind::Blocking, None) => {
                self.write(target, value);
                self.drain_changes();
                Ok(true)
            }
            (AssignKind::Blocking, Some(d)) => {
                self.procs[p].tasks.push(BTask::Apply(target, value));
                self.schedule_wake(p, self.time + d);
                Ok(false)
            }
            (AssignKind::NonBlocking, None) => {
                self.nba.push((target, value));
                Ok(true)
            }
            (AssignKind::NonBlocking, Some(d)) => {
                let t = self.time + d;
                self.future
                    .entry(t)
                    .or_default()
                    .push(BFuture::Nba(target, value));
                Ok(true)
            }
        }
    }

    fn schedule_wake(&mut self, p: usize, t: u64) {
        self.procs[p].status = LaneStatus::WaitTime;
        self.future.entry(t).or_default().push(BFuture::Wake(p));
    }

    /// Resolves a compiled lvalue; dynamic indices are unified decisions.
    fn resolve_ctarget(&mut self, t: &CTarget) -> WriteTarget {
        match t {
            CTarget::Full(id) => WriteTarget::Full(*id),
            CTarget::BitsConst(id, lo, w) => WriteTarget::Bits(*id, *lo, *w),
            CTarget::WordConst(id, off) => WriteTarget::Word(*id, *off),
            CTarget::BitDyn { sig, idx } => {
                let v = self.eval_prog(idx);
                match self.decide_index(&v) {
                    Some(i) => match self.design.signals[*sig].bit_offset(i as i64) {
                        Some(o) => WriteTarget::Bits(*sig, o, 1),
                        None => WriteTarget::Void,
                    },
                    None => WriteTarget::Void,
                }
            }
            CTarget::WordDyn { sig, idx } => {
                let v = self.eval_prog(idx);
                match self.decide_index(&v) {
                    Some(i) => match self.design.signals[*sig].word_offset(i as i64) {
                        Some(o) => WriteTarget::Word(*sig, o),
                        None => WriteTarget::Void,
                    },
                    None => WriteTarget::Void,
                }
            }
            CTarget::Pack(parts) => WriteTarget::Pack(
                parts
                    .iter()
                    .map(|part| {
                        let t = self.resolve_ctarget(part);
                        let w = target_width(&t, self.design);
                        (t, w)
                    })
                    .collect(),
            ),
            CTarget::Void => WriteTarget::Void,
        }
    }

    // -- writes and wake-up -------------------------------------------------

    fn write(&mut self, target: WriteTarget, value: PackedBatch) {
        match target {
            WriteTarget::Void => {}
            WriteTarget::Full(id) => {
                let width = self.design.signals[id].width;
                let new = value.map1(|v| v.resize(width, false));
                let old = std::mem::replace(&mut self.store[id], new.clone());
                if old.ne_mask(&new) != 0 {
                    self.pending.push((id, old, new));
                }
            }
            WriteTarget::Bits(id, lo, width) => {
                let old = self.store[id].clone();
                let mut new = old.clone();
                new.set_range_batch(lo, width, &value);
                if old.ne_mask(&new) != 0 {
                    self.store[id] = new.clone();
                    self.pending.push((id, old, new));
                }
            }
            WriteTarget::Word(id, off) => {
                let width = self.design.signals[id].width;
                let new = value.map1(|v| v.resize(width, false));
                if off < self.mems[id].len() {
                    let old = std::mem::replace(&mut self.mems[id][off], new.clone());
                    // The scalar engine pushes a synthetic change (waking
                    // level watchers of the memory) only when the word
                    // changed; that is a scheduling decision, so lanes must
                    // agree on it.
                    let changed_mask = old.ne_mask(&new) & self.active;
                    let changed = if changed_mask == 0 {
                        false
                    } else if changed_mask & self.active == self.active {
                        true
                    } else {
                        self.decide_mask(changed_mask)
                    };
                    if changed {
                        self.pending.push((
                            id,
                            PackedBatch::splat(&PackedVec::zeros(1), self.lanes),
                            PackedBatch::splat(&PackedVec::from_bool(true), self.lanes),
                        ));
                    }
                }
            }
            WriteTarget::Pack(parts) => {
                // MSB-first: the first part takes the top bits.
                let total: usize = parts.iter().map(|(_, w)| w).sum();
                let v = value.map1(|x| x.resize(total.max(1), false));
                let mut hi = total;
                for (t, w) in parts {
                    let lo = hi - w;
                    self.write(t, v.map1(|x| x.slice(lo, w)));
                    hi = lo;
                }
            }
        }
    }

    /// Wakes processes whose watches match the pending changes. Whether a
    /// process wakes is a scheduling decision, so varied changes unify it
    /// per process — in process-index order, exactly like the scalar loop,
    /// so the wake order (and thus event order) matches.
    fn drain_changes(&mut self) {
        while !self.pending.is_empty() {
            let changes = std::mem::take(&mut self.pending);
            // Uniform changes wake every lane identically — one scalar
            // check per (watch, change) pair, no divergence possible.
            let all_uniform = changes
                .iter()
                .all(|(_, o, n)| o.is_uniform() && n.is_uniform());
            let mut to_wake = Vec::new();
            for pi in 0..self.procs.len() {
                if self.procs[pi].status != LaneStatus::WaitEvent {
                    continue;
                }
                let watches = Arc::clone(&self.procs[pi].watches);
                let wake = if all_uniform {
                    let mut hit = false;
                    'w: for w in watches.iter() {
                        for (sig, old, new) in &changes {
                            if w.sig == *sig && wm_lane(w, old, new, 0) {
                                hit = true;
                                break 'w;
                            }
                        }
                    }
                    hit
                } else {
                    let mut truth = 0u64;
                    let mut m = self.active;
                    while m != 0 {
                        let l = m.trailing_zeros() as usize;
                        m &= m - 1;
                        'w: for w in watches.iter() {
                            for (sig, old, new) in &changes {
                                if w.sig == *sig && wm_lane(w, old, new, l) {
                                    truth |= 1u64 << l;
                                    break 'w;
                                }
                            }
                        }
                    }
                    self.decide_mask(truth)
                };
                if wake {
                    to_wake.push(pi);
                }
            }
            for pi in to_wake {
                self.procs[pi].status = LaneStatus::Ready;
                self.enqueue(pi);
            }
        }
    }

    // -- expression evaluation ---------------------------------------------

    /// Batched mirror of the scalar register machine. Value-level lane
    /// differences never diverge the schedule: every instruction is either
    /// vectorized (the bitwise ops) or lifted per lane with the exact
    /// scalar kernels, so each lane's value equals its sequential
    /// counterpart.
    fn eval_prog(&mut self, prog: &ExprProg) -> PackedBatch {
        let lanes = self.lanes;
        let mut regs = std::mem::take(&mut self.scratch);
        if regs.len() < prog.nregs {
            regs.resize(prog.nregs, PackedBatch::splat(&PackedVec::default(), lanes));
        }
        for ins in prog.instrs.iter() {
            let (dst, v) = match ins {
                Instr::Const { dst, v } => (*dst, PackedBatch::splat(v, lanes)),
                Instr::Load { dst, sig } => (*dst, self.store[*sig].clone()),
                Instr::LoadBit { dst, sig, off } => (
                    *dst,
                    self.store[*sig].map1(|v| PackedVec::from_bit(v.bit(*off))),
                ),
                Instr::LoadSlice {
                    dst,
                    sig,
                    lo,
                    width,
                } => (*dst, self.store[*sig].map1(|v| v.slice(*lo, *width))),
                Instr::LoadWordConst { dst, sig, off } => (*dst, self.mems[*sig][*off].clone()),
                Instr::LoadWord { dst, sig, idx } => {
                    let def = &self.design.signals[*sig];
                    let idxv = &regs[*idx];
                    let mem = &self.mems[*sig];
                    let v = match idxv.as_uniform() {
                        Some(u) => match u.to_u64_ext().and_then(|i| def.word_offset(i as i64)) {
                            Some(off) => mem[off].clone(),
                            None => PackedBatch::splat(&PackedVec::xs(def.width), lanes),
                        },
                        None => PackedBatch::from_fn(lanes, |l| {
                            match idxv
                                .lane(l)
                                .to_u64_ext()
                                .and_then(|i| def.word_offset(i as i64))
                            {
                                Some(off) => mem[off].lane(l),
                                None => PackedVec::xs(def.width),
                            }
                        }),
                    };
                    (*dst, v)
                }
                Instr::LoadBitDyn { dst, sig, idx } => {
                    let def = &self.design.signals[*sig];
                    let idxv = &regs[*idx];
                    let sv = &self.store[*sig];
                    let v = match idxv.as_uniform() {
                        Some(u) => match u.to_u64_ext().and_then(|i| def.bit_offset(i as i64)) {
                            Some(off) => sv.map1(|x| PackedVec::from_bit(x.bit(off))),
                            None => PackedBatch::splat(&PackedVec::xs(1), lanes),
                        },
                        None => PackedBatch::from_fn(lanes, |l| {
                            match idxv
                                .lane(l)
                                .to_u64_ext()
                                .and_then(|i| def.bit_offset(i as i64))
                            {
                                Some(off) => PackedVec::from_bit(sv.lane_bit(l, off)),
                                None => PackedVec::xs(1),
                            }
                        }),
                    };
                    (*dst, v)
                }
                Instr::SliceReg { dst, a, lo, width } => {
                    (*dst, regs[*a].map1(|v| v.slice(*lo, *width)))
                }
                Instr::Resize {
                    dst,
                    a,
                    width,
                    signed,
                } => (*dst, regs[*a].map1(|v| v.resize(*width, *signed))),
                Instr::Un { dst, op, a } => {
                    use UnaryOp::*;
                    let v = regs[*a].map1(|x| match op {
                        Plus => x.clone(),
                        Neg => x.neg(),
                        LogicNot => x.log_not(),
                        BitNot => x.bit_not(),
                        RedAnd => x.reduce_and(false),
                        RedNand => x.reduce_and(true),
                        RedOr => x.reduce_or(false),
                        RedNor => x.reduce_or(true),
                        RedXor => x.reduce_xor(false),
                        RedXnor => x.reduce_xor(true),
                    });
                    (*dst, v)
                }
                Instr::Bin {
                    dst,
                    op,
                    a,
                    b,
                    signed,
                } => (*dst, apply_bin_batch(*op, &regs[*a], &regs[*b], *signed)),
                Instr::LoadBin {
                    dst,
                    sig,
                    op,
                    b,
                    swapped,
                    signed,
                } => {
                    self.fused_hits += 1;
                    let s = &self.store[*sig];
                    let v = if *swapped {
                        apply_bin_batch(*op, &regs[*b], s, *signed)
                    } else {
                        apply_bin_batch(*op, s, &regs[*b], *signed)
                    };
                    (*dst, v)
                }
                Instr::BinImm {
                    dst,
                    op,
                    a,
                    imm,
                    swapped,
                    signed,
                } => {
                    self.fused_hits += 1;
                    let v = if *swapped {
                        regs[*a].map1(|x| apply_bin(*op, imm, x, *signed))
                    } else {
                        regs[*a].map1(|x| apply_bin(*op, x, imm, *signed))
                    };
                    (*dst, v)
                }
                Instr::Mux { dst, cond, t, f } => {
                    (*dst, mux_batch(&regs[*cond], &regs[*t], &regs[*f], lanes))
                }
                Instr::CmpMux {
                    dst,
                    op,
                    a,
                    b,
                    signed,
                    t,
                    f,
                } => {
                    self.fused_hits += 1;
                    let cond = apply_bin_batch(*op, &regs[*a], &regs[*b], *signed);
                    (*dst, mux_batch(&cond, &regs[*t], &regs[*f], lanes))
                }
                Instr::Concat { dst, parts } => {
                    let mut acc = PackedBatch::splat(&PackedVec::default(), lanes);
                    for r in parts.iter() {
                        acc = acc.map2(&regs[*r], |a, b| a.concat(b));
                    }
                    let v = if acc.width() == 0 {
                        PackedBatch::splat(&PackedVec::xs(1), lanes)
                    } else {
                        acc
                    };
                    (*dst, v)
                }
                Instr::Repl { dst, parts, count } => {
                    let mut inner = PackedBatch::splat(&PackedVec::default(), lanes);
                    for r in parts.iter() {
                        inner = inner.map2(&regs[*r], |a, b| a.concat(b));
                    }
                    let r = inner.map1(|v| v.replicate(*count));
                    let v = if r.width() == 0 {
                        PackedBatch::splat(&PackedVec::zeros(1), lanes)
                    } else {
                        r
                    };
                    (*dst, v)
                }
                Instr::Rand { dst } => {
                    // Per-lane streams: value-level divergence, no unify.
                    let rand = &mut self.rand;
                    let v = PackedBatch::from_fn(lanes, |l| {
                        let mut s = rand[l];
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        rand[l] = s;
                        PackedVec::from_u64(s & 0xFFFF_FFFF, 32)
                    });
                    (*dst, v)
                }
                Instr::Time { dst } => (
                    *dst,
                    PackedBatch::splat(&PackedVec::from_u64(self.time, 64), lanes),
                ),
                Instr::Fallback { .. } => {
                    unreachable!("static scan rejects fallback instructions")
                }
            };
            regs[dst] = v;
        }
        let out = std::mem::replace(
            &mut regs[prog.out],
            PackedBatch::splat(&PackedVec::default(), lanes),
        );
        self.scratch = regs;
        out
    }

    // -- system tasks -------------------------------------------------------

    /// Syncs lane `l`'s values, time, and random state into the probe
    /// simulator so the scalar formatting path sees exactly that lane.
    fn sync_probe_lane(&mut self, l: usize) {
        for (id, b) in self.store.iter().enumerate() {
            self.probe.store[id] = b.lane(l);
        }
        for (id, m) in self.mems.iter().enumerate() {
            for (w, b) in m.iter().enumerate() {
                self.probe.mems[id][w] = b.lane(l);
            }
        }
        self.probe.time = self.time;
        self.probe.rand_state.set(self.rand[l]);
    }

    /// Formats `args` once per active lane through the probe, advancing the
    /// lane's `$random` stream exactly as a scalar run would.
    fn format_per_lane(&mut self, args: &[Expr], mut emit: impl FnMut(&mut Self, usize, String)) {
        let mut m = self.active;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            self.sync_probe_lane(l);
            let text = self.probe.format_args(args);
            self.rand[l] = self.probe.rand_state.get();
            emit(self, l, text);
        }
    }

    fn exec_syscall(&mut self, name: &str, args: &[Expr]) {
        match name {
            "display" | "write" | "strobe" => {
                let newline = name != "write";
                self.format_per_lane(args, |core, l, text| {
                    core.push_output(l, &text);
                    if newline {
                        core.push_output(l, "\n");
                    }
                });
            }
            "finish" | "stop" => {
                self.finished = true;
            }
            "error" | "warning" | "info" => {
                if name == "error" {
                    self.error_count += 1;
                }
                let tag = name.to_uppercase();
                self.format_per_lane(args, |core, l, text| {
                    core.push_output(l, &format!("[{tag}] {text}\n"));
                });
            }
            "fatal" => {
                self.error_count += 1;
                self.format_per_lane(args, |core, l, text| {
                    core.push_output(l, &format!("[FATAL] {text}\n"));
                });
                self.finished = true;
            }
            "monitor" => unreachable!("static scan rejects $monitor"),
            // Waveform / misc directives are accepted and ignored.
            _ => {}
        }
    }

    fn push_output(&mut self, l: usize, s: &str) {
        // Same cap as the scalar engine's output guard.
        if self.outputs[l].len() < (1 << 20) {
            self.outputs[l].push_str(s);
        }
    }
}

/// Per-lane mirror of the scalar watch matcher over batched old/new values.
fn wm_lane(w: &SensWatch, old: &PackedBatch, new: &PackedBatch, l: usize) -> bool {
    match w.edge {
        None => match w.bit {
            Some(b) => old.lane_bit(l, b) != new.lane_bit(l, b),
            None => !old.lane_eq(new, l),
        },
        Some(edge) => {
            let b = w.bit.unwrap_or(0);
            let (o, n) = (old.lane_bit(l, b), new.lane_bit(l, b));
            match edge {
                Edge::Pos => {
                    (o == LogicBit::Zero && n != LogicBit::Zero)
                        || (o.is_unknown() && n == LogicBit::One)
                }
                Edge::Neg => {
                    (o == LogicBit::One && n != LogicBit::One)
                        || (o.is_unknown() && n == LogicBit::Zero)
                }
            }
        }
    }
}

/// Batched [`apply_bin`]: the four bitwise ops run vectorized over the
/// interleaved lane words; everything else lifts the scalar kernel per lane
/// (one call when both operands are uniform).
fn apply_bin_batch(op: BinaryOp, x: &PackedBatch, y: &PackedBatch, signed: bool) -> PackedBatch {
    match op {
        BinaryOp::BitAnd => x.bit_and(y),
        BinaryOp::BitOr => x.bit_or(y),
        BinaryOp::BitXor => x.bit_xor(y),
        BinaryOp::BitXnor => x.bit_xnor(y),
        _ => x.map2(y, |a, b| apply_bin(op, a, b, signed)),
    }
}

/// Batched ternary select: a value operation (both branches are already
/// evaluated), so per-lane conditions never diverge the schedule.
fn mux_batch(cond: &PackedBatch, t: &PackedBatch, f: &PackedBatch, lanes: usize) -> PackedBatch {
    if let (Some(c), Some(tv), Some(fv)) = (cond.as_uniform(), t.as_uniform(), f.as_uniform()) {
        let v = match c.truthy() {
            Some(true) => tv.clone(),
            Some(false) => fv.clone(),
            None => tv.ternary_merge(fv),
        };
        return PackedBatch::splat(&v, lanes);
    }
    PackedBatch::from_fn(lanes, |l| match cond.truthy_lane(l) {
        Some(true) => t.lane(l),
        Some(false) => f.lane(l),
        None => t.lane(l).ternary_merge(&f.lane(l)),
    })
}
