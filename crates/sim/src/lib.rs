//! # dda-sim
//!
//! Event-driven four-state Verilog simulator for the `chipdda` framework —
//! the substitute for the commercial functional simulator (VCS) used in the
//! paper's evaluation.
//!
//! Pipeline: [`elab::elaborate`] flattens the hierarchy parsed by
//! [`dda_verilog`] into signals and processes; [`Simulator`] then executes
//! them under the IEEE 1364 stratified event queue (active events, then
//! nonblocking updates, then time advance). Testbench constructs (`initial`,
//! `#delay`, `@(posedge ...)`, `$display`, `$finish`) are supported so the
//! benchmark suites can self-check and report through captured output.
//!
//! Supporting modules: [`cache`] memoises elaborated designs across
//! repeated testbench runs (its hit/miss counts feed `dda-obs`), [`ops`]
//! holds the word-packed four-state value kernels, and [`vcd`] dumps
//! waveforms for debugging.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! module counter(input clk, rst, output reg [1:0] count);
//!   always @(posedge clk) if (rst) count <= 2'd0; else count <= count + 2'd1;
//! endmodule
//! module tb;
//!   reg clk = 0; reg rst = 1; wire [1:0] count;
//!   counter dut(.clk(clk), .rst(rst), .count(count));
//!   always #5 clk = ~clk;
//!   initial begin
//!     #12 rst = 0;
//!     #40 $display(\"count=%0d\", count);
//!     $finish;
//!   end
//! endmodule";
//! let sf = dda_verilog::parse(src)?;
//! let mut sim = dda_sim::Simulator::new(&sf, "tb")?;
//! let out = sim.run(&dda_sim::SimOptions::default())?;
//! assert!(out.finished);
//! assert_eq!(out.output.trim(), "count=0"); // 4 rising edges after reset
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
mod compile;
pub mod elab;
mod eval;
mod exec;
pub mod ops;
pub mod vcd;

pub use batch::{run_batch, BatchReport, BatchSim};
pub use compile::{fusion_enabled, set_fusion};
pub use dda_verilog::MAX_BATCH_LANES;
pub use elab::{elaborate, Design, ElabError, Process, ProcessKind, SigId, SignalDef};
pub use exec::{EvalMode, RunError, RunErrorKind, SimArena, SimOptions, SimResult, Simulator};
pub use vcd::VcdRecorder;
