//! Bytecode compilation of elaborated process bodies.
//!
//! The AST interpreter in [`crate::eval`] re-walks every expression tree on
//! every event, paying string-keyed signal lookups, recursion, and per-node
//! allocation. This pass lowers each process / continuous-assign expression
//! **once** (lazily, on first run) into a flat register program
//! ([`ExprProg`]) whose operands are pre-resolved signal slot indices, and
//! each statement into a [`CStmt`] tree whose children sit behind `Arc` so
//! loop iterations re-push a pointer instead of cloning a subtree.
//!
//! Semantics are mirrored arm-for-arm from the interpreter, including its
//! width-context propagation quirks. Wherever the static compiler cannot
//! reproduce the interpreter exactly — user-defined function calls,
//! ternaries containing calls (the interpreter only evaluates the taken
//! branch, which matters for the `$random` stream), dynamic part-select
//! bounds, non-constant replication counts — it emits a per-subtree
//! [`Instr::Fallback`] or a whole-statement [`CStmt::Ast`] node that defers
//! to the interpreter, so the two modes stay bit-identical by construction
//! (and are checked against each other by the dual-mode equivalence tests).

use crate::elab::{Design, SigId};
use crate::exec::{compile_sens, SensWatch, Simulator};
use crate::ops::LogicVecExt;
use dda_verilog::ast::{AssignKind, BinaryOp, CaseKind, Stmt, UnaryOp};
use dda_verilog::consteval::is_const_expr;
use dda_verilog::printer::print_expr;
use dda_verilog::{Expr, LogicVec, PackedVec};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A flat register program for one expression evaluation.
#[derive(Debug)]
pub(crate) struct ExprProg {
    /// Instructions in execution order.
    pub instrs: Box<[Instr]>,
    /// Register holding the result after the last instruction.
    pub out: usize,
    /// Number of registers the program uses.
    pub nregs: usize,
}

/// One register-machine instruction. Registers hold [`PackedVec`] values.
#[derive(Debug)]
pub(crate) enum Instr {
    /// Load an immediate (constant-folded at compile time).
    Const { dst: usize, v: PackedVec },
    /// Load a full signal value from its store slot.
    Load { dst: usize, sig: SigId },
    /// Load one statically-resolved bit of a signal.
    LoadBit { dst: usize, sig: SigId, off: usize },
    /// Load a statically-resolved part select of a signal.
    LoadSlice {
        dst: usize,
        sig: SigId,
        lo: usize,
        width: usize,
    },
    /// Load a memory word at a statically-resolved offset.
    LoadWordConst { dst: usize, sig: SigId, off: usize },
    /// Load a memory word at a runtime index (x/z or out-of-range → all-x).
    LoadWord { dst: usize, sig: SigId, idx: usize },
    /// Load a signal bit at a runtime index (x/z or out-of-range → x).
    LoadBitDyn { dst: usize, sig: SigId, idx: usize },
    /// Slice a register value at static bounds.
    SliceReg {
        dst: usize,
        a: usize,
        lo: usize,
        width: usize,
    },
    /// Zero-/sign-extend or truncate to a static width.
    Resize {
        dst: usize,
        a: usize,
        width: usize,
        signed: bool,
    },
    /// Unary operator.
    Un { dst: usize, op: UnaryOp, a: usize },
    /// Binary operator; `signed` feeds comparisons and `>>>`.
    Bin {
        dst: usize,
        op: BinaryOp,
        a: usize,
        b: usize,
        signed: bool,
    },
    /// Ternary select: known condition picks a branch, unknown merges
    /// bitwise (x where the branches disagree).
    Mux {
        dst: usize,
        cond: usize,
        t: usize,
        f: usize,
    },
    /// Concatenate part registers, first part highest (empty → 1-bit x).
    Concat { dst: usize, parts: Box<[usize]> },
    /// Concatenate then replicate `count` times (empty → 1-bit zero).
    Repl {
        dst: usize,
        parts: Box<[usize]>,
        count: usize,
    },
    /// `$random`/`$urandom`: advance the xorshift stream, take 32 bits.
    Rand { dst: usize },
    /// `$time`/`$stime`/`$realtime` as a 64-bit value.
    Time { dst: usize },
    /// Defer this subtree to the AST interpreter (exact-semantics escape
    /// hatch for calls, dynamic bounds, and other non-static shapes).
    Fallback {
        dst: usize,
        expr: Arc<Expr>,
        ctx: usize,
    },
    /// Fused load+binary superinstruction (peephole, see [`fuse_prog`]):
    /// the signal value feeds the operator without staging in a register.
    /// `swapped` puts the load on the right-hand side.
    LoadBin {
        dst: usize,
        sig: SigId,
        op: BinaryOp,
        b: usize,
        swapped: bool,
        signed: bool,
    },
    /// Fused binary-with-immediate superinstruction (peephole): shifts and
    /// masks by constants skip the per-eval `Const` register clone.
    /// `swapped` puts the immediate on the left-hand side.
    BinImm {
        dst: usize,
        op: BinaryOp,
        a: usize,
        imm: PackedVec,
        swapped: bool,
        signed: bool,
    },
    /// Fused compare+select superinstruction (peephole): the comparison
    /// drives the mux directly, skipping the 1-bit condition register.
    CmpMux {
        dst: usize,
        op: BinaryOp,
        a: usize,
        b: usize,
        signed: bool,
        t: usize,
        f: usize,
    },
}

/// A compiled lvalue. Mirrors `Simulator::resolve_target`: static shapes
/// resolve at compile time, dynamic indices carry a register program.
#[derive(Debug)]
pub(crate) enum CTarget {
    Full(SigId),
    /// Static bit/part select: (signal, low bit offset, width).
    BitsConst(SigId, usize, usize),
    /// Static memory word.
    WordConst(SigId, usize),
    /// Runtime bit select.
    BitDyn {
        sig: SigId,
        idx: ExprProg,
    },
    /// Runtime memory word select.
    WordDyn {
        sig: SigId,
        idx: ExprProg,
    },
    /// Concatenated lvalue, MSB-first.
    Pack(Box<[CTarget]>),
    /// Statically discarded (unknown name, shapes the interpreter drops).
    Void,
}

/// One arm of a compiled `case`; `labels` is empty for `default` arms.
#[derive(Debug)]
pub(crate) struct CCaseArm {
    pub labels: Box<[ExprProg]>,
    pub body: Arc<CStmt>,
}

/// A compiled statement. Children are `Arc` so control flow re-pushes
/// pointers; [`CStmt::Ast`] defers to the interpreter wholesale.
#[derive(Debug)]
pub(crate) enum CStmt {
    Block(Box<[Arc<CStmt>]>),
    Null,
    Assign {
        rhs: ExprProg,
        target: CTarget,
        signed: bool,
        kind: AssignKind,
        delay: Option<ExprProg>,
    },
    If {
        cond: ExprProg,
        then_s: Arc<CStmt>,
        else_s: Option<Arc<CStmt>>,
    },
    Case {
        wild_z: bool,
        wild_x: bool,
        sel: ExprProg,
        arms: Box<[CCaseArm]>,
    },
    For {
        init: Arc<CStmt>,
        cond: ExprProg,
        step: Arc<CStmt>,
        body: Arc<CStmt>,
    },
    While {
        cond: ExprProg,
        body: Arc<CStmt>,
    },
    Repeat {
        count: ExprProg,
        body: Arc<CStmt>,
    },
    Forever {
        body: Arc<CStmt>,
    },
    Delay {
        amount: ExprProg,
        stmt: Option<Arc<CStmt>>,
    },
    Event {
        watches: Arc<[SensWatch]>,
        stmt: Option<Arc<CStmt>>,
    },
    Wait {
        cond: Arc<ExprProg>,
        watches: Arc<[SensWatch]>,
        stmt: Option<Arc<CStmt>>,
    },
    SysCall {
        name: String,
        args: Vec<Expr>,
    },
    /// Interpreter fallback for statements the compiler cannot mirror
    /// exactly (dynamic lvalue bounds, non-static widths).
    Ast(Arc<Stmt>),
}

/// A compiled continuous assignment.
#[derive(Debug)]
pub(crate) enum CCont {
    Prog {
        rhs: ExprProg,
        target: CTarget,
    },
    /// Fall back to the stored `(lhs, rhs)` AST pair.
    Ast,
}

/// Per-process compilation result.
#[derive(Debug)]
pub(crate) struct CProc {
    /// Compiled body for initial/always processes.
    pub body: Option<Arc<CStmt>>,
    /// Compiled continuous assignment, if this process is one.
    pub cont: Option<CCont>,
}

/// The design's full bytecode; cached on [`Design`] behind an `Arc` so every
/// simulator cloned from the same elaboration shares one copy.
#[derive(Debug)]
pub(crate) struct CompiledDesign {
    pub procs: Vec<CProc>,
    /// Max register count over all programs (sizes the scratch file once).
    pub nregs: usize,
}

/// Compiles every process of `design`.
///
/// Constant subexpressions are folded by evaluating them on a *probe*
/// simulator built from a clone of the design: they contain no identifiers
/// and no calls, so the probe's (all-x) store is never consulted and the
/// fold reproduces the interpreter's exact width/sign quirks. The probe
/// never runs, and cloning a design mid-compilation yields an empty
/// bytecode cell, so there is no reentrancy.
pub(crate) fn compile_design(design: &Design) -> CompiledDesign {
    let probe = Simulator::from_design(design.clone());
    let mut cx = Cx {
        probe: &probe,
        nregs: 0,
    };
    let mut procs = Vec::with_capacity(design.processes.len());
    for p in &design.processes {
        match &p.kind {
            crate::elab::ProcessKind::Continuous { lhs, rhs } => {
                let cont = compile_cont(&mut cx, lhs, rhs);
                procs.push(CProc {
                    body: None,
                    cont: Some(cont),
                });
            }
            _ => {
                let body = match &p.body {
                    Some(b) => compile_stmt(&mut cx, b),
                    // A missing body degrades to an empty block, like the
                    // interpreter's `body_stmt`, so step counts match.
                    None => Arc::new(CStmt::Block(Box::new([]))),
                };
                procs.push(CProc {
                    body: Some(body),
                    cont: None,
                });
            }
        }
    }
    CompiledDesign {
        procs,
        nregs: cx.nregs,
    }
}

/// Process-global switch for the superinstruction peepholes. On by
/// default; [`set_fusion`] exists for A/B measurement and debugging.
///
/// Note the switch is consulted at *compile* time: designs whose bytecode
/// is already cached (the shared design cache, or a `Design` whose
/// `compiled()` cell is populated) keep the programs they were compiled
/// with. Benchmarks comparing both settings must compile fresh designs.
static FUSION: AtomicBool = AtomicBool::new(true);

/// Enables or disables superinstruction fusion for subsequent compiles.
pub fn set_fusion(enabled: bool) {
    FUSION.store(enabled, Ordering::Relaxed);
}

/// Whether superinstruction fusion is currently enabled.
pub fn fusion_enabled() -> bool {
    FUSION.load(Ordering::Relaxed)
}

/// Peephole pass producing fused superinstructions.
///
/// Programs are SSA by construction (`ExprCompiler` allocates a fresh
/// register per value), so each register has exactly one defining
/// instruction and a countable number of readers. Three rewrites, each
/// applied only when the producer's value has exactly one reader (and is
/// not the program result):
///
/// * **compare+select** — a comparison feeding a `Mux` condition becomes
///   [`Instr::CmpMux`].
/// * **load+bin** — a full-signal `Load` feeding a `Bin` operand becomes
///   [`Instr::LoadBin`].
/// * **const+bin** — a `Const` feeding a `Bin` operand (shift amounts,
///   masks, addends) becomes [`Instr::BinImm`].
///
/// All rewrites reorder nothing observable: instruction programs are pure
/// over the store, and `$random` (the only stateful instruction) is never
/// part of a fused pair, so values and side-effect order are identical to
/// the unfused program. The Ast-vs-Bytecode equivalence batteries run with
/// fusion on and guard exactly that.
fn fuse_prog(prog: ExprProg) -> ExprProg {
    let instrs = prog.instrs;
    let n = instrs.len();
    let mut uses = vec![0u32; prog.nregs.max(prog.out + 1)];
    let mut def: Vec<Option<usize>> = vec![None; uses.len()];
    uses[prog.out] += 1;
    for (i, ins) in instrs.iter().enumerate() {
        for r in instr_operands(ins) {
            uses[r] += 1;
        }
        def[instr_dst(ins)] = Some(i);
    }
    let once = |r: usize| uses[r] == 1;
    let mut deleted = vec![false; n];
    let mut fused: Vec<Option<Instr>> = (0..n).map(|_| None).collect();
    // Pass 1: compare+select. Claims the compare before the load/const
    // peepholes can, matching the listed priority.
    for i in 0..n {
        let Instr::Mux { dst, cond, t, f } = &instrs[i] else {
            continue;
        };
        let Some(j) = def[*cond] else { continue };
        if !once(*cond) || deleted[j] {
            continue;
        }
        if let Instr::Bin {
            op, a, b, signed, ..
        } = &instrs[j]
        {
            if is_cmp_op(*op) {
                deleted[j] = true;
                fused[i] = Some(Instr::CmpMux {
                    dst: *dst,
                    op: *op,
                    a: *a,
                    b: *b,
                    signed: *signed,
                    t: *t,
                    f: *f,
                });
            }
        }
    }
    // Pass 2: load+bin and const+bin on the surviving plain Bins.
    for i in 0..n {
        if deleted[i] || fused[i].is_some() {
            continue;
        }
        let Instr::Bin {
            dst,
            op,
            a,
            b,
            signed,
        } = &instrs[i]
        else {
            continue;
        };
        let (dst, op, a, b, signed) = (*dst, *op, *a, *b, *signed);
        let candidate = |r: usize, deleted: &[bool], fused: &[Option<Instr>]| -> Option<usize> {
            let j = def[r]?;
            (once(r) && !deleted[j] && fused[j].is_none()).then_some(j)
        };
        let mut pick: Option<(usize, Instr)> = None;
        if let Some(j) = candidate(a, &deleted, &fused) {
            if let Instr::Load { sig, .. } = &instrs[j] {
                pick = Some((
                    j,
                    Instr::LoadBin {
                        dst,
                        sig: *sig,
                        op,
                        b,
                        swapped: false,
                        signed,
                    },
                ));
            }
        }
        if pick.is_none() {
            if let Some(j) = candidate(b, &deleted, &fused) {
                match &instrs[j] {
                    Instr::Load { sig, .. } => {
                        pick = Some((
                            j,
                            Instr::LoadBin {
                                dst,
                                sig: *sig,
                                op,
                                b: a,
                                swapped: true,
                                signed,
                            },
                        ));
                    }
                    Instr::Const { v, .. } => {
                        pick = Some((
                            j,
                            Instr::BinImm {
                                dst,
                                op,
                                a,
                                imm: v.clone(),
                                swapped: false,
                                signed,
                            },
                        ));
                    }
                    _ => {}
                }
            }
        }
        if pick.is_none() {
            if let Some(j) = candidate(a, &deleted, &fused) {
                if let Instr::Const { v, .. } = &instrs[j] {
                    pick = Some((
                        j,
                        Instr::BinImm {
                            dst,
                            op,
                            a: b,
                            imm: v.clone(),
                            swapped: true,
                            signed,
                        },
                    ));
                }
            }
        }
        if let Some((j, ins)) = pick {
            deleted[j] = true;
            fused[i] = Some(ins);
        }
    }
    let out: Vec<Instr> = instrs
        .into_vec()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !deleted[*i])
        .map(|(i, ins)| fused[i].take().unwrap_or(ins))
        .collect();
    ExprProg {
        instrs: out.into_boxed_slice(),
        out: prog.out,
        nregs: prog.nregs,
    }
}

fn is_cmp_op(op: BinaryOp) -> bool {
    use BinaryOp::*;
    matches!(op, Eq | Ne | CaseEq | CaseNe | Lt | Gt | Le | Ge)
}

fn instr_dst(ins: &Instr) -> usize {
    match ins {
        Instr::Const { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::LoadBit { dst, .. }
        | Instr::LoadSlice { dst, .. }
        | Instr::LoadWordConst { dst, .. }
        | Instr::LoadWord { dst, .. }
        | Instr::LoadBitDyn { dst, .. }
        | Instr::SliceReg { dst, .. }
        | Instr::Resize { dst, .. }
        | Instr::Un { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Mux { dst, .. }
        | Instr::Concat { dst, .. }
        | Instr::Repl { dst, .. }
        | Instr::Rand { dst }
        | Instr::Time { dst }
        | Instr::Fallback { dst, .. }
        | Instr::LoadBin { dst, .. }
        | Instr::BinImm { dst, .. }
        | Instr::CmpMux { dst, .. } => *dst,
    }
}

fn instr_operands(ins: &Instr) -> Vec<usize> {
    match ins {
        Instr::Const { .. }
        | Instr::Load { .. }
        | Instr::LoadBit { .. }
        | Instr::LoadSlice { .. }
        | Instr::LoadWordConst { .. }
        | Instr::Rand { .. }
        | Instr::Time { .. }
        | Instr::Fallback { .. } => Vec::new(),
        Instr::LoadWord { idx, .. } | Instr::LoadBitDyn { idx, .. } => vec![*idx],
        Instr::SliceReg { a, .. } | Instr::Resize { a, .. } | Instr::Un { a, .. } => vec![*a],
        Instr::Bin { a, b, .. } => vec![*a, *b],
        Instr::Mux { cond, t, f, .. } => vec![*cond, *t, *f],
        Instr::Concat { parts, .. } | Instr::Repl { parts, .. } => parts.to_vec(),
        Instr::LoadBin { b, .. } => vec![*b],
        Instr::BinImm { a, .. } => vec![*a],
        Instr::CmpMux { a, b, t, f, .. } => vec![*a, *b, *t, *f],
    }
}

struct Cx<'a> {
    probe: &'a Simulator,
    nregs: usize,
}

impl Cx<'_> {
    fn prog(&mut self, e: &Expr, ctx: usize) -> ExprProg {
        let mut c = ExprCompiler {
            probe: self.probe,
            instrs: Vec::new(),
            next: 0,
        };
        let (out, _) = c.compile(e, ctx);
        self.nregs = self.nregs.max(c.next);
        let prog = ExprProg {
            instrs: c.instrs.into_boxed_slice(),
            out,
            nregs: c.next,
        };
        if fusion_enabled() {
            fuse_prog(prog)
        } else {
            prog
        }
    }

    fn design(&self) -> &Design {
        &self.probe.design
    }
}

fn compile_cont(cx: &mut Cx<'_>, lhs: &Expr, rhs: &Expr) -> CCont {
    // Mirrors the interpreter's continuous path: rhs is evaluated at the
    // lvalue's natural width, so that width must be static.
    let Some(w) = static_nat_width(cx.probe, lhs) else {
        return CCont::Ast;
    };
    let Some(target) = compile_target(cx, lhs) else {
        return CCont::Ast;
    };
    CCont::Prog {
        rhs: cx.prog(rhs, w),
        target,
    }
}

fn compile_stmt(cx: &mut Cx<'_>, s: &Stmt) -> Arc<CStmt> {
    match try_compile_stmt(cx, s) {
        Some(c) => Arc::new(c),
        None => Arc::new(CStmt::Ast(Arc::new(s.clone()))),
    }
}

/// Returns `None` when the statement cannot be mirrored statically; the
/// caller wraps it in [`CStmt::Ast`].
fn try_compile_stmt(cx: &mut Cx<'_>, s: &Stmt) -> Option<CStmt> {
    Some(match s {
        Stmt::Block { stmts, .. } => {
            CStmt::Block(stmts.iter().map(|st| compile_stmt(cx, st)).collect())
        }
        Stmt::Null { .. } => CStmt::Null,
        Stmt::Assign {
            lhs,
            rhs,
            kind,
            delay,
            ..
        } => {
            // The interpreter evaluates rhs at the lvalue's natural width
            // (dynamic-width lvalues would force a runtime width; defer).
            let w = static_nat_width(cx.probe, lhs)?;
            let target = compile_target(cx, lhs)?;
            let signed = cx.probe.is_signed_expr(rhs, None);
            CStmt::Assign {
                rhs: cx.prog(rhs, w),
                target,
                signed,
                kind: *kind,
                delay: delay.as_ref().map(|d| cx.prog(d, 0)),
            }
        }
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
            ..
        } => CStmt::If {
            cond: cx.prog(cond, 0),
            then_s: compile_stmt(cx, then_stmt),
            else_s: else_stmt.as_ref().map(|e| compile_stmt(cx, e)),
        },
        Stmt::Case {
            kind, expr, arms, ..
        } => {
            // Labels are evaluated at the selector's natural width.
            let selw = static_nat_width(cx.probe, expr)?;
            let (wild_z, wild_x) = match kind {
                CaseKind::Exact => (false, false),
                CaseKind::Z => (true, false),
                CaseKind::X => (false, true),
            };
            CStmt::Case {
                wild_z,
                wild_x,
                sel: cx.prog(expr, 0),
                arms: arms
                    .iter()
                    .map(|arm| CCaseArm {
                        labels: arm.labels.iter().map(|l| cx.prog(l, selw)).collect(),
                        body: compile_stmt(cx, &arm.body),
                    })
                    .collect(),
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => CStmt::For {
            init: compile_stmt(cx, init),
            cond: cx.prog(cond, 0),
            step: compile_stmt(cx, step),
            body: compile_stmt(cx, body),
        },
        Stmt::While { cond, body, .. } => CStmt::While {
            cond: cx.prog(cond, 0),
            body: compile_stmt(cx, body),
        },
        Stmt::Repeat { count, body, .. } => CStmt::Repeat {
            count: cx.prog(count, 0),
            body: compile_stmt(cx, body),
        },
        Stmt::Forever { body, .. } => CStmt::Forever {
            body: compile_stmt(cx, body),
        },
        Stmt::Delay { amount, stmt, .. } => CStmt::Delay {
            amount: cx.prog(amount, 0),
            stmt: stmt.as_ref().map(|st| compile_stmt(cx, st)),
        },
        Stmt::Event {
            sensitivity, stmt, ..
        } => CStmt::Event {
            watches: compile_sens(sensitivity, cx.design()).into(),
            stmt: stmt.as_ref().map(|st| compile_stmt(cx, st)),
        },
        Stmt::Wait { cond, stmt, .. } => {
            // Level watches depend only on which identifiers the condition
            // reads, so they are precomputed here instead of per suspend.
            let watches: Arc<[SensWatch]> = crate::exec::level_watches(cond, cx.design()).into();
            CStmt::Wait {
                cond: Arc::new(cx.prog(cond, 0)),
                watches,
                stmt: stmt.as_ref().map(|st| compile_stmt(cx, st)),
            }
        }
        Stmt::SysCall { name, args, .. } => CStmt::SysCall {
            name: name.clone(),
            args: args.clone(),
        },
    })
}

/// Compiles an lvalue; `None` defers the whole enclosing assignment.
fn compile_target(cx: &mut Cx<'_>, lhs: &Expr) -> Option<CTarget> {
    Some(match lhs {
        Expr::Ident(i) => match cx.design().index.get(&i.name) {
            Some(id) => CTarget::Full(*id),
            None => CTarget::Void,
        },
        Expr::Index { base, index, .. } => {
            let Some(name) = base.as_ident() else {
                return Some(CTarget::Void);
            };
            let Some((id, def)) = cx.design().signal(name) else {
                return Some(CTarget::Void);
            };
            let is_mem = def.mem.is_some();
            if is_const_expr(index) {
                let Some(v) = cx.probe.eval(index, 0, None).to_u64_ext() else {
                    return Some(CTarget::Void);
                };
                let v = v as i64;
                if is_mem {
                    match def.word_offset(v) {
                        Some(o) => CTarget::WordConst(id, o),
                        None => CTarget::Void,
                    }
                } else {
                    match def.bit_offset(v) {
                        Some(o) => CTarget::BitsConst(id, o, 1),
                        None => CTarget::Void,
                    }
                }
            } else {
                let idx = cx.prog(index, 0);
                if is_mem {
                    CTarget::WordDyn { sig: id, idx }
                } else {
                    CTarget::BitDyn { sig: id, idx }
                }
            }
        }
        Expr::PartSelect { base, msb, lsb, .. } => {
            let Some(name) = base.as_ident() else {
                return Some(CTarget::Void);
            };
            let Some((id, def)) = cx.design().signal(name) else {
                return Some(CTarget::Void);
            };
            // Dynamic bounds would be evaluated twice by the interpreter
            // (once for the natural width, once for the target); only the
            // constant shape can be mirrored from a single compile.
            if !(is_const_expr(msb) && is_const_expr(lsb)) {
                return None;
            }
            let m = cx.probe.eval(msb, 0, None).to_u64_ext();
            let l = cx.probe.eval(lsb, 0, None).to_u64_ext();
            let (Some(m), Some(l)) = (m, l) else {
                return Some(CTarget::Void);
            };
            let (m, l) = (m as i64, l as i64);
            let width = m.abs_diff(l) as usize + 1;
            match def.bit_offset(if def.msb >= def.lsb { l } else { m }) {
                Some(lo) => CTarget::BitsConst(id, lo, width),
                None => CTarget::Void,
            }
        }
        Expr::IndexedPart {
            base,
            start,
            width,
            ascending,
            ..
        } => {
            let Some(name) = base.as_ident() else {
                return Some(CTarget::Void);
            };
            let Some((id, def)) = cx.design().signal(name) else {
                return Some(CTarget::Void);
            };
            if !(is_const_expr(start) && is_const_expr(width)) {
                return None;
            }
            let s = cx.probe.eval(start, 0, None).to_u64_ext();
            let w = cx.probe.eval(width, 0, None).to_u64_ext();
            let (Some(s), Some(w)) = (s, w) else {
                return Some(CTarget::Void);
            };
            let (s, w) = (s as i64, w.max(1) as usize);
            let (msb, lsb) = if *ascending {
                (s + w as i64 - 1, s)
            } else {
                (s, s - w as i64 + 1)
            };
            match def.bit_offset(if def.msb >= def.lsb { lsb } else { msb }) {
                Some(lo) => CTarget::BitsConst(id, lo, w),
                None => CTarget::Void,
            }
        }
        Expr::Concat(parts, _) => CTarget::Pack(
            parts
                .iter()
                .map(|p| compile_target(cx, p))
                .collect::<Option<_>>()?,
        ),
        _ => CTarget::Void,
    })
}

/// Whether the subtree contains any function/system call. Calls can be
/// side-effecting (`$random`, user functions that call it), so both-branch
/// evaluation of a ternary must not touch them.
fn contains_call(e: &Expr) -> bool {
    use dda_verilog::visit::{walk_expr, Visitor};
    struct C(bool);
    impl Visitor for C {
        fn visit_expr(&mut self, e: &Expr) {
            if matches!(e, Expr::Call { .. }) {
                self.0 = true;
            }
            walk_expr(self, e);
        }
    }
    let mut c = C(false);
    c.visit_expr(e);
    c.0
}

/// Static mirror of `Simulator::natural_width` with `frame = None`: returns
/// `None` for the arms whose width depends on runtime signal values
/// (non-constant select bounds, replication counts, function ranges).
pub(crate) fn static_nat_width(probe: &Simulator, e: &Expr) -> Option<usize> {
    let const_u64 = |b: &Expr| -> Option<Option<u64>> {
        if is_const_expr(b) {
            Some(probe.eval(b, 0, None).to_u64_ext())
        } else {
            None
        }
    };
    Some(match e {
        Expr::Number(n, _) => n.width.map(|w| w as usize).unwrap_or(32),
        Expr::Str(s, _) => (s.len() * 8).max(1),
        Expr::Ident(i) => probe
            .design
            .signal(&i.name)
            .map(|(_, s)| s.width)
            .unwrap_or(1),
        Expr::Unary { op, expr, .. } => match op {
            UnaryOp::LogicNot
            | UnaryOp::RedAnd
            | UnaryOp::RedOr
            | UnaryOp::RedXor
            | UnaryOp::RedNand
            | UnaryOp::RedNor
            | UnaryOp::RedXnor => 1,
            _ => static_nat_width(probe, expr)?,
        },
        Expr::Binary { op, lhs, rhs, .. } => match op {
            BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge
            | BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::CaseEq
            | BinaryOp::CaseNe
            | BinaryOp::LogicAnd
            | BinaryOp::LogicOr => 1,
            BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr | BinaryOp::Pow => {
                static_nat_width(probe, lhs)?
            }
            _ => static_nat_width(probe, lhs)?.max(static_nat_width(probe, rhs)?),
        },
        Expr::Ternary {
            then_expr,
            else_expr,
            ..
        } => static_nat_width(probe, then_expr)?.max(static_nat_width(probe, else_expr)?),
        Expr::Concat(parts, _) => {
            let mut sum = 0usize;
            for p in parts {
                sum += static_nat_width(probe, p)?;
            }
            sum
        }
        Expr::Repeat { count, exprs, .. } => {
            let c = const_u64(count)?.unwrap_or(0).min(4096) as usize;
            let mut inner = 0usize;
            for p in exprs {
                inner += static_nat_width(probe, p)?;
            }
            (c * inner).max(1)
        }
        Expr::Index { base, .. } => {
            if let Some(name) = base.as_ident() {
                if let Some((_, s)) = probe.design.signal(name) {
                    if s.mem.is_some() {
                        return Some(s.width);
                    }
                }
            }
            1
        }
        Expr::PartSelect { msb, lsb, .. } => {
            let m = const_u64(msb)?.unwrap_or(0) as i64;
            let l = const_u64(lsb)?.unwrap_or(0) as i64;
            (m.abs_diff(l) as usize) + 1
        }
        Expr::IndexedPart { width, .. } => const_u64(width)?.unwrap_or(1) as usize,
        Expr::Call { name, args, .. } => match name.name.as_str() {
            "$time" | "$stime" | "$realtime" => 64,
            "$random" | "$urandom" => 32,
            "$signed" | "$unsigned" => match args.first() {
                Some(a) => static_nat_width(probe, a)?,
                None => 1,
            },
            "$clog2" => 32,
            _ => match probe.design.functions.get(&name.name) {
                Some(f) => match &f.range {
                    Some(r) => {
                        let m = const_u64(&r.msb)??;
                        let l = const_u64(&r.lsb)??;
                        (m as i64).abs_diff(l as i64) as usize + 1
                    }
                    None => 1,
                },
                None => 1,
            },
        },
    })
}

struct ExprCompiler<'a> {
    probe: &'a Simulator,
    instrs: Vec<Instr>,
    next: usize,
}

impl ExprCompiler<'_> {
    fn fresh(&mut self) -> usize {
        let r = self.next;
        self.next += 1;
        r
    }

    /// Emits a constant register; the tracked width is exact.
    fn constant(&mut self, v: LogicVec) -> (usize, Option<usize>) {
        let v = PackedVec::from_logic(&v);
        let w = v.width();
        let dst = self.fresh();
        self.instrs.push(Instr::Const { dst, v });
        (dst, Some(w))
    }

    fn fallback(&mut self, e: &Expr, ctx: usize) -> (usize, Option<usize>) {
        let dst = self.fresh();
        self.instrs.push(Instr::Fallback {
            dst,
            expr: Arc::new(e.clone()),
            ctx,
        });
        (dst, None)
    }

    /// Forces `(reg, width)` to `width`/`signed`, skipping the resize when
    /// the register's value statically already has that width (resizing to
    /// the current width is the identity).
    fn coerce(&mut self, r: (usize, Option<usize>), width: usize, signed: bool) -> usize {
        if r.1 == Some(width) {
            return r.0;
        }
        let dst = self.fresh();
        self.instrs.push(Instr::Resize {
            dst,
            a: r.0,
            width,
            signed,
        });
        dst
    }

    fn nat(&self, e: &Expr) -> Option<usize> {
        static_nat_width(self.probe, e)
    }

    fn signed(&self, e: &Expr) -> bool {
        self.probe.is_signed_expr(e, None)
    }

    /// Compiles `e` at context width `ctx`, returning the result register
    /// and its statically-known width (`None` when only runtime knows).
    fn compile(&mut self, e: &Expr, ctx: usize) -> (usize, Option<usize>) {
        // Closed constants fold completely: no identifiers and no calls
        // means the probe's evaluation is the interpreter's, verbatim.
        if is_const_expr(e) {
            let v = self.probe.eval(e, ctx, None);
            return self.constant(v);
        }
        match e {
            Expr::Number(..) | Expr::Str(..) => unreachable!("literals are const"),
            Expr::Ident(i) => match self.probe.design.signal(&i.name) {
                Some((id, def)) => {
                    let dst = self.fresh();
                    self.instrs.push(Instr::Load { dst, sig: id });
                    let w = def.width.max(ctx);
                    let signed = self.signed(e);
                    let r = self.coerce((dst, Some(def.width)), w, signed);
                    (r, Some(w))
                }
                None => self.constant(LogicVec::xs(ctx.max(1))),
            },
            Expr::Unary { op, expr, .. } => {
                use UnaryOp::*;
                match op {
                    Plus => self.compile(expr, ctx),
                    Neg | BitNot => {
                        let (a, w) = self.compile(expr, ctx);
                        let dst = self.fresh();
                        self.instrs.push(Instr::Un { dst, op: *op, a });
                        (dst, w)
                    }
                    LogicNot | RedAnd | RedOr | RedXor | RedNand | RedNor | RedXnor => {
                        let (a, _) = self.compile(expr, 0);
                        let dst = self.fresh();
                        self.instrs.push(Instr::Un { dst, op: *op, a });
                        (dst, Some(1))
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                use BinaryOp::*;
                match op {
                    Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | BitXnor => {
                        let (Some(wl), Some(wr)) = (self.nat(lhs), self.nat(rhs)) else {
                            return self.fallback(e, ctx);
                        };
                        let w = ctx.max(wl).max(wr);
                        let sa = self.signed(lhs);
                        let sb = self.signed(rhs);
                        let ra = self.compile(lhs, w);
                        let a = self.coerce(ra, w, sa);
                        let rb = self.compile(rhs, w);
                        let b = self.coerce(rb, w, sb);
                        let dst = self.fresh();
                        self.instrs.push(Instr::Bin {
                            dst,
                            op: *op,
                            a,
                            b,
                            signed: false,
                        });
                        (dst, Some(w))
                    }
                    Pow => {
                        let (a, wa) = self.compile(lhs, ctx);
                        let (b, _) = self.compile(rhs, 0);
                        let dst = self.fresh();
                        self.instrs.push(Instr::Bin {
                            dst,
                            op: *op,
                            a,
                            b,
                            signed: false,
                        });
                        (dst, wa)
                    }
                    Shl | Shr | AShr => {
                        let signed = self.signed(lhs);
                        let (a, wa) = self.compile(lhs, ctx);
                        let (b, _) = self.compile(rhs, 0);
                        let dst = self.fresh();
                        self.instrs.push(Instr::Bin {
                            dst,
                            op: *op,
                            a,
                            b,
                            signed,
                        });
                        (dst, wa)
                    }
                    Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => {
                        let (Some(wl), Some(wr)) = (self.nat(lhs), self.nat(rhs)) else {
                            return self.fallback(e, ctx);
                        };
                        let w = wl.max(wr);
                        let signed = self.signed(lhs) && self.signed(rhs);
                        let ra = self.compile(lhs, w);
                        let a = self.coerce(ra, w, signed);
                        let rb = self.compile(rhs, w);
                        let b = self.coerce(rb, w, signed);
                        let dst = self.fresh();
                        self.instrs.push(Instr::Bin {
                            dst,
                            op: *op,
                            a,
                            b,
                            signed,
                        });
                        (dst, Some(1))
                    }
                    LogicAnd | LogicOr => {
                        let (a, _) = self.compile(lhs, 0);
                        let (b, _) = self.compile(rhs, 0);
                        let dst = self.fresh();
                        self.instrs.push(Instr::Bin {
                            dst,
                            op: *op,
                            a,
                            b,
                            signed: false,
                        });
                        (dst, Some(1))
                    }
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
                ..
            } => {
                // The interpreter evaluates only the taken branch; a Mux
                // evaluates both. That is observable whenever a call hides
                // anywhere inside (the `$random` stream, function loops).
                if contains_call(e) {
                    return self.fallback(e, ctx);
                }
                let (c, _) = self.compile(cond, 0);
                let (t, wt) = self.compile(then_expr, ctx);
                let (f, wf) = self.compile(else_expr, ctx);
                let dst = self.fresh();
                self.instrs.push(Instr::Mux { dst, cond: c, t, f });
                (dst, if wt == wf { wt } else { None })
            }
            Expr::Concat(parts, _) => {
                let mut regs = Vec::with_capacity(parts.len());
                let mut sum = Some(0usize);
                for p in parts {
                    let (r, w) = self.compile(p, 0);
                    regs.push(r);
                    sum = match (sum, w) {
                        (Some(s), Some(w)) => Some(s + w),
                        _ => None,
                    };
                }
                let dst = self.fresh();
                self.instrs.push(Instr::Concat {
                    dst,
                    parts: regs.into_boxed_slice(),
                });
                (dst, sum.map(|s| s.max(1)))
            }
            Expr::Repeat { count, exprs, .. } => {
                if !is_const_expr(count) {
                    return self.fallback(e, ctx);
                }
                let c = self
                    .probe
                    .eval(count, 0, None)
                    .to_u64_ext()
                    .unwrap_or(0)
                    .min(4096) as usize;
                let mut regs = Vec::with_capacity(exprs.len());
                let mut inner = Some(0usize);
                for p in exprs {
                    let (r, w) = self.compile(p, 0);
                    regs.push(r);
                    inner = match (inner, w) {
                        (Some(s), Some(w)) => Some(s + w),
                        _ => None,
                    };
                }
                let dst = self.fresh();
                self.instrs.push(Instr::Repl {
                    dst,
                    parts: regs.into_boxed_slice(),
                    count: c,
                });
                (dst, inner.map(|s| (c * s).max(1)))
            }
            Expr::Index { base, index, .. } => {
                let Some(name) = base.as_ident() else {
                    // Bit select on a computed value — rare; defer.
                    return self.fallback(e, ctx);
                };
                let Some((id, def)) = self.probe.design.signal(name) else {
                    // Unknown identifier reads as x (no frames at process
                    // level, so no function-local path to mirror).
                    return self.constant(LogicVec::xs(1));
                };
                if def.mem.is_some() {
                    let mem_w = def.width;
                    if is_const_expr(index) {
                        match self
                            .probe
                            .eval(index, 0, None)
                            .to_u64_ext()
                            .and_then(|v| def.word_offset(v as i64))
                        {
                            Some(off) => {
                                let dst = self.fresh();
                                self.instrs.push(Instr::LoadWordConst { dst, sig: id, off });
                                (dst, Some(mem_w))
                            }
                            None => self.constant(LogicVec::xs(mem_w)),
                        }
                    } else {
                        let (idx, _) = self.compile(index, 0);
                        let dst = self.fresh();
                        self.instrs.push(Instr::LoadWord { dst, sig: id, idx });
                        (dst, Some(mem_w))
                    }
                } else if is_const_expr(index) {
                    match self
                        .probe
                        .eval(index, 0, None)
                        .to_u64_ext()
                        .and_then(|v| def.bit_offset(v as i64))
                    {
                        Some(off) => {
                            let dst = self.fresh();
                            self.instrs.push(Instr::LoadBit { dst, sig: id, off });
                            (dst, Some(1))
                        }
                        None => self.constant(LogicVec::xs(1)),
                    }
                } else {
                    let (idx, _) = self.compile(index, 0);
                    let dst = self.fresh();
                    self.instrs.push(Instr::LoadBitDyn { dst, sig: id, idx });
                    (dst, Some(1))
                }
            }
            Expr::PartSelect { base, msb, lsb, .. } => {
                if !(is_const_expr(msb) && is_const_expr(lsb)) {
                    return self.fallback(e, ctx);
                }
                let m = self.probe.eval(msb, 0, None).to_u64_ext();
                let l = self.probe.eval(lsb, 0, None).to_u64_ext();
                let (Some(m), Some(l)) = (m, l) else {
                    return self.constant(LogicVec::xs(1));
                };
                let (m, l) = (m as i64, l as i64);
                let width = m.abs_diff(l) as usize + 1;
                if let Some(name) = base.as_ident() {
                    let Some((id, def)) = self.probe.design.signal(name) else {
                        // Unknown name: interpreter reads x then slices.
                        return self.fallback(e, ctx);
                    };
                    return match def.bit_offset(if def.msb >= def.lsb { l } else { m }) {
                        Some(lo) => {
                            let dst = self.fresh();
                            self.instrs.push(Instr::LoadSlice {
                                dst,
                                sig: id,
                                lo,
                                width,
                            });
                            (dst, Some(width))
                        }
                        None => self.constant(LogicVec::xs(width)),
                    };
                }
                let (a, _) = self.compile(base, 0);
                let dst = self.fresh();
                self.instrs.push(Instr::SliceReg {
                    dst,
                    a,
                    lo: l.min(m) as usize,
                    width,
                });
                (dst, Some(width))
            }
            Expr::IndexedPart {
                base,
                start,
                width,
                ascending,
                ..
            } => {
                if !(is_const_expr(start) && is_const_expr(width)) {
                    return self.fallback(e, ctx);
                }
                let s = self.probe.eval(start, 0, None).to_u64_ext();
                let w = self.probe.eval(width, 0, None).to_u64_ext();
                let (Some(s), Some(w)) = (s, w) else {
                    return self.constant(LogicVec::xs(1));
                };
                let (s, w) = (s as i64, w.max(1) as usize);
                let (msb, lsb) = if *ascending {
                    (s + w as i64 - 1, s)
                } else {
                    (s, s - w as i64 + 1)
                };
                if let Some(name) = base.as_ident() {
                    let Some((id, def)) = self.probe.design.signal(name) else {
                        return self.fallback(e, ctx);
                    };
                    return match def.bit_offset(if def.msb >= def.lsb { lsb } else { msb }) {
                        Some(lo) => {
                            let dst = self.fresh();
                            self.instrs.push(Instr::LoadSlice {
                                dst,
                                sig: id,
                                lo,
                                width: w,
                            });
                            (dst, Some(w))
                        }
                        None => self.constant(LogicVec::xs(w)),
                    };
                }
                let (a, _) = self.compile(base, 0);
                let dst = self.fresh();
                self.instrs.push(Instr::SliceReg {
                    dst,
                    a,
                    lo: lsb.max(0) as usize,
                    width: w,
                });
                (dst, Some(w))
            }
            Expr::Call { name, args, .. } => match name.name.as_str() {
                "$time" | "$stime" | "$realtime" => {
                    let dst = self.fresh();
                    self.instrs.push(Instr::Time { dst });
                    (dst, Some(64))
                }
                "$random" | "$urandom" => {
                    let dst = self.fresh();
                    self.instrs.push(Instr::Rand { dst });
                    (dst, Some(32))
                }
                "$signed" | "$unsigned" => match args.first() {
                    Some(a) => self.compile(a, ctx),
                    None => self.constant(LogicVec::xs(1)),
                },
                "$clog2" => match args.first() {
                    Some(a) if is_const_expr(a) => {
                        let v = self.probe.eval(a, 0, None).to_u64_ext().unwrap_or(0);
                        let r = (64 - (v.max(1) - 1).leading_zeros() as u64) as u128;
                        self.constant(crate::ops::from_u128(r, 32))
                    }
                    _ => self.fallback(e, ctx),
                },
                // User functions (and anything else) go through the
                // interpreter: frames, recursion limits, loop budgets.
                _ => self.fallback(e, ctx),
            },
        }
    }
}

impl fmt::Display for ExprProg {
    /// Disassembly listing, one instruction per line (`rN <- op ...`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ins in self.instrs.iter() {
            match ins {
                Instr::Const { dst, v } => writeln!(f, "r{dst} <- const {v}")?,
                Instr::Load { dst, sig } => writeln!(f, "r{dst} <- load s{sig}")?,
                Instr::LoadBit { dst, sig, off } => writeln!(f, "r{dst} <- loadbit s{sig}[{off}]")?,
                Instr::LoadSlice {
                    dst,
                    sig,
                    lo,
                    width,
                } => writeln!(f, "r{dst} <- loadslice s{sig}[{lo}+:{width}]")?,
                Instr::LoadWordConst { dst, sig, off } => {
                    writeln!(f, "r{dst} <- loadword s{sig}[{off}]")?
                }
                Instr::LoadWord { dst, sig, idx } => {
                    writeln!(f, "r{dst} <- loadword s{sig}[r{idx}]")?
                }
                Instr::LoadBitDyn { dst, sig, idx } => {
                    writeln!(f, "r{dst} <- loadbit s{sig}[r{idx}]")?
                }
                Instr::SliceReg { dst, a, lo, width } => {
                    writeln!(f, "r{dst} <- slice r{a}[{lo}+:{width}]")?
                }
                Instr::Resize {
                    dst,
                    a,
                    width,
                    signed,
                } => writeln!(
                    f,
                    "r{dst} <- resize r{a} to {width}{}",
                    if *signed { " signed" } else { "" }
                )?,
                Instr::Un { dst, op, a } => writeln!(f, "r{dst} <- {} r{a}", op.as_str())?,
                Instr::Bin {
                    dst,
                    op,
                    a,
                    b,
                    signed,
                } => writeln!(
                    f,
                    "r{dst} <- r{a} {} r{b}{}",
                    op.as_str(),
                    if *signed { " signed" } else { "" }
                )?,
                Instr::Mux {
                    dst,
                    cond,
                    t,
                    f: fr,
                } => writeln!(f, "r{dst} <- mux r{cond} ? r{t} : r{fr}")?,
                Instr::Concat { dst, parts } => {
                    let ps: Vec<String> = parts.iter().map(|r| format!("r{r}")).collect();
                    writeln!(f, "r{dst} <- concat {{{}}}", ps.join(", "))?
                }
                Instr::Repl { dst, parts, count } => {
                    let ps: Vec<String> = parts.iter().map(|r| format!("r{r}")).collect();
                    writeln!(f, "r{dst} <- repl {count}x{{{}}}", ps.join(", "))?
                }
                Instr::Rand { dst } => writeln!(f, "r{dst} <- $random")?,
                Instr::Time { dst } => writeln!(f, "r{dst} <- $time")?,
                Instr::Fallback { dst, expr, ctx } => {
                    writeln!(f, "r{dst} <- interp[{ctx}] {}", print_expr(expr))?
                }
                Instr::LoadBin {
                    dst,
                    sig,
                    op,
                    b,
                    swapped,
                    signed,
                } => {
                    let (lhs, rhs) = if *swapped {
                        (format!("r{b}"), format!("s{sig}"))
                    } else {
                        (format!("s{sig}"), format!("r{b}"))
                    };
                    writeln!(
                        f,
                        "r{dst} <- loadbin {lhs} {} {rhs}{}",
                        op.as_str(),
                        if *signed { " signed" } else { "" }
                    )?
                }
                Instr::BinImm {
                    dst,
                    op,
                    a,
                    imm,
                    swapped,
                    signed,
                } => {
                    let (lhs, rhs) = if *swapped {
                        (format!("{imm}"), format!("r{a}"))
                    } else {
                        (format!("r{a}"), format!("{imm}"))
                    };
                    writeln!(
                        f,
                        "r{dst} <- binimm {lhs} {} {rhs}{}",
                        op.as_str(),
                        if *signed { " signed" } else { "" }
                    )?
                }
                Instr::CmpMux {
                    dst,
                    op,
                    a,
                    b,
                    signed,
                    t,
                    f: fr,
                } => writeln!(
                    f,
                    "r{dst} <- cmpmux (r{a} {} r{b}{}) ? r{t} : r{fr}",
                    op.as_str(),
                    if *signed { " signed" } else { "" }
                )?,
            }
        }
        write!(f, "ret r{}", self.out)
    }
}
