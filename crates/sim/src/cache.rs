//! Memoized parse + elaboration keyed by source content.
//!
//! Evaluation sweeps rerun the same `(source, top)` pair many times — the
//! pass@k protocols simulate each candidate against the same testbench `k`
//! times per level, and repair loops re-score unchanged candidates. The
//! frontend (lex → parse → elaborate → bytecode compile) is pure in the
//! source text, so its result can be shared: [`shared_design`] returns a
//! cached [`Design`] clone (cheap — statement bodies and bytecode sit
//! behind `Rc`) and only runs the frontend on a genuine miss.
//!
//! The cache is **thread-local**: [`Design`] holds `Rc` internally and is
//! not `Send`, and the parallel run-engine shards work per thread anyway,
//! so each worker warms its own cache. Entries verify the full key on hit
//! (the hash is only a bucket index), so collisions cost a recompute,
//! never a wrong design.

use crate::elab::{elaborate, Design, ElabError};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// A frontend failure: the stage that rejected the source plus its message.
/// Cached alongside successes so a sweep does not re-parse a known-bad
/// candidate `k` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// The source failed to parse.
    Parse(String),
    /// The design failed to elaborate.
    Elab(ElabError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(m) => write!(f, "{m}"),
            FrontendError::Elab(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// Hit/miss counts for this thread's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the frontend.
    pub misses: u64,
}

/// Bound on cached designs per thread. Sweeps cycle through a bounded
/// problem set (tens of testbenches × a handful of candidates in flight),
/// so a small cap holds the working set; on overflow the map is cleared
/// wholesale — an O(1)-amortized policy that cannot be gamed into
/// pathological eviction scans.
const CACHE_CAP: usize = 64;

struct Entry {
    src: String,
    top: String,
    value: Result<Design, FrontendError>,
}

thread_local! {
    static CACHE: RefCell<HashMap<u64, Vec<Entry>>> = RefCell::new(HashMap::new());
    static HITS: Cell<u64> = const { Cell::new(0) };
    static MISSES: Cell<u64> = const { Cell::new(0) };
}

fn fnv64(src: &str, top: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in src.bytes().chain([0u8]).chain(top.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Parses and elaborates `(src, top)`, memoizing the result for this
/// thread. Hits return a clone of the cached [`Design`]: signal tables are
/// copied, but statement bodies and the compiled bytecode are `Rc`-shared,
/// so repeated sweeps skip re-parsing, re-elaboration *and* re-compilation.
///
/// # Errors
///
/// Returns the (equally memoized) [`FrontendError`] from whichever stage
/// rejected the source.
pub fn shared_design(src: &str, top: &str) -> Result<Design, FrontendError> {
    let key = fnv64(src, top);
    let cached = CACHE.with(|c| {
        c.borrow().get(&key).and_then(|bucket| {
            bucket
                .iter()
                .find(|e| e.src == src && e.top == top)
                .map(|e| e.value.clone())
        })
    });
    if let Some(v) = cached {
        HITS.with(|h| h.set(h.get() + 1));
        dda_obs::count("sim.cache.hit", 1);
        return v;
    }
    MISSES.with(|m| m.set(m.get() + 1));
    dda_obs::count("sim.cache.miss", 1);
    let value = compute(src, top);
    CACHE.with(|c| {
        let mut map = c.borrow_mut();
        if map.values().map(Vec::len).sum::<usize>() >= CACHE_CAP {
            map.clear();
        }
        map.entry(key).or_default().push(Entry {
            src: src.to_string(),
            top: top.to_string(),
            value: value.clone(),
        });
    });
    value
}

fn compute(src: &str, top: &str) -> Result<Design, FrontendError> {
    let sf = dda_verilog::parse(src).map_err(|e| FrontendError::Parse(e.to_string()))?;
    let design = elaborate(&sf, top).map_err(FrontendError::Elab)?;
    // Pre-compile the bytecode so every cached clone shares one program
    // (the OnceCell value survives cloning).
    let _ = design.compiled();
    Ok(design)
}

/// This thread's cumulative hit/miss counters.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.with(Cell::get),
        misses: MISSES.with(Cell::get),
    }
}

/// Empties this thread's cache (counters are kept). Tests use this to get
/// deterministic miss-then-hit sequences.
pub fn clear() {
    CACHE.with(|c| c.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "module m;\nreg [7:0] a;\ninitial a = 8'hA5;\nendmodule\n";

    #[test]
    fn hit_after_miss_shares_bytecode() {
        clear();
        let before = stats();
        let d1 = shared_design(SRC, "m").unwrap();
        let d2 = shared_design(SRC, "m").unwrap();
        let after = stats();
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.hits - before.hits, 1);
        // Both clones share one compiled program.
        assert!(std::rc::Rc::ptr_eq(&d1.compiled(), &d2.compiled()));
    }

    #[test]
    fn errors_are_memoized_too() {
        clear();
        let before = stats();
        let e1 = shared_design("module broken(; endmodule", "broken").unwrap_err();
        let e2 = shared_design("module broken(; endmodule", "broken").unwrap_err();
        assert!(matches!(e1, FrontendError::Parse(_)));
        assert_eq!(e1, e2);
        let missing = shared_design(SRC, "nope").unwrap_err();
        assert!(matches!(missing, FrontendError::Elab(_)));
        let after = stats();
        assert_eq!(after.misses - before.misses, 2);
        assert_eq!(after.hits - before.hits, 1);
    }

    #[test]
    fn distinct_tops_do_not_collide() {
        clear();
        let two = "module a;\nendmodule\nmodule b;\nreg r;\nendmodule\n";
        let da = shared_design(two, "a").unwrap();
        let db = shared_design(two, "b").unwrap();
        assert_ne!(da.signals.len(), db.signals.len());
    }

    #[test]
    fn cap_clears_rather_than_grows() {
        clear();
        for i in 0..(CACHE_CAP * 2) {
            let src = format!("module m;\nreg [{}:0] r;\nendmodule\n", i % 97);
            let _ = shared_design(&src, "m");
        }
        let total: usize = CACHE.with(|c| c.borrow().values().map(Vec::len).sum());
        assert!(total <= CACHE_CAP, "{total}");
    }
}
