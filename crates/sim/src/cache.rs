//! Two-tier memoized parse + elaboration keyed by source content.
//!
//! Evaluation sweeps and the resident `chipdda serve` daemon rerun the
//! same `(source, top)` pair many times — the pass@k protocols simulate
//! each candidate against the same testbench `k` times per level, repair
//! loops re-score unchanged candidates, and concurrent service requests
//! often target the same design. The frontend (lex → parse → elaborate →
//! bytecode compile) is pure in the source text, so its result can be
//! shared: [`shared_design`] returns a cached [`Design`] clone (cheap —
//! statement bodies and bytecode sit behind `Arc`) and only runs the
//! frontend on a genuine miss.
//!
//! The cache has two tiers:
//!
//! * a **process-global sharded cache** ([`SHARDS`] mutex shards indexed
//!   by design hash, each size-bounded with LRU eviction). Since the
//!   `Arc` conversion made [`Design`] `Send + Sync`, every thread — and
//!   every concurrent service request — shares one compiled
//!   `CompiledDesign` per distinct source. A miss computes the frontend
//!   *under its shard lock*, so a thundering herd of requests for the
//!   same new design runs the frontend exactly once (the stragglers block
//!   briefly, then hit); designs hashing to the other shards are
//!   unaffected.
//! * a small **per-thread L1** in front of it, so steady-state hits on a
//!   worker's hot designs skip the shard mutex entirely. The L1 is
//!   size-capped with LRU eviction (it holds clones whose heavy payloads
//!   are `Arc`-shared with the global tier, so its footprint is the
//!   signal tables only).
//!
//! Entries verify the full key on hit (the hash is only a bucket index),
//! so collisions cost a recompute, never a wrong design. Hit/miss/evict
//! counters are mirrored to `dda-obs` (`sim.cache.hit.l1`,
//! `sim.cache.hit.shared`, `sim.cache.miss`, `sim.cache.evict`).

use crate::elab::{elaborate, Design, ElabError};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A frontend failure: the stage that rejected the source plus its message.
/// Cached alongside successes so a sweep does not re-parse a known-bad
/// candidate `k` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// The source failed to parse.
    Parse(String),
    /// The design failed to elaborate.
    Elab(ElabError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(m) => write!(f, "{m}"),
            FrontendError::Elab(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// Process-wide cumulative counters for both cache tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from either tier (`l1_hits + shared_hits`).
    pub hits: u64,
    /// Lookups that ran the frontend.
    pub misses: u64,
    /// Hits served by the per-thread L1 (no lock taken).
    pub l1_hits: u64,
    /// Hits served by the global sharded tier.
    pub shared_hits: u64,
    /// Entries evicted from the global tier to stay within its bound.
    pub evictions: u64,
}

/// Number of mutex shards in the global tier. Sixteen keeps lock
/// contention negligible for pool sizes this workspace uses (the serve
/// storm bench drives 4–8 workers) while the whole table stays small.
pub const SHARDS: usize = 16;

/// Bound on cached designs per shard (global capacity = `SHARDS` × this).
/// Sweeps cycle through a bounded problem set — tens of testbenches times
/// a handful of candidates in flight — so this holds the working set; the
/// serve chaos battery's cache-thrash family verifies overflow evicts
/// rather than grows.
const SHARD_CAP: usize = 32;

/// Bound on the per-thread L1. Deliberately small: it only exists to skip
/// the shard mutex on a worker's hottest designs.
const L1_CAP: usize = 8;

struct Entry {
    key: u64,
    src: String,
    top: String,
    value: Result<Design, FrontendError>,
    /// LRU stamp from the owning shard's clock; smallest = evict first.
    stamp: u64,
}

struct Shard {
    entries: Vec<Entry>,
    clock: u64,
}

fn shards() -> &'static [Mutex<Shard>; SHARDS] {
    static SHARDS_CELL: OnceLock<[Mutex<Shard>; SHARDS]> = OnceLock::new();
    SHARDS_CELL.get_or_init(|| {
        std::array::from_fn(|_| {
            Mutex::new(Shard {
                entries: Vec::new(),
                clock: 0,
            })
        })
    })
}

static L1_HITS: AtomicU64 = AtomicU64::new(0);
static SHARED_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

struct L1Entry {
    key: u64,
    src: String,
    top: String,
    value: Result<Design, FrontendError>,
    stamp: u64,
}

thread_local! {
    static L1: RefCell<(Vec<L1Entry>, u64)> = const { RefCell::new((Vec::new(), 0)) };
}

fn fnv64(src: &str, top: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in src.bytes().chain([0u8]).chain(top.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn l1_get(key: u64, src: &str, top: &str) -> Option<Result<Design, FrontendError>> {
    L1.with(|l1| {
        let mut guard = l1.borrow_mut();
        let (entries, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        entries
            .iter_mut()
            .find(|e| e.key == key && e.src == src && e.top == top)
            .map(|e| {
                e.stamp = stamp;
                e.value.clone()
            })
    })
}

fn l1_insert(key: u64, src: &str, top: &str, value: Result<Design, FrontendError>) {
    L1.with(|l1| {
        let mut guard = l1.borrow_mut();
        let (entries, clock) = &mut *guard;
        while entries.len() >= L1_CAP {
            let oldest = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("non-empty");
            entries.swap_remove(oldest);
        }
        *clock += 1;
        entries.push(L1Entry {
            key,
            src: src.to_string(),
            top: top.to_string(),
            value,
            stamp: *clock,
        });
    });
}

/// Parses and elaborates `(src, top)`, memoizing the result process-wide.
/// Hits return a clone of the cached [`Design`]: signal tables are copied,
/// but statement bodies and the compiled bytecode are `Arc`-shared, so
/// repeated sweeps — and concurrent service requests on different threads
/// — skip re-parsing, re-elaboration *and* re-compilation.
///
/// # Errors
///
/// Returns the (equally memoized) [`FrontendError`] from whichever stage
/// rejected the source.
pub fn shared_design(src: &str, top: &str) -> Result<Design, FrontendError> {
    let key = fnv64(src, top);
    if let Some(v) = l1_get(key, src, top) {
        L1_HITS.fetch_add(1, Ordering::Relaxed);
        dda_obs::count("sim.cache.hit.l1", 1);
        return v;
    }
    let shard = &shards()[(key % SHARDS as u64) as usize];
    // Injected stall *before* the lock: models a slow thread losing the
    // herd race without suspending everyone behind a held shard mutex.
    dda_fail::fail_point!("sim.cache.lock");
    // Poison-tolerant: an injected panic mid-eviction (chaos builds)
    // leaves the shard consistent — entries are removed one `swap_remove`
    // at a time — so later requests may keep using it.
    let mut guard = shard.lock().unwrap_or_else(|p| p.into_inner());
    guard.clock += 1;
    let stamp = guard.clock;
    if let Some(e) = guard
        .entries
        .iter_mut()
        .find(|e| e.key == key && e.src == src && e.top == top)
    {
        e.stamp = stamp;
        let value = e.value.clone();
        drop(guard);
        SHARED_HITS.fetch_add(1, Ordering::Relaxed);
        dda_obs::count("sim.cache.hit.shared", 1);
        l1_insert(key, src, top, value.clone());
        return value;
    }
    // Miss: run the frontend while still holding the shard lock, so a
    // thundering herd for one new design computes it once (stragglers
    // block on the lock, then take the hit path above).
    let value = compute(src, top);
    while guard.entries.len() >= SHARD_CAP {
        dda_fail::fail_point!("sim.cache.evict");
        let oldest = guard
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
            .expect("non-empty");
        guard.entries.swap_remove(oldest);
        EVICTIONS.fetch_add(1, Ordering::Relaxed);
        dda_obs::count("sim.cache.evict", 1);
    }
    guard.entries.push(Entry {
        key,
        src: src.to_string(),
        top: top.to_string(),
        value: value.clone(),
        stamp,
    });
    drop(guard);
    MISSES.fetch_add(1, Ordering::Relaxed);
    dda_obs::count("sim.cache.miss", 1);
    l1_insert(key, src, top, value.clone());
    value
}

fn compute(src: &str, top: &str) -> Result<Design, FrontendError> {
    let sf = dda_verilog::parse(src).map_err(|e| FrontendError::Parse(e.to_string()))?;
    let design = elaborate(&sf, top).map_err(FrontendError::Elab)?;
    // Pre-compile the bytecode so every cached clone — on any thread —
    // shares one program (the OnceLock value survives cloning).
    let _ = design.compiled();
    Ok(design)
}

/// Process-wide cumulative cache counters.
pub fn stats() -> CacheStats {
    let l1 = L1_HITS.load(Ordering::Relaxed);
    let shared = SHARED_HITS.load(Ordering::Relaxed);
    CacheStats {
        hits: l1 + shared,
        misses: MISSES.load(Ordering::Relaxed),
        l1_hits: l1,
        shared_hits: shared,
        evictions: EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Number of entries currently resident in the global tier.
pub fn resident() -> usize {
    shards()
        .iter()
        .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).entries.len())
        .sum()
}

/// Empties the global tier and *this thread's* L1 (counters are kept;
/// other threads' L1s drain by eviction). Tests use this to get
/// deterministic miss-then-hit sequences.
pub fn clear() {
    for shard in shards() {
        shard
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entries
            .clear();
    }
    L1.with(|l1| l1.borrow_mut().0.clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "module m;\nreg [7:0] a;\ninitial a = 8'hA5;\nendmodule\n";

    #[test]
    fn hit_after_miss_shares_bytecode() {
        clear();
        let before = stats();
        let d1 = shared_design(SRC, "m").unwrap();
        let d2 = shared_design(SRC, "m").unwrap();
        let after = stats();
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits - before.hits >= 1);
        // Both clones share one compiled program.
        assert!(std::sync::Arc::ptr_eq(&d1.compiled(), &d2.compiled()));
    }

    #[test]
    fn concurrent_threads_share_one_compiled_design() {
        clear();
        let src = "module shared_t;\nreg [3:0] r;\ninitial r = 4'd7;\nendmodule\n";
        let designs: Vec<Design> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| shared_design(src, "shared_t").unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let first = designs[0].compiled();
        for d in &designs[1..] {
            assert!(
                std::sync::Arc::ptr_eq(&first, &d.compiled()),
                "threads compiled separate copies"
            );
        }
    }

    #[test]
    fn errors_are_memoized_too() {
        clear();
        let before = stats();
        let e1 = shared_design("module broken(; endmodule", "broken").unwrap_err();
        let e2 = shared_design("module broken(; endmodule", "broken").unwrap_err();
        assert!(matches!(e1, FrontendError::Parse(_)));
        assert_eq!(e1, e2);
        let missing = shared_design(SRC, "nope").unwrap_err();
        assert!(matches!(missing, FrontendError::Elab(_)));
        let after = stats();
        assert_eq!(after.misses - before.misses, 2);
        assert!(after.hits - before.hits >= 1);
    }

    #[test]
    fn distinct_tops_do_not_collide() {
        clear();
        let two = "module a;\nendmodule\nmodule b;\nreg r;\nendmodule\n";
        let da = shared_design(two, "a").unwrap();
        let db = shared_design(two, "b").unwrap();
        assert_ne!(da.signals.len(), db.signals.len());
    }

    #[test]
    fn shared_tier_evicts_rather_than_grows() {
        clear();
        let before = stats();
        for i in 0..(SHARDS * SHARD_CAP * 2) {
            let src = format!("module m;\nreg [{}:0] r;\nendmodule\n", i % 251 + 1);
            let _ = shared_design(&src, "m");
        }
        assert!(
            resident() <= SHARDS * SHARD_CAP,
            "global tier over capacity: {}",
            resident()
        );
        // 252 distinct designs cycled repeatedly through a 512-slot tier:
        // every entry stays resident after the first pass, so the second
        // pass is all hits and evictions stay at zero. Thrash past the
        // bound to see eviction fire.
        for i in 0..(SHARDS * SHARD_CAP * 2) {
            let src = format!("module m;\nreg [7:0] r{};\nendmodule\n", i);
            let _ = shared_design(&src, "m");
        }
        let after = stats();
        assert!(
            after.evictions > before.evictions,
            "distinct-design thrash never evicted"
        );
        assert!(resident() <= SHARDS * SHARD_CAP);
    }

    #[test]
    fn l1_is_bounded_with_eviction() {
        clear();
        // Cycle more designs than the L1 holds; the L1 must stay capped
        // while still answering the most recent design without a lock.
        for i in 0..(L1_CAP * 3) {
            let src = format!("module l1t;\nreg [{}:0] r;\nendmodule\n", i % 61 + 1);
            let _ = shared_design(&src, "l1t");
        }
        let len = L1.with(|l1| l1.borrow().0.len());
        assert!(len <= L1_CAP, "L1 grew to {len}");
        // Re-request the last design: L1 hit, no shard traffic.
        let src = format!(
            "module l1t;\nreg [{}:0] r;\nendmodule\n",
            (L1_CAP * 3 - 1) % 61 + 1
        );
        let before = stats();
        let _ = shared_design(&src, "l1t");
        let after = stats();
        assert_eq!(after.l1_hits - before.l1_hits, 1);
        assert_eq!(after.shared_hits, before.shared_hits);
    }
}
