//! Four-state arithmetic/logic operations over [`LogicVec`].
//!
//! These implement IEEE 1364 expression semantics for the simulator: any
//! `x`/`z` operand makes arithmetic results all-`x`; bitwise operations
//! propagate per bit; comparisons yield a 1-bit `x` when unknowns prevent a
//! decision.

use dda_verilog::{LogicBit, LogicVec};

fn all_x(width: usize) -> LogicVec {
    LogicVec::xs(width.max(1))
}

/// Wrapping addition; all-`x` on unknown operands.
pub fn add(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    match (a.to_u128(), b.to_u128()) {
        (Some(x), Some(y)) => from_u128(x.wrapping_add(y), w),
        _ => all_x(w),
    }
}

/// Wrapping subtraction; all-`x` on unknown operands.
pub fn sub(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    match (a.to_u128(), b.to_u128()) {
        (Some(x), Some(y)) => from_u128(x.wrapping_sub(y), w),
        _ => all_x(w),
    }
}

/// Wrapping multiplication; all-`x` on unknown operands.
pub fn mul(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    match (a.to_u128(), b.to_u128()) {
        (Some(x), Some(y)) => from_u128(x.wrapping_mul(y), w),
        _ => all_x(w),
    }
}

/// Unsigned division; all-`x` on unknown operands or division by zero.
pub fn div(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    match (a.to_u128(), b.to_u128()) {
        (Some(x), Some(y)) if y != 0 => from_u128(x / y, w),
        _ => all_x(w),
    }
}

/// Unsigned remainder; all-`x` on unknown operands or modulo by zero.
pub fn rem(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    match (a.to_u128(), b.to_u128()) {
        (Some(x), Some(y)) if y != 0 => from_u128(x % y, w),
        _ => all_x(w),
    }
}

/// Power; all-`x` on unknown operands.
pub fn pow(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width();
    match (a.to_u128(), b.to_u64_ext()) {
        (Some(x), Some(y)) => {
            let mut acc: u128 = 1;
            for _ in 0..y.min(200) {
                acc = acc.wrapping_mul(x);
            }
            from_u128(acc, w)
        }
        _ => all_x(w),
    }
}

/// Two's-complement negation.
pub fn neg(a: &LogicVec) -> LogicVec {
    let w = a.width();
    match a.to_u128() {
        Some(x) => from_u128(x.wrapping_neg(), w),
        None => all_x(w),
    }
}

/// Bitwise NOT.
pub fn bit_not(a: &LogicVec) -> LogicVec {
    a.bits().iter().map(|b| b.not()).collect()
}

fn zip_bits(a: &LogicVec, b: &LogicVec, f: impl Fn(LogicBit, LogicBit) -> LogicBit) -> LogicVec {
    let w = a.width().max(b.width());
    (0..w)
        .map(|i| {
            let x = a.bits().get(i).copied().unwrap_or(LogicBit::Zero);
            let y = b.bits().get(i).copied().unwrap_or(LogicBit::Zero);
            f(x, y)
        })
        .collect()
}

/// Bitwise AND.
pub fn bit_and(a: &LogicVec, b: &LogicVec) -> LogicVec {
    zip_bits(a, b, LogicBit::and)
}

/// Bitwise OR.
pub fn bit_or(a: &LogicVec, b: &LogicVec) -> LogicVec {
    zip_bits(a, b, LogicBit::or)
}

/// Bitwise XOR.
pub fn bit_xor(a: &LogicVec, b: &LogicVec) -> LogicVec {
    zip_bits(a, b, LogicBit::xor)
}

/// Bitwise XNOR.
pub fn bit_xnor(a: &LogicVec, b: &LogicVec) -> LogicVec {
    zip_bits(a, b, |x, y| x.xor(y).not())
}

/// Logical shift left by an unsigned amount; `x` amount yields all-`x`.
pub fn shl(a: &LogicVec, amount: &LogicVec) -> LogicVec {
    let w = a.width();
    match amount.to_u64_ext() {
        Some(n) => {
            let n = n as usize;
            (0..w)
                .map(|i| if i >= n { a.bit(i - n) } else { LogicBit::Zero })
                .collect()
        }
        None => all_x(w),
    }
}

/// Logical shift right.
pub fn shr(a: &LogicVec, amount: &LogicVec) -> LogicVec {
    let w = a.width();
    match amount.to_u64_ext() {
        Some(n) => {
            let n = n as usize;
            (0..w)
                .map(|i| {
                    if i + n < w {
                        a.bit(i + n)
                    } else {
                        LogicBit::Zero
                    }
                })
                .collect()
        }
        None => all_x(w),
    }
}

/// Arithmetic shift right (sign-filling).
pub fn ashr(a: &LogicVec, amount: &LogicVec) -> LogicVec {
    let w = a.width();
    let fill = a.bits().last().copied().unwrap_or(LogicBit::Zero);
    match amount.to_u64_ext() {
        Some(n) => {
            let n = n as usize;
            (0..w)
                .map(|i| if i + n < w { a.bit(i + n) } else { fill })
                .collect()
        }
        None => all_x(w),
    }
}

/// Logical equality (`==`): 1-bit result, `x` when unknowns are present.
pub fn log_eq(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    let mut any_x = false;
    for i in 0..w {
        let x = a.bits().get(i).copied().unwrap_or(LogicBit::Zero);
        let y = b.bits().get(i).copied().unwrap_or(LogicBit::Zero);
        if x.is_unknown() || y.is_unknown() {
            any_x = true;
        } else if x != y {
            return LogicVec::from_bool(false);
        }
    }
    if any_x {
        LogicVec::from_bit(LogicBit::X)
    } else {
        LogicVec::from_bool(true)
    }
}

/// Logical inequality (`!=`).
pub fn log_ne(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let e = log_eq(a, b);
    match e.bit(0) {
        LogicBit::X | LogicBit::Z => LogicVec::from_bit(LogicBit::X),
        b => LogicVec::from_bit(b.not()),
    }
}

/// Case equality (`===`): exact 4-state match, always 0 or 1.
pub fn case_eq(a: &LogicVec, b: &LogicVec) -> LogicVec {
    LogicVec::from_bool(a.case_eq(b))
}

/// Unsigned/signed comparison. `signed` selects two's-complement order.
pub fn cmp_lt(a: &LogicVec, b: &LogicVec, signed: bool) -> LogicVec {
    if a.has_unknown() || b.has_unknown() {
        return LogicVec::from_bit(LogicBit::X);
    }
    let r = if signed {
        let w = a.width().max(b.width());
        let x = a.resize(w, true).to_i64().unwrap_or(0);
        let y = b.resize(w, true).to_i64().unwrap_or(0);
        x < y
    } else {
        let x = a.to_u128().unwrap_or(0);
        let y = b.to_u128().unwrap_or(0);
        x < y
    };
    LogicVec::from_bool(r)
}

/// Logical AND (`&&`): 1-bit, with x when undecidable.
pub fn log_and(a: &LogicVec, b: &LogicVec) -> LogicVec {
    match (a.truthy(), b.truthy()) {
        (Some(false), _) | (_, Some(false)) => LogicVec::from_bool(false),
        (Some(true), Some(true)) => LogicVec::from_bool(true),
        _ => LogicVec::from_bit(LogicBit::X),
    }
}

/// Logical OR (`||`).
pub fn log_or(a: &LogicVec, b: &LogicVec) -> LogicVec {
    match (a.truthy(), b.truthy()) {
        (Some(true), _) | (_, Some(true)) => LogicVec::from_bool(true),
        (Some(false), Some(false)) => LogicVec::from_bool(false),
        _ => LogicVec::from_bit(LogicBit::X),
    }
}

/// Logical NOT (`!`).
pub fn log_not(a: &LogicVec) -> LogicVec {
    match a.truthy() {
        Some(v) => LogicVec::from_bool(!v),
        None => LogicVec::from_bit(LogicBit::X),
    }
}

/// Reduction over all bits with the given fold.
pub fn reduce(a: &LogicVec, f: impl Fn(LogicBit, LogicBit) -> LogicBit, invert: bool) -> LogicVec {
    let mut acc = a.bits().first().copied().unwrap_or(LogicBit::Zero);
    for b in a.bits().iter().skip(1) {
        acc = f(acc, *b);
    }
    if invert {
        acc = acc.not();
    }
    LogicVec::from_bit(acc)
}

/// Replicates `a`, `n` times (`{n{a}}`).
pub fn replicate(a: &LogicVec, n: usize) -> LogicVec {
    let mut bits = Vec::with_capacity(a.width() * n);
    for _ in 0..n {
        bits.extend_from_slice(a.bits());
    }
    LogicVec::from_bits(bits)
}

/// Builds a `width`-bit vector from a `u128`.
pub fn from_u128(v: u128, width: usize) -> LogicVec {
    (0..width.max(1))
        .map(|i| {
            if i < 128 {
                LogicBit::from(v >> i & 1 == 1)
            } else {
                LogicBit::Zero
            }
        })
        .collect()
}

/// Extension trait: wide conversions used by the simulator.
pub trait LogicVecExt {
    /// As u128, `None` when any bit is unknown or width exceeds 128 with
    /// nonzero high bits.
    fn to_u128(&self) -> Option<u128>;
    /// As u64, allowing widths beyond 64 when high bits are zero.
    fn to_u64_ext(&self) -> Option<u64>;
}

impl LogicVecExt for LogicVec {
    fn to_u128(&self) -> Option<u128> {
        if self.bits().len() > 128 && self.bits()[128..].iter().any(|b| *b != LogicBit::Zero) {
            return None;
        }
        let mut v = 0u128;
        for (i, b) in self.bits().iter().take(128).enumerate() {
            match b.to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    fn to_u64_ext(&self) -> Option<u64> {
        let v = self.to_u128()?;
        u64::try_from(v).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> LogicVec {
        LogicVec::parse_binary(s).unwrap()
    }

    #[test]
    fn arithmetic_wraps_at_width() {
        let a = LogicVec::from_u64(3, 2);
        let b = LogicVec::from_u64(1, 2);
        assert_eq!(add(&a, &b).to_u64(), Some(0)); // 3+1 wraps in 2 bits
        assert_eq!(sub(&b, &a).to_u64(), Some(2)); // 1-3 = -2 = 2 (mod 4)
    }

    #[test]
    fn x_poisons_arithmetic() {
        let a = v("1x");
        let b = v("01");
        assert!(add(&a, &b).has_unknown());
        assert!(mul(&a, &b).has_unknown());
        assert!(neg(&a).has_unknown());
    }

    #[test]
    fn division_by_zero_is_x() {
        let a = LogicVec::from_u64(5, 4);
        let z = LogicVec::from_u64(0, 4);
        assert!(div(&a, &z).has_unknown());
        assert!(rem(&a, &z).has_unknown());
        assert_eq!(div(&a, &LogicVec::from_u64(2, 4)).to_u64(), Some(2));
    }

    #[test]
    fn bitwise_tracks_x_per_bit() {
        let a = v("1x0");
        let b = v("110");
        let r = bit_and(&a, &b);
        assert_eq!(r.to_string(), "1x0");
        let r = bit_or(&a, &v("010"));
        assert_eq!(r.to_string(), "110"); // 1|0=1, x|1=1, 0|0=0
    }

    #[test]
    fn or_with_one_dominates_x() {
        let r = bit_or(&v("x"), &v("1"));
        assert_eq!(r.to_string(), "1");
        let r = bit_and(&v("x"), &v("0"));
        assert_eq!(r.to_string(), "0");
    }

    #[test]
    fn shifts() {
        let a = LogicVec::from_u64(0b0110, 4);
        assert_eq!(shl(&a, &LogicVec::from_u64(1, 2)).to_string(), "1100");
        assert_eq!(shr(&a, &LogicVec::from_u64(1, 2)).to_string(), "0011");
        let s = v("1010");
        assert_eq!(ashr(&s, &LogicVec::from_u64(1, 2)).to_string(), "1101");
    }

    #[test]
    fn equality_with_x() {
        assert_eq!(log_eq(&v("10"), &v("10")).to_u64(), Some(1));
        assert_eq!(log_eq(&v("10"), &v("11")).to_u64(), Some(0));
        assert!(log_eq(&v("1x"), &v("10")).has_unknown());
        // mismatch on a known bit decides even with x elsewhere
        assert_eq!(log_eq(&v("x1"), &v("x0")).to_u64(), Some(0));
        // case equality is exact
        assert_eq!(case_eq(&v("1x"), &v("1x")).to_u64(), Some(1));
        assert_eq!(case_eq(&v("1x"), &v("10")).to_u64(), Some(0));
    }

    #[test]
    fn comparisons() {
        let a = LogicVec::from_u64(3, 4);
        let b = LogicVec::from_u64(5, 4);
        assert_eq!(cmp_lt(&a, &b, false).to_u64(), Some(1));
        assert_eq!(cmp_lt(&b, &a, false).to_u64(), Some(0));
        // signed: 0b1111 = -1 < 3
        let m1 = LogicVec::from_u64(0xF, 4);
        assert_eq!(cmp_lt(&m1, &a, true).to_u64(), Some(1));
        assert_eq!(cmp_lt(&m1, &a, false).to_u64(), Some(0));
    }

    #[test]
    fn logic_ops_short_circuit_x() {
        assert_eq!(log_and(&v("0"), &v("x")).to_u64(), Some(0));
        assert!(log_and(&v("1"), &v("x")).has_unknown());
        assert_eq!(log_or(&v("1"), &v("x")).to_u64(), Some(1));
        assert!(log_not(&v("x")).has_unknown());
    }

    #[test]
    fn reductions() {
        assert_eq!(reduce(&v("111"), LogicBit::and, false).to_u64(), Some(1));
        assert_eq!(reduce(&v("101"), LogicBit::and, false).to_u64(), Some(0));
        assert_eq!(reduce(&v("100"), LogicBit::or, false).to_u64(), Some(1));
        assert_eq!(reduce(&v("101"), LogicBit::xor, false).to_u64(), Some(0));
        assert_eq!(reduce(&v("101"), LogicBit::xor, true).to_u64(), Some(1));
    }

    #[test]
    fn replication() {
        assert_eq!(replicate(&v("10"), 3).to_string(), "101010");
    }

    #[test]
    fn wide_values() {
        let a = from_u128(u128::MAX, 100);
        assert_eq!(a.to_u128(), Some((1u128 << 100) - 1));
        assert!(a.to_u64_ext().is_none());
    }
}
