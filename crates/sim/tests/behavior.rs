//! Behavioural tests: each exercises a distinct simulation semantics.

use dda_sim::{SimOptions, SimResult, Simulator};
use dda_verilog::parse;

fn run(src: &str, top: &str) -> SimResult {
    let sf = parse(src).expect("parse");
    let mut sim = Simulator::new(&sf, top).expect("elaborate");
    sim.run(&SimOptions::default()).expect("run")
}

fn run_output(src: &str) -> String {
    let r = run(src, "tb");
    assert!(
        r.finished,
        "testbench did not $finish; output: {}",
        r.output
    );
    r.output
}

#[test]
fn blocking_assignments_are_sequential() {
    let out = run_output(
        "module tb;
         reg [7:0] a, b;
         initial begin
           a = 8'd1;
           b = a + 8'd1;
           a = b + 8'd1;
           $display(\"%0d %0d\", a, b);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "3 2");
}

#[test]
fn nonblocking_assignments_swap() {
    let out = run_output(
        "module tb;
         reg clk = 0;
         reg [3:0] a = 4'd1, b = 4'd2;
         always @(posedge clk) begin a <= b; b <= a; end
         initial begin
           #1 clk = 1;
           #1 $display(\"%0d %0d\", a, b);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "2 1");
}

#[test]
fn shift_register_pipeline_uses_old_values() {
    // Three FFs in a chain clocked together must shift one stage per edge.
    let out = run_output(
        "module tb;
         reg clk = 0, d = 1;
         reg q1 = 0, q2 = 0, q3 = 0;
         always @(posedge clk) q1 <= d;
         always @(posedge clk) q2 <= q1;
         always @(posedge clk) q3 <= q2;
         initial begin
           repeat (2) begin #5 clk = 1; #5 clk = 0; end
           $display(\"%b%b%b\", q1, q2, q3);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "110");
}

#[test]
fn clock_generator_and_counter() {
    let out = run_output(
        "module tb;
         reg clk = 0;
         reg [7:0] n = 0;
         always #5 clk = ~clk;
         always @(posedge clk) n <= n + 1;
         initial begin #104 $display(\"%0d\", n); $finish; end
         endmodule",
    );
    // Edges at t=5,15,...,95 within 104 time units: 10 increments.
    assert_eq!(out.trim(), "10");
}

#[test]
fn combinational_always_star_tracks_inputs() {
    let out = run_output(
        "module tb;
         reg [3:0] a = 0, b = 0;
         reg [3:0] y;
         always @(*) y = a + b;
         initial begin
           a = 4'd3; b = 4'd4;
           #1 $display(\"%0d\", y);
           a = 4'd9;
           #1 $display(\"%0d\", y);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim().lines().collect::<Vec<_>>(), vec!["7", "13"]);
}

#[test]
fn continuous_assign_cascades() {
    let out = run_output(
        "module tb;
         reg [3:0] a = 0;
         wire [3:0] b, c;
         assign b = a + 4'd1;
         assign c = b * 4'd2;
         initial begin
           a = 4'd3;
           #1 $display(\"%0d\", c);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "8");
}

#[test]
fn concat_lvalue_keeps_carry() {
    let out = run_output(
        "module tb;
         reg [7:0] a = 8'hFF, b = 8'h01;
         reg c;
         reg [7:0] s;
         initial begin
           {c, s} = a + b;
           $display(\"%b %0d\", c, s);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "1 0");
}

#[test]
fn part_select_read_write() {
    let out = run_output(
        "module tb;
         reg [7:0] x = 8'b1010_0101;
         initial begin
           $display(\"%b\", x[7:4]);
           x[3:0] = 4'b1111;
           $display(\"%b\", x);
           x[6] = 1'b1;
           $display(\"%b\", x);
           $finish;
         end
         endmodule",
    );
    assert_eq!(
        out.trim().lines().collect::<Vec<_>>(),
        vec!["1010", "10101111", "11101111"]
    );
}

#[test]
fn indexed_part_select() {
    let out = run_output(
        "module tb;
         reg [15:0] x = 16'hABCD;
         integer i;
         initial begin
           i = 4;
           $display(\"%h\", x[i +: 4]);
           $display(\"%h\", x[11 -: 4]);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim().lines().collect::<Vec<_>>(), vec!["c", "b"]);
}

#[test]
fn memory_read_write() {
    let out = run_output(
        "module tb;
         reg [7:0] mem [0:15];
         integer i;
         initial begin
           for (i = 0; i < 16; i = i + 1) mem[i] = i * 2;
           $display(\"%0d %0d\", mem[3], mem[15]);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "6 30");
}

#[test]
fn case_statement_with_default() {
    let out = run_output(
        "module tb;
         reg [1:0] s;
         reg [3:0] y;
         initial begin
           s = 2'b10;
           case (s)
             2'b00: y = 4'd0;
             2'b01, 2'b10: y = 4'd5;
             default: y = 4'd9;
           endcase
           $display(\"%0d\", y);
           s = 2'b11;
           case (s)
             2'b00: y = 4'd0;
             default: y = 4'd9;
           endcase
           $display(\"%0d\", y);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim().lines().collect::<Vec<_>>(), vec!["5", "9"]);
}

#[test]
fn casez_wildcards() {
    let out = run_output(
        "module tb;
         reg [3:0] req;
         reg [1:0] grant;
         initial begin
           req = 4'b0100;
           casez (req)
             4'b1???: grant = 2'd3;
             4'b01??: grant = 2'd2;
             4'b001?: grant = 2'd1;
             default: grant = 2'd0;
           endcase
           $display(\"%0d\", grant);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "2");
}

#[test]
fn hierarchical_instance_with_params() {
    let out = run_output(
        "module adder #(parameter W = 4)(input [W-1:0] a, b, output [W:0] s);
         assign s = a + b;
         endmodule
         module tb;
         reg [7:0] x = 200, y = 100;
         wire [8:0] s;
         adder #(.W(8)) dut(.a(x), .b(y), .s(s));
         initial begin #1 $display(\"%0d\", s); $finish; end
         endmodule",
    );
    assert_eq!(out.trim(), "300");
}

#[test]
fn two_level_hierarchy() {
    let out = run_output(
        "module inv(input a, output y); assign y = ~a; endmodule
         module double_inv(input a, output y);
         wire m;
         inv u0(.a(a), .y(m));
         inv u1(.a(m), .y(y));
         endmodule
         module tb;
         reg a = 0;
         wire y;
         double_inv dut(.a(a), .y(y));
         initial begin
           a = 1;
           #1 $display(\"%b\", y);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "1");
}

#[test]
fn x_propagates_through_uninitialised_reg() {
    let out = run_output(
        "module tb;
         reg [3:0] q;
         wire [3:0] y;
         assign y = q + 4'd1;
         initial begin
           #1 $display(\"%b\", y);
           q = 4'd2;
           #1 $display(\"%0d\", y);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim().lines().collect::<Vec<_>>(), vec!["xxxx", "3"]);
}

#[test]
fn case_inequality_distinguishes_x() {
    let out = run_output(
        "module tb;
         reg [1:0] q; // starts xx
         initial begin
           if (q !== 2'b00) $display(\"UNKNOWN\");
           q = 2'b00;
           if (q === 2'b00) $display(\"KNOWN\");
           $finish;
         end
         endmodule",
    );
    assert_eq!(
        out.trim().lines().collect::<Vec<_>>(),
        vec!["UNKNOWN", "KNOWN"]
    );
}

#[test]
fn functions_evaluate() {
    let out = run_output(
        "module tb;
         function [7:0] fib;
         input [7:0] n;
         integer i;
         reg [7:0] a, b, t;
         begin
           a = 0; b = 1;
           for (i = 0; i < n; i = i + 1) begin
             t = a + b; a = b; b = t;
           end
           fib = a;
         end
         endfunction
         initial begin
           $display(\"%0d %0d %0d\", fib(5), fib(10), fib(1));
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "5 55 1");
}

#[test]
fn wait_statement_resumes() {
    let out = run_output(
        "module tb;
         reg go = 0;
         initial begin
           #7 go = 1;
         end
         initial begin
           wait (go) $display(\"go at %0t\", $time);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "go at 7");
}

#[test]
fn event_control_inside_initial() {
    let out = run_output(
        "module tb;
         reg clk = 0;
         always #5 clk = ~clk;
         initial begin
           @(posedge clk);
           @(posedge clk);
           $display(\"t=%0t\", $time);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "t=15");
}

#[test]
fn negedge_detection() {
    let out = run_output(
        "module tb;
         reg clk = 1;
         initial begin
           #5 clk = 0;
         end
         initial begin
           @(negedge clk) $display(\"neg at %0t\", $time);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "neg at 5");
}

#[test]
fn intra_assignment_delay_blocking() {
    let out = run_output(
        "module tb;
         reg [3:0] a = 1, b;
         initial begin
           b = #10 a;   // sample a now, write at t=10, block until then
           a = 4'd9;
           $display(\"t=%0t a=%0d b=%0d\", $time, a, b);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "t=10 a=9 b=1");
}

#[test]
fn nonblocking_with_delay() {
    let out = run_output(
        "module tb;
         reg [3:0] q = 0;
         initial begin
           q <= #5 4'd7;
           $display(\"t=%0t q=%0d\", $time, q);
           #6 $display(\"t=%0t q=%0d\", $time, q);
           $finish;
         end
         endmodule",
    );
    assert_eq!(
        out.trim().lines().collect::<Vec<_>>(),
        vec!["t=0 q=0", "t=6 q=7"]
    );
}

#[test]
fn repeat_and_while_loops() {
    let out = run_output(
        "module tb;
         integer n;
         initial begin
           n = 0;
           repeat (5) n = n + 1;
           while (n < 8) n = n + 1;
           $display(\"%0d\", n);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "8");
}

#[test]
fn forever_with_delay_is_bounded_by_finish() {
    let out = run_output(
        "module tb;
         integer n = 0;
         initial forever #2 n = n + 1;
         initial begin
           #11 $display(\"%0d\", n);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "5");
}

#[test]
fn zero_delay_infinite_loop_is_caught() {
    let sf = parse(
        "module tb;
         integer n = 0;
         initial while (1) n = n + 1;
         endmodule",
    )
    .unwrap();
    let mut sim = Simulator::new(&sf, "tb").unwrap();
    let err = sim
        .run(&SimOptions {
            max_steps: 100_000,
            ..SimOptions::default()
        })
        .unwrap_err();
    assert!(err.message.contains("budget"), "{err}");
}

#[test]
fn quiescent_design_stops_without_finish() {
    let r = run(
        "module tb;
         reg a = 0;
         initial #5 a = 1;
         endmodule",
        "tb",
    );
    assert!(!r.finished);
    assert_eq!(r.time, 5);
}

#[test]
fn max_time_bounds_free_running_clock() {
    let sf = parse(
        "module tb;
         reg clk = 0;
         always #5 clk = ~clk;
         endmodule",
    )
    .unwrap();
    let mut sim = Simulator::new(&sf, "tb").unwrap();
    let r = sim
        .run(&SimOptions {
            max_time: 1000,
            ..SimOptions::default()
        })
        .unwrap();
    assert!(!r.finished);
    assert!(r.time <= 1005);
}

#[test]
fn monitor_prints_on_change() {
    let out = run_output(
        "module tb;
         reg [1:0] n = 0;
         initial $monitor(\"n=%0d\", n);
         initial begin
           #1 n = 1;
           #1 n = 1; // no change, no print
           #1 n = 2;
           #1 $finish;
         end
         endmodule",
    );
    let lines: Vec<_> = out.trim().lines().collect();
    assert_eq!(lines, vec!["n=0", "n=1", "n=2"]);
}

#[test]
fn display_formats() {
    let out = run_output(
        "module tb;
         reg [7:0] v = 8'hA5;
         reg signed [7:0] s = -8'sd3;
         initial begin
           $display(\"%d|%0d|%b|%h|%o\", v, v, v, v, v);
           $display(\"%0d\", s);
           $display(\"100%% [%c]\", 8'h41);
           $finish;
         end
         endmodule",
    );
    let lines: Vec<_> = out.trim().lines().collect();
    assert_eq!(lines[0], "165|165|10100101|a5|245");
    assert_eq!(lines[1], "-3");
    assert_eq!(lines[2], "100% [A]");
}

#[test]
fn signed_comparison() {
    let out = run_output(
        "module tb;
         reg signed [3:0] a = -2;
         reg signed [3:0] b = 1;
         initial begin
           if (a < b) $display(\"signed-lt\");
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "signed-lt");
}

#[test]
fn unsigned_comparison_of_wide_values() {
    let out = run_output(
        "module tb;
         reg [3:0] a = 4'hE;
         initial begin
           if (a > 4'd1) $display(\"gt\");
           if (a >= 4'hE) $display(\"ge\");
           if (a <= 4'hE) $display(\"le\");
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim().lines().count(), 3);
}

#[test]
fn gate_primitives_simulate() {
    let out = run_output(
        "module tb;
         reg a = 1, b = 0;
         wire y_and, y_or, y_not;
         and g0(y_and, a, b);
         or g1(y_or, a, b);
         not g2(y_not, a);
         initial begin
           #1 $display(\"%b%b%b\", y_and, y_or, y_not);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "010");
}

#[test]
fn poke_and_peek() {
    let sf = parse(
        "module m(input [3:0] a, output [3:0] y);
         assign y = a + 4'd1;
         endmodule",
    )
    .unwrap();
    let mut sim = Simulator::new(&sf, "m").unwrap();
    sim.run(&SimOptions::default()).unwrap();
    sim.poke("a", dda_verilog::LogicVec::from_u64(4, 4));
    sim.run(&SimOptions::default()).unwrap();
    assert_eq!(sim.peek("y").unwrap().to_u64(), Some(5));
}

#[test]
fn reduction_operators() {
    let out = run_output(
        "module tb;
         reg [3:0] v = 4'b1011;
         initial begin
           $display(\"%b%b%b%b\", &v, |v, ^v, ~^v);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "0110");
}

#[test]
fn replication_and_concat() {
    let out = run_output(
        "module tb;
         reg [1:0] a = 2'b10;
         wire [7:0] y;
         assign y = {2{a, 2'b01}};
         initial begin #1 $display(\"%b\", y); $finish; end
         endmodule",
    );
    assert_eq!(out.trim(), "10011001");
}

#[test]
fn ternary_with_x_condition_merges() {
    let out = run_output(
        "module tb;
         reg s; // x
         wire [1:0] y;
         assign y = s ? 2'b11 : 2'b10;
         initial begin #1 $display(\"%b\", y); $finish; end
         endmodule",
    );
    // MSB agrees (1), LSB disagrees -> x
    assert_eq!(out.trim(), "1x");
}

#[test]
fn error_and_fatal_counted() {
    let r = run(
        "module tb;
         initial begin
           $error(\"bad thing\");
           $finish;
         end
         endmodule",
        "tb",
    );
    assert_eq!(r.error_count, 1);
    assert!(r.output.contains("[ERROR] bad thing"));
}

#[test]
fn ascending_bit_range() {
    let out = run_output(
        "module tb;
         reg [0:3] v;
         initial begin
           v = 4'b1000; // v[0] is the MSB
           $display(\"%b %b\", v[0], v[3]);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "1 0");
}

#[test]
fn random_is_deterministic_per_seed() {
    let src = "module tb;
         reg [31:0] r;
         initial begin
           r = $random;
           $display(\"%0d\", r);
           $finish;
         end
         endmodule";
    let sf = parse(src).unwrap();
    let mut s1 = Simulator::new(&sf, "tb").unwrap();
    s1.seed_random(42);
    let r1 = s1.run(&SimOptions::default()).unwrap();
    let mut s2 = Simulator::new(&sf, "tb").unwrap();
    s2.seed_random(42);
    let r2 = s2.run(&SimOptions::default()).unwrap();
    assert_eq!(r1.output, r2.output);
    let mut s3 = Simulator::new(&sf, "tb").unwrap();
    s3.seed_random(43);
    let r3 = s3.run(&SimOptions::default()).unwrap();
    assert_ne!(r1.output, r3.output);
}

#[test]
fn fsm_traffic_light_cycles() {
    let out = run_output(
        "module fsm(input clk, rst, output reg [1:0] state);
         localparam RED = 0, GREEN = 1, YELLOW = 2;
         always @(posedge clk) begin
           if (rst) state <= RED;
           else case (state)
             RED: state <= GREEN;
             GREEN: state <= YELLOW;
             YELLOW: state <= RED;
             default: state <= RED;
           endcase
         end
         endmodule
         module tb;
         reg clk = 0, rst = 1;
         wire [1:0] state;
         fsm dut(.clk(clk), .rst(rst), .state(state));
         always #5 clk = ~clk;
         initial begin
           #12 rst = 0;
           @(posedge clk); #1 $display(\"%0d\", state);
           @(posedge clk); #1 $display(\"%0d\", state);
           @(posedge clk); #1 $display(\"%0d\", state);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim().lines().collect::<Vec<_>>(), vec!["1", "2", "0"]);
}

#[test]
fn self_checking_testbench_passes() {
    let out = run_output(
        "module mux2(input a, b, sel, output y);
         assign y = sel ? b : a;
         endmodule
         module tb;
         reg a, b, sel;
         wire y;
         integer errors = 0;
         mux2 dut(.a(a), .b(b), .sel(sel), .y(y));
         initial begin
           a = 0; b = 1; sel = 0;
           #1 if (y !== 0) errors = errors + 1;
           sel = 1;
           #1 if (y !== 1) errors = errors + 1;
           if (errors == 0) $display(\"TEST PASSED\");
           else $display(\"TEST FAILED: %0d errors\", errors);
           $finish;
         end
         endmodule",
    );
    assert!(out.contains("TEST PASSED"));
}

#[test]
fn asynchronous_reset_simple() {
    let out = run_output(
        "module tb;
         reg clk = 0; reg rst = 0; reg d = 1; reg q;
         always @(posedge clk or posedge rst)
           if (rst) q <= 1'b0;
           else q <= d;
         integer pass; integer total;
         initial begin
           pass = 0; total = 0;
           #3 clk = 1;
           #1 total = total + 1; if (q === 1'b1) pass = pass + 1;
           #1 rst = 1;
           #1 total = total + 1; if (q === 1'b0) pass = pass + 1;
           $display(\"RESULT %0d %0d\", pass, total);
           $finish;
         end
         endmodule",
    );
    let (p, t) = dda_benchmarks::parse_result(&out).unwrap();
    assert_eq!((p, t), (2, 2), "{out}");
}

#[test]
fn parameters_and_clog2_elaborate() {
    let out = run_output(
        "module fifo_depth #(parameter DEPTH = 16)(output [31:0] bits);
         localparam AW = $clog2(DEPTH);
         assign bits = AW;
         endmodule
         module tb;
         wire [31:0] a, b;
         fifo_depth #(.DEPTH(16)) u0(.bits(a));
         fifo_depth #(.DEPTH(100)) u1(.bits(b));
         initial begin
           #1 $display(\"%0d %0d\", a, b);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "4 7");
}

#[test]
fn casez_question_mark_labels() {
    let out = run_output(
        "module tb;
         reg [3:0] r;
         reg [1:0] g;
         initial begin
           r = 4'b0010;
           casez (r)
             4'b1???: g = 2'd3;
             4'b01??: g = 2'd2;
             4'b001?: g = 2'd1;
             default: g = 2'd0;
           endcase
           $display(\"%0d\", g);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "1");
}

#[test]
fn while_loop_with_memory_search() {
    let out = run_output(
        "module tb;
         reg [7:0] mem [0:7];
         integer i;
         integer found;
         initial begin
           for (i = 0; i < 8; i = i + 1) mem[i] = i * 3;
           found = -1;
           i = 0;
           while (i < 8 && found == -1) begin
             if (mem[i] == 8'd12) found = i;
             i = i + 1;
           end
           $display(\"%0d\", found);
           $finish;
         end
         endmodule",
    );
    assert_eq!(out.trim(), "4");
}
