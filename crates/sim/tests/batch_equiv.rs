//! Batch-engine equivalence: every lane of a [`run_batch`] sweep must
//! produce a [`SimResult`] (or [`RunError`]) bit-identical to running the
//! same seed on a fresh scalar bytecode simulator with the same options.
//! The battery covers the uniform fast path (deterministic testbenches),
//! value-only divergence (`$random` without control flow), forced schedule
//! divergence (branches, case selects, delays, and dynamic indices driven
//! by per-lane random draws), per-lane budget/timeout behaviour, and the
//! static-scan fallback (`$monitor`).

use dda_sim::{
    elaborate, run_batch, BatchSim, Design, EvalMode, RunError, RunErrorKind, SimOptions,
    SimResult, Simulator,
};

fn design(src: &str, top: &str) -> Design {
    let sf = dda_verilog::parse(src).expect("parses");
    elaborate(&sf, top).expect("elaborates")
}

/// One sequential run: fresh simulator, optional seed, bytecode mode.
fn scalar(design: &Design, seed: Option<u64>, opts: &SimOptions) -> Result<SimResult, RunError> {
    let mut sim = Simulator::from_design(design.clone());
    if let Some(s) = seed {
        sim.seed_random(s);
    }
    let mut o = opts.clone();
    o.eval_mode = EvalMode::Bytecode;
    sim.run(&o)
}

/// Asserts every lane of a batched run equals its sequential counterpart;
/// returns the number of retired (diverged) lanes for shape assertions.
fn assert_equiv(src: &str, top: &str, seeds: &[Option<u64>], opts: &SimOptions) -> usize {
    let d = design(src, top);
    let mut batch = BatchSim::new(d.clone(), seeds.to_vec());
    let got = batch.run(opts);
    assert_eq!(got.len(), seeds.len());
    for (l, (seed, got)) in seeds.iter().zip(&got).enumerate() {
        let want = scalar(&d, *seed, opts);
        assert_eq!(&want, got, "lane {l} (seed {seed:?}) diverged on:\n{src}");
    }
    batch.report().diverged
}

/// Seeds exercised for every source: R = 1, 4, and 8 with a mix of seeded
/// and unseeded lanes.
fn seed_sets() -> Vec<Vec<Option<u64>>> {
    vec![
        vec![None],
        vec![Some(3)],
        vec![None, Some(1), Some(2), Some(1)],
        (0..8)
            .map(|i| if i % 3 == 0 { None } else { Some(i) })
            .collect(),
    ]
}

fn equiv_all(src: &str, top: &str) {
    for seeds in seed_sets() {
        assert_equiv(src, top, &seeds, &SimOptions::default());
    }
}

#[test]
fn deterministic_testbench_stays_in_lockstep() {
    let src = "module tb;\n\
         reg clk = 0; reg [7:0] n = 0;\n\
         always #5 clk = ~clk;\n\
         always @(posedge clk) n <= n + 1;\n\
         initial begin #52 $display(\"n=%0d t=%0t\", n, $time); $finish; end\n\
         endmodule";
    for seeds in seed_sets() {
        let diverged = assert_equiv(src, "tb", &seeds, &SimOptions::default());
        assert_eq!(diverged, 0, "no $random, nothing can diverge");
    }
}

#[test]
fn wide_vectors_and_concat_lvalues() {
    equiv_all(
        "module tb;\n\
         reg [127:0] a; reg [199:0] b; reg [31:0] r; reg [7:0] hi, lo; reg c;\n\
         initial begin\n\
           a = {4{32'hDEAD_BEEF}};\n\
           b = {a, a[127:56]};\n\
           r = a[95:64] ^ b[31:0];\n\
           {hi, lo} = r[23:8];\n\
           r[3:0] = hi[7:4];\n\
           {c, r[11:8]} = {1'b1, hi[3:0]} + {1'b0, lo[7:4]};\n\
           $display(\"%h %h %h %b\", a, b[199:136], r, c);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn x_z_propagation_and_continuous_assigns() {
    equiv_all(
        "module adder(input [15:0] x, y, output [16:0] s);\n\
         assign s = x + y;\n\
         endmodule\n\
         module tb;\n\
         reg [3:0] a, b; wire [3:0] w = a & b;\n\
         reg [15:0] p = 0, q = 0; wire [16:0] s;\n\
         adder dut(.x(p), .y(q), .s(s));\n\
         initial begin\n\
           a = 4'b1xz0; b = 4'b1101;\n\
           p = 16'hFFFF; q = 16'h0001;\n\
           #1 $display(\"%b %b %h\", w, a ? 4'hF : 4'h0, s);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn memories_dynamic_indexing_and_loops() {
    equiv_all(
        "module tb;\n\
         reg [15:0] mem [0:7]; reg [2:0] i; reg [15:0] acc;\n\
         initial begin\n\
           for (i = 0; i < 7; i = i + 1) mem[i] = {13'd0, i} * 16'd3;\n\
           acc = 0;\n\
           for (i = 0; i < 7; i = i + 1) acc = acc + mem[i];\n\
           mem[acc[2:0]] = 16'hFFFF;\n\
           repeat (3) acc = acc + 1;\n\
           while (acc[0]) acc = acc + 1;\n\
           $display(\"acc=%0d m0=%0d hit=%h\", acc, mem[0], mem[acc[2:0]]);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn random_values_without_branching_stay_in_lockstep() {
    // Lanes draw different values but never branch on them: pure value
    // divergence, handled by per-lane storage with zero retirements.
    let src = "module tb;\n\
         integer i; reg [31:0] r; reg [31:0] acc = 0;\n\
         initial begin\n\
           for (i = 0; i < 5; i = i + 1) begin\n\
             r = $random;\n\
             acc = acc ^ r;\n\
             $display(\"%h\", r);\n\
           end\n\
           $display(\"acc=%h\", acc);\n\
           $finish;\n\
         end\n\
         endmodule";
    for seeds in seed_sets() {
        let diverged = assert_equiv(src, "tb", &seeds, &SimOptions::default());
        assert_eq!(diverged, 0, "value-only divergence must not retire lanes");
    }
}

#[test]
fn branch_on_random_retires_disagreeing_lanes() {
    let src = "module tb;\n\
         reg [31:0] r;\n\
         initial begin\n\
           r = $random;\n\
           if (r[0]) $display(\"odd %h\", r);\n\
           else $display(\"even %h\", r);\n\
           $finish;\n\
         end\n\
         endmodule";
    for seeds in seed_sets() {
        assert_equiv(src, "tb", &seeds, &SimOptions::default());
    }
    // A single-lane batch can never diverge: the leader always survives.
    let diverged = assert_equiv(src, "tb", &[Some(42)], &SimOptions::default());
    assert_eq!(diverged, 0);
}

#[test]
fn case_select_on_random_unifies_or_retires() {
    equiv_all(
        "module tb;\n\
         reg [31:0] r; reg [7:0] out;\n\
         initial begin\n\
           r = $random;\n\
           case (r[1:0])\n\
             2'd0: out = 8'd10;\n\
             2'd1, 2'd2: out = 8'd20;\n\
             default: out = 8'd30;\n\
           endcase\n\
           $display(\"%0d %h\", out, r);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn random_delay_and_dynamic_write_divergence() {
    equiv_all(
        "module tb;\n\
         reg [31:0] r; reg [7:0] mem [0:3];\n\
         initial begin\n\
           mem[0] = 0; mem[1] = 0; mem[2] = 0; mem[3] = 0;\n\
           r = $random;\n\
           #(r[1:0]) mem[r[3:2]] = 8'hAB;\n\
           $display(\"t=%0t %0d %0d %0d %0d\", $time, mem[0], mem[1], mem[2], mem[3]);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn error_warning_fatal_formatting_per_lane() {
    equiv_all(
        "module tb;\n\
         reg [31:0] r;\n\
         initial begin\n\
           r = $random;\n\
           $warning(\"w %h\", r);\n\
           $error(\"e %0d\", r[7:0]);\n\
           $display(\"after\");\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn step_budget_trips_identically_per_lane() {
    let src = "module tb;\n\
         reg r = 0;\n\
         always r = ~r;\n\
         endmodule";
    for budget in [10, 1_000, 9_999] {
        let opts = SimOptions {
            max_steps: budget,
            ..SimOptions::default()
        };
        let d = design(src, "tb");
        let got = run_batch(&d, &[None, Some(1), Some(2), Some(3)], &opts);
        for (l, got) in got.iter().enumerate() {
            let err = got.as_ref().expect_err("runaway loop must trip");
            assert_eq!(err.kind, RunErrorKind::StepBudget, "lane {l}");
            let want = scalar(&d, [None, Some(1), Some(2), Some(3)][l], &opts).expect_err("scalar");
            assert_eq!(&want, err, "lane {l} budget {budget}");
        }
    }
}

#[test]
fn delta_limit_trips_identically_per_lane() {
    let src = "module tb;\n\
         reg a = 0;\n\
         always @(a) a <= ~a;\n\
         endmodule";
    let opts = SimOptions::default();
    let d = design(src, "tb");
    for got in run_batch(&d, &[None; 4], &opts) {
        let err = got.expect_err("livelock must trip");
        assert_eq!(err.kind, RunErrorKind::DeltaLimit);
        assert_eq!(scalar(&d, None, &opts).expect_err("scalar"), err);
    }
}

#[test]
fn cancelled_token_times_out_every_lane() {
    let src = "module tb;\n\
         reg clk = 0;\n\
         always #1 clk = ~clk;\n\
         endmodule";
    let opts = SimOptions::default();
    opts.cancel.cancel();
    let d = design(src, "tb");
    for got in run_batch(&d, &[None, Some(9)], &opts) {
        let err = got.expect_err("cancelled run must abort");
        assert!(err.is_wall_timeout());
    }
}

#[test]
fn monitor_design_falls_back_to_scalar() {
    let src = "module tb;\n\
         reg [3:0] v = 0;\n\
         initial $monitor(\"v=%0d\", v);\n\
         initial begin #1 v = 3; #1 v = 9; $error(\"boom %0d\", v); #1 $finish; end\n\
         endmodule";
    let d = design(src, "tb");
    let seeds = [None, Some(5), Some(6)];
    let mut batch = BatchSim::new(d.clone(), seeds.to_vec());
    let got = batch.run(&SimOptions::default());
    assert!(batch.report().unsupported, "$monitor must reject lockstep");
    assert_eq!(batch.report().lockstep_completed, 0);
    for (seed, got) in seeds.iter().zip(&got) {
        let want = scalar(&d, *seed, &SimOptions::default());
        assert_eq!(&want, got);
    }
}

#[test]
fn empty_batch_returns_no_results() {
    let d = design("module tb; initial $finish; endmodule", "tb");
    let mut batch = BatchSim::new(d, Vec::new());
    assert!(batch.run(&SimOptions::default()).is_empty());
    assert_eq!(batch.report().lanes, 0);
}

#[test]
fn report_accounts_for_every_lane() {
    let src = "module tb;\n\
         reg [31:0] r;\n\
         initial begin\n\
           r = $random;\n\
           if (r[0]) #1 $display(\"odd\");\n\
           $display(\"%h\", r);\n\
           $finish;\n\
         end\n\
         endmodule";
    let d = design(src, "tb");
    let seeds: Vec<Option<u64>> = (0..8).map(|i| Some(i * 17 + 1)).collect();
    let mut batch = BatchSim::new(d.clone(), seeds.clone());
    let got = batch.run(&SimOptions::default());
    let rep = batch.report().clone();
    assert_eq!(rep.lanes, 8);
    assert!(!rep.unsupported);
    assert_eq!(rep.lockstep_completed + rep.diverged, 8);
    for (seed, got) in seeds.iter().zip(&got) {
        assert_eq!(&scalar(&d, *seed, &SimOptions::default()), got);
    }
}
