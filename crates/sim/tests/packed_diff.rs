//! Differential tests: every word-packed [`PackedVec`] operation must be
//! bit-identical to the per-bit [`LogicVec`] reference in `dda_sim::ops`,
//! for arbitrary four-state inputs at widths spanning the 64-bit word
//! boundaries (1..200 covers one, two, and four-word vectors plus the
//! partial top word).

use dda_sim::ops;
use dda_verilog::{LogicBit, LogicVec, PackedVec};
use proptest::prelude::*;

/// Decodes `0..4` digits into a four-state vector (LSB first).
fn lv(bits: &[u8]) -> LogicVec {
    bits.iter()
        .map(|b| match b {
            0 => LogicBit::Zero,
            1 => LogicBit::One,
            2 => LogicBit::X,
            _ => LogicBit::Z,
        })
        .collect()
}

fn pv(bits: &[u8]) -> PackedVec {
    PackedVec::from_logic(&lv(bits))
}

/// A four-state bit pattern crossing word boundaries.
fn fourstate() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 1..200)
}

/// The AST interpreter's unknown-condition ternary merge (eval.rs), as a
/// standalone reference for `PackedVec::ternary_merge`.
fn ref_ternary_merge(a: &LogicVec, b: &LogicVec) -> LogicVec {
    let w = a.width().max(b.width());
    (0..w)
        .map(|i| {
            let x = a.bit(i.min(a.width().saturating_sub(1)));
            let y = b.bit(i.min(b.width().saturating_sub(1)));
            if x == y && !x.is_unknown() {
                x
            } else {
                LogicBit::X
            }
        })
        .collect()
}

/// The AST interpreter's case-label match (eval.rs `case_label_matches`),
/// parameterized the way the bytecode compiler parameterizes it.
fn ref_case_match(sel: &LogicVec, label: &LogicVec, wild_z: bool, wild_x: bool) -> bool {
    let w = sel.width().max(label.width());
    for i in 0..w {
        let s = sel.bits().get(i).copied().unwrap_or(LogicBit::Zero);
        let l = label.bits().get(i).copied().unwrap_or(LogicBit::Zero);
        let wild = if wild_x {
            s.is_unknown() || l.is_unknown()
        } else if wild_z {
            s == LogicBit::Z || l == LogicBit::Z
        } else {
            false
        };
        if wild {
            continue;
        }
        if s != l {
            return false;
        }
    }
    true
}

proptest! {
    /// LogicVec -> PackedVec -> LogicVec is the identity.
    #[test]
    fn round_trip(a in fourstate()) {
        let reference = lv(&a);
        prop_assert_eq!(PackedVec::from_logic(&reference).to_logic_vec(), reference);
    }

    /// Scalar conversions and predicates agree with the reference.
    #[test]
    fn conversions_match(a in fourstate()) {
        use ops::LogicVecExt;
        let r = lv(&a);
        let p = pv(&a);
        prop_assert_eq!(p.to_u64(), r.to_u64());
        prop_assert_eq!(p.to_u128(), r.to_u128());
        prop_assert_eq!(p.to_u64_ext(), r.to_u64_ext());
        prop_assert_eq!(p.truthy(), r.truthy());
        prop_assert_eq!(p.has_unknown(), r.has_unknown());
        for i in [0, 1, 63, 64, 65, 127, 128, a.len() - 1, a.len(), a.len() + 7] {
            prop_assert_eq!(p.bit(i), r.bit(i), "bit {}", i);
        }
    }

    /// Arithmetic: wrap-at-width results and whole-vector x-poisoning.
    #[test]
    fn arithmetic_matches(a in fourstate(), b in fourstate()) {
        let (ra, rb) = (lv(&a), lv(&b));
        let (pa, pb) = (pv(&a), pv(&b));
        prop_assert_eq!(pa.add(&pb).to_logic_vec(), ops::add(&ra, &rb));
        prop_assert_eq!(pa.sub(&pb).to_logic_vec(), ops::sub(&ra, &rb));
        prop_assert_eq!(pa.mul(&pb).to_logic_vec(), ops::mul(&ra, &rb));
        prop_assert_eq!(pa.div(&pb).to_logic_vec(), ops::div(&ra, &rb));
        prop_assert_eq!(pa.rem(&pb).to_logic_vec(), ops::rem(&ra, &rb));
        prop_assert_eq!(pa.neg().to_logic_vec(), ops::neg(&ra));
    }

    /// Power (reference caps the exponent loop; exercised with small
    /// exponents where semantics are exact).
    #[test]
    fn pow_matches(a in fourstate(), e in 0u64..12) {
        let ra = lv(&a);
        let pa = pv(&a);
        let re = LogicVec::from_u64(e, 8);
        let pe = PackedVec::from_u64(e, 8);
        prop_assert_eq!(pa.pow(&pe).to_logic_vec(), ops::pow(&ra, &re));
    }

    /// Bitwise operators propagate x/z per bit exactly as the tables do.
    #[test]
    fn bitwise_matches(a in fourstate(), b in fourstate()) {
        let (ra, rb) = (lv(&a), lv(&b));
        let (pa, pb) = (pv(&a), pv(&b));
        prop_assert_eq!(pa.bit_and(&pb).to_logic_vec(), ops::bit_and(&ra, &rb));
        prop_assert_eq!(pa.bit_or(&pb).to_logic_vec(), ops::bit_or(&ra, &rb));
        prop_assert_eq!(pa.bit_xor(&pb).to_logic_vec(), ops::bit_xor(&ra, &rb));
        prop_assert_eq!(pa.bit_xnor(&pb).to_logic_vec(), ops::bit_xnor(&ra, &rb));
        prop_assert_eq!(pa.bit_not().to_logic_vec(), ops::bit_not(&ra));
    }

    /// Shifts, including unknown shift amounts and amounts past the width.
    #[test]
    fn shifts_match(a in fourstate(), amt in fourstate()) {
        let ra = lv(&a);
        let pa = pv(&a);
        // Use a short amount vector so in-range shifts are common, but keep
        // the raw four-state draw so x/z amounts are covered too.
        let amt = &amt[..amt.len().min(9)];
        let ramt = lv(amt);
        let pamt = pv(amt);
        prop_assert_eq!(pa.shl(&pamt).to_logic_vec(), ops::shl(&ra, &ramt));
        prop_assert_eq!(pa.shr(&pamt).to_logic_vec(), ops::shr(&ra, &ramt));
        prop_assert_eq!(pa.ashr(&pamt).to_logic_vec(), ops::ashr(&ra, &ramt));
    }

    /// Equality and ordering, signed and unsigned.
    #[test]
    fn comparisons_match(a in fourstate(), b in fourstate()) {
        let (ra, rb) = (lv(&a), lv(&b));
        let (pa, pb) = (pv(&a), pv(&b));
        prop_assert_eq!(pa.log_eq(&pb).to_logic_vec(), ops::log_eq(&ra, &rb));
        prop_assert_eq!(pa.log_ne(&pb).to_logic_vec(), ops::log_ne(&ra, &rb));
        prop_assert_eq!(
            PackedVec::from_bool(pa.case_eq(&pb)).to_logic_vec(),
            ops::case_eq(&ra, &rb)
        );
        for signed in [false, true] {
            prop_assert_eq!(
                pa.cmp_lt(&pb, signed).to_logic_vec(),
                ops::cmp_lt(&ra, &rb, signed),
                "signed={}", signed
            );
        }
    }

    /// Logical connectives and reductions.
    #[test]
    fn logic_and_reductions_match(a in fourstate(), b in fourstate()) {
        let (ra, rb) = (lv(&a), lv(&b));
        let (pa, pb) = (pv(&a), pv(&b));
        prop_assert_eq!(pa.log_and(&pb).to_logic_vec(), ops::log_and(&ra, &rb));
        prop_assert_eq!(pa.log_or(&pb).to_logic_vec(), ops::log_or(&ra, &rb));
        prop_assert_eq!(pa.log_not().to_logic_vec(), ops::log_not(&ra));
        for invert in [false, true] {
            prop_assert_eq!(
                pa.reduce_and(invert).to_logic_vec(),
                ops::reduce(&ra, LogicBit::and, invert)
            );
            prop_assert_eq!(
                pa.reduce_or(invert).to_logic_vec(),
                ops::reduce(&ra, LogicBit::or, invert)
            );
            prop_assert_eq!(
                pa.reduce_xor(invert).to_logic_vec(),
                ops::reduce(&ra, LogicBit::xor, invert)
            );
        }
    }

    /// Structural operations: slice (with out-of-range x fill), concat,
    /// replicate, resize (zero- and sign-extension).
    #[test]
    fn structure_matches(a in fourstate(), b in fourstate(), lo in 0usize..220, w in 1usize..80, n in 1usize..4) {
        let (ra, rb) = (lv(&a), lv(&b));
        let (pa, pb) = (pv(&a), pv(&b));
        prop_assert_eq!(pa.slice(lo, w).to_logic_vec(), ra.slice(lo, w));
        prop_assert_eq!(pa.concat(&pb).to_logic_vec(), ra.concat(&rb));
        prop_assert_eq!(pa.replicate(n).to_logic_vec(), ops::replicate(&ra, n));
        for signed in [false, true] {
            prop_assert_eq!(
                pa.resize(w, signed).to_logic_vec(),
                ra.resize(w, signed),
                "resize({}, {})", w, signed
            );
            prop_assert_eq!(
                pa.resize(w + 150, signed).to_logic_vec(),
                ra.resize(w + 150, signed)
            );
        }
    }

    /// case/casez/casex label matching, against the interpreter's rule.
    #[test]
    fn case_matching_matches(a in fourstate(), b in fourstate()) {
        let (ra, rb) = (lv(&a), lv(&b));
        let (pa, pb) = (pv(&a), pv(&b));
        for (wild_z, wild_x) in [(false, false), (true, false), (false, true)] {
            prop_assert_eq!(
                pa.matches_with_wildcards(&pb, wild_z, wild_x),
                ref_case_match(&ra, &rb, wild_z, wild_x),
                "wild_z={} wild_x={}", wild_z, wild_x
            );
        }
        // A vector always matches itself under every wildcard regime
        // except Exact-with-unknowns.
        prop_assert_eq!(
            pa.matches_with_wildcards(&pa, false, false),
            ref_case_match(&ra, &ra, false, false)
        );
    }

    /// The x-condition ternary merge.
    #[test]
    fn ternary_merge_matches(a in fourstate(), b in fourstate()) {
        let (ra, rb) = (lv(&a), lv(&b));
        let (pa, pb) = (pv(&a), pv(&b));
        prop_assert_eq!(pa.ternary_merge(&pb).to_logic_vec(), ref_ternary_merge(&ra, &rb));
    }
}

// ---------------------------------------------------------------------------
// PackedBatch lane operations vs. the scalar PackedVec reference
// ---------------------------------------------------------------------------

use dda_verilog::PackedBatch;

/// Per-lane four-state patterns: a shared width spanning the 64-bit word
/// boundaries (1..200) and R ∈ {1, 4, 8} lanes. Equal-lane draws happen
/// often enough at width 1 to exercise the uniform-collapse path too.
#[derive(Debug, Clone, Copy)]
struct LanePatterns;

impl Strategy for LanePatterns {
    type Value = Vec<Vec<u8>>;
    fn generate(&self, rng: &mut proptest::TestRng) -> Vec<Vec<u8>> {
        let w = 1 + rng.below(199);
        let r = [1usize, 4, 8][rng.below(3)];
        (0..r)
            .map(|_| (0..w).map(|_| rng.below(4) as u8).collect())
            .collect()
    }
}

fn lane_patterns() -> LanePatterns {
    LanePatterns
}

/// Batch + the per-lane scalar reference vectors it was built from.
fn batch_of(lanes: &[Vec<u8>]) -> (PackedBatch, Vec<PackedVec>) {
    let scalars: Vec<PackedVec> = lanes.iter().map(|l| pv(l)).collect();
    (PackedBatch::from_lanes(&scalars), scalars)
}

proptest! {
    /// from_lanes -> lane is the identity, and all-equal lanes collapse to
    /// the uniform representation.
    #[test]
    fn batch_lane_round_trip(lanes in lane_patterns()) {
        let (b, scalars) = batch_of(&lanes);
        prop_assert_eq!(b.lanes(), scalars.len());
        prop_assert_eq!(b.width(), scalars[0].width());
        for (l, s) in scalars.iter().enumerate() {
            prop_assert_eq!(&b.lane(l), s, "lane {}", l);
            prop_assert!(b.lane_eq(&b, l));
        }
        let all_equal = scalars.iter().all(|s| *s == scalars[0]);
        prop_assert_eq!(b.is_uniform(), all_equal);
        let splat = PackedBatch::splat(&scalars[0], scalars.len());
        prop_assert!(splat.is_uniform());
        prop_assert_eq!(splat.lane(scalars.len() - 1), scalars[0].clone());
    }

    /// lane_bit matches the scalar bit read at every index, including past
    /// the width (x fill) and at the lane-boundary words.
    #[test]
    fn batch_lane_bit_matches(lanes in lane_patterns()) {
        let (b, scalars) = batch_of(&lanes);
        let w = b.width();
        for (l, s) in scalars.iter().enumerate() {
            for i in [0, 1, 63, 64, 65, 127, 128, w - 1, w, w + 7] {
                prop_assert_eq!(b.lane_bit(l, i), s.bit(i), "lane {} bit {}", l, i);
            }
            prop_assert_eq!(b.truthy_lane(l), s.truthy(), "lane {}", l);
        }
    }

    /// The vectorized bitwise ops equal the scalar kernel applied per lane;
    /// map2 lifts any scalar kernel faithfully.
    #[test]
    fn batch_bitwise_matches(a in lane_patterns()) {
        // Second operand: lanes reversed, so uniform/varied combinations
        // and per-lane x/z mixtures both occur.
        let (ba, sa) = batch_of(&a);
        let rev: Vec<Vec<u8>> = a.iter().rev().cloned().collect();
        let (bb, sb) = batch_of(&rev);
        let cases: [(&str, PackedBatch, fn(&PackedVec, &PackedVec) -> PackedVec); 4] = [
            ("and", ba.bit_and(&bb), PackedVec::bit_and),
            ("or", ba.bit_or(&bb), PackedVec::bit_or),
            ("xor", ba.bit_xor(&bb), PackedVec::bit_xor),
            ("xnor", ba.bit_xnor(&bb), PackedVec::bit_xnor),
        ];
        for (name, got, f) in cases {
            for l in 0..sa.len() {
                prop_assert_eq!(got.lane(l), f(&sa[l], &sb[l]), "{} lane {}", name, l);
            }
        }
        let mapped = ba.map2(&bb, |x, y| x.add(y));
        for l in 0..sa.len() {
            prop_assert_eq!(mapped.lane(l), sa[l].add(&sb[l]), "map2 add lane {}", l);
        }
        let negged = ba.map1(|x| x.neg());
        for l in 0..sa.len() {
            prop_assert_eq!(negged.lane(l), sa[l].neg(), "map1 neg lane {}", l);
        }
    }

    /// ne_mask has exactly the bits of the lanes whose values differ.
    #[test]
    fn batch_ne_mask_matches(a in lane_patterns()) {
        let (ba, sa) = batch_of(&a);
        let rev: Vec<Vec<u8>> = a.iter().rev().cloned().collect();
        let (bb, sb) = batch_of(&rev);
        let mask = ba.ne_mask(&bb);
        for l in 0..sa.len() {
            prop_assert_eq!(mask & (1u64 << l) != 0, sa[l] != sb[l], "lane {}", l);
            prop_assert_eq!(ba.lane_eq(&bb, l), sa[l] == sb[l], "lane_eq {}", l);
        }
        prop_assert_eq!(ba.ne_mask(&ba), 0);
    }

    /// set_range_batch equals the scalar set_range applied per lane, for
    /// in-range, boundary-straddling, and fully out-of-range windows.
    #[test]
    fn batch_set_range_matches(a in lane_patterns(), src in lane_patterns(), lo in 0usize..220) {
        let (ba, sa) = batch_of(&a);
        // Align the source batch to the destination's lane count.
        let lanes = sa.len();
        let src_scalars: Vec<PackedVec> = (0..lanes).map(|l| pv(&src[l % src.len()])).collect();
        let bsrc = PackedBatch::from_lanes(&src_scalars);
        let w = bsrc.width();
        let mut got = ba.clone();
        got.set_range_batch(lo, w, &bsrc);
        for l in 0..lanes {
            let mut want = sa[l].clone();
            want.set_range(lo, w, &src_scalars[l]);
            prop_assert_eq!(got.lane(l), want, "lane {} lo {} w {}", l, lo, w);
        }
    }
}
