//! Observability reconciliation for the batch engine (PR-8 satellite):
//! the counters a batched run records in `dda_obs` — batches launched,
//! lanes launched, divergence fallbacks, fused-instruction hits — must
//! reconcile *exactly* with the [`BatchReport`] the run returns, on the
//! uniform fast path, under forced divergence, and on the static-scan
//! fallback. A final test guards the fusion switch itself: compiling with
//! fusion off must produce identical results and zero fused hits.
//!
//! The recorder is process-global, so every test takes `OBS_LOCK` and
//! starts from `dda_obs::reset()` (the same discipline as
//! `crates/core/tests/obs_reconcile.rs`).

use dda_sim::{
    elaborate, fusion_enabled, set_fusion, BatchReport, BatchSim, Design, SimOptions, SimResult,
    Simulator,
};
use std::sync::{Mutex, MutexGuard};

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Serializes recorder access and hands back a clean, enabled recorder.
fn recorder() -> MutexGuard<'static, ()> {
    let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dda_obs::reset();
    dda_obs::enable();
    guard
}

fn design(src: &str, top: &str) -> Design {
    let sf = dda_verilog::parse(src).expect("parses");
    elaborate(&sf, top).expect("elaborates")
}

fn scalar_run(d: &Design) -> SimResult {
    Simulator::from_design(d.clone())
        .run(&SimOptions::default())
        .expect("scalar run")
}

/// Deterministic clocked fixture whose expressions hit all three fusion
/// peepholes: a comparison feeding a ternary (compare+select), signal
/// loads feeding adds (load+bin), and constant addends (const+bin).
const FUSABLE_SRC: &str = "module tb;\n\
     reg clk = 0; reg [7:0] a = 3, b = 7; reg [15:0] acc = 0;\n\
     always #5 clk = ~clk;\n\
     always @(posedge clk) begin\n\
       acc <= acc + ((a < b) ? {8'd0, a} : {8'd0, b}) + 16'd3;\n\
       a <= a + 8'd5;\n\
       b <= b + 8'd1;\n\
     end\n\
     initial begin #105 $display(\"acc=%0d a=%0d b=%0d\", acc, a, b); $finish; end\n\
     endmodule";

/// Uniform fast path: one batch, R lanes, no fallbacks, and the
/// fused-hit count equals a single scalar run's — lockstep executes each
/// fused instruction once for the whole batch, not once per lane.
#[test]
fn uniform_batch_counters_reconcile_with_report() {
    let d = design(FUSABLE_SRC, "tb");
    let _g = recorder();

    let want = scalar_run(&d);
    let scalar_snap = dda_obs::snapshot();
    let scalar_fused = scalar_snap.counter("sim.fused.hits");
    assert!(scalar_fused > 0, "fixture must hit fused superinstructions");
    assert_eq!(scalar_snap.counter("sim.run.bytecode"), 1);
    assert_eq!(scalar_snap.counter("sim.run.batch"), 0);

    dda_obs::reset();
    dda_obs::enable();
    let mut batch = BatchSim::new(d.clone(), vec![None; 6]);
    let results = batch.run(&SimOptions::default());
    for (lane, got) in results.iter().enumerate() {
        assert_eq!(got.as_ref().expect("lane runs"), &want, "lane {lane}");
    }
    assert_eq!(
        batch.report(),
        &BatchReport {
            lanes: 6,
            lockstep_completed: 6,
            diverged: 0,
            unsupported: false,
        }
    );

    let snap = dda_obs::snapshot();
    assert_eq!(snap.counter("sim.run.batch"), 1);
    assert_eq!(snap.counter("sim.batch.lanes"), 6);
    assert_eq!(snap.counter("sim.batch.fallback"), 0);
    assert_eq!(
        snap.counter("sim.run.bytecode"),
        0,
        "no lane retired, so no scalar reruns"
    );
    assert_eq!(
        snap.counter("sim.fused.hits"),
        scalar_fused,
        "uniform lockstep executes each fused instruction once per batch"
    );
    dda_obs::disable();
}

/// Forced divergence: distinct `$random` seeds branch differently, so
/// disagreeing lanes retire to the scalar engine. The fallback counter
/// must equal the report's `diverged`, and each retired lane shows up as
/// exactly one scalar bytecode rerun.
#[test]
fn diverging_batch_fallbacks_reconcile_with_report() {
    let src = "module tb;\n\
         reg [31:0] r;\n\
         initial begin\n\
           r = $random;\n\
           if (r[0]) $display(\"odd %h\", r);\n\
           else $display(\"even %h\", r);\n\
           $finish;\n\
         end\n\
         endmodule";
    let d = design(src, "tb");
    let _g = recorder();

    let seeds: Vec<Option<u64>> = (0..8).map(Some).collect();
    let mut batch = BatchSim::new(d, seeds);
    let results = batch.run(&SimOptions::default());
    assert_eq!(results.len(), 8);
    for (lane, got) in results.iter().enumerate() {
        assert!(got.is_ok(), "lane {lane}: {got:?}");
    }
    let report = batch.report().clone();
    assert!(!report.unsupported);
    assert_eq!(report.lanes, 8);
    assert_eq!(report.lockstep_completed + report.diverged, 8);
    assert!(report.diverged > 0, "fixture must force a divergent branch");

    let snap = dda_obs::snapshot();
    assert_eq!(snap.counter("sim.run.batch"), 1);
    assert_eq!(snap.counter("sim.batch.lanes"), 8);
    assert_eq!(snap.counter("sim.batch.fallback"), report.diverged as u64);
    assert_eq!(
        snap.counter("sim.run.bytecode"),
        report.diverged as u64,
        "each retired lane reruns exactly once on the scalar engine"
    );
    dda_obs::disable();
}

/// Static-scan fallback (`$monitor`): every lane runs scalar, and the
/// fallback counter says so — `lanes` fallbacks, `lanes` scalar reruns,
/// zero fused hits from the (never-started) lockstep core.
#[test]
fn unsupported_design_fallback_reconciles_with_report() {
    let src = "module tb;\n\
         reg [3:0] n = 0;\n\
         initial begin $monitor(\"n=%0d\", n); n = 1; #1 n = 2; #1 $finish; end\n\
         endmodule";
    let d = design(src, "tb");
    let _g = recorder();

    let mut batch = BatchSim::new(d, vec![None, Some(1), Some(2)]);
    let results = batch.run(&SimOptions::default());
    assert_eq!(results.len(), 3);
    for got in &results {
        assert!(got.is_ok(), "{got:?}");
    }
    assert_eq!(
        batch.report(),
        &BatchReport {
            lanes: 3,
            lockstep_completed: 0,
            diverged: 0,
            unsupported: true,
        }
    );

    let snap = dda_obs::snapshot();
    assert_eq!(snap.counter("sim.run.batch"), 1);
    assert_eq!(snap.counter("sim.batch.lanes"), 3);
    assert_eq!(snap.counter("sim.batch.fallback"), 3);
    assert_eq!(snap.counter("sim.run.bytecode"), 3);
    dda_obs::disable();
}

/// Restores fusion even when an assertion in the test body fails, so a
/// red test can't leak a fusion-off compiler into the other tests.
struct FusionOn;
impl Drop for FusionOn {
    fn drop(&mut self) {
        set_fusion(true);
    }
}

/// The fusion switch itself: a design compiled with fusion off must
/// produce a bit-identical result with zero fused hits, and the switch is
/// consulted at compile time (fresh designs per setting). Runs under
/// `OBS_LOCK` because flipping the process-global switch mid-compile
/// would perturb the fused-hit reconciliation above.
#[test]
fn fusion_off_is_equivalent_and_records_no_hits() {
    let _g = recorder();
    assert!(fusion_enabled(), "fusion ships enabled");

    let fused = scalar_run(&design(FUSABLE_SRC, "tb"));
    let fused_snap = dda_obs::snapshot();
    assert!(fused_snap.counter("sim.fused.hits") > 0);

    dda_obs::reset();
    dda_obs::enable();
    set_fusion(false);
    let _restore = FusionOn;
    let plain = scalar_run(&design(FUSABLE_SRC, "tb"));
    let plain_snap = dda_obs::snapshot();
    assert_eq!(
        plain_snap.counter("sim.fused.hits"),
        0,
        "fusion-off compile must emit no superinstructions"
    );
    assert_eq!(plain, fused, "fusion changed observable behaviour");
    dda_obs::disable();
}
