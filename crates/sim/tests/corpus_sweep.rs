//! Robustness sweep: every corpus family, auto-instrumented with a generic
//! clock/reset testbench, must elaborate and simulate without hard errors.
//! This is the "can the simulator take arbitrary realistic RTL" test that
//! the evaluation harness depends on.

use dda_sim::{SimOptions, Simulator};
use dda_verilog::ast::PortDir;
use dda_verilog::parse;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds a generic testbench: clock on any `clk`-ish input, reset pulse on
/// any `rst`-ish input, zeros elsewhere, run 200 time units.
fn generic_testbench(source: &str) -> Option<String> {
    let sf = parse(source).ok()?;
    let m = sf.modules.first()?;
    let mut decls = String::new();
    let mut conns = Vec::new();
    let mut stim = String::new();
    for p in &m.ports {
        let dir = p.dir.or_else(|| {
            m.items.iter().find_map(|i| match i {
                dda_verilog::Item::Port(pd) if pd.names.iter().any(|n| n.name == p.name.name) => {
                    Some(pd.dir)
                }
                _ => None,
            })
        })?;
        let range = p
            .range
            .as_ref()
            .map(|r| {
                format!(
                    "[{}:{}] ",
                    dda_verilog::printer::print_expr(&r.msb),
                    dda_verilog::printer::print_expr(&r.lsb)
                )
            })
            .unwrap_or_default();
        let name = &p.name.name;
        match dir {
            PortDir::Input => {
                decls.push_str(&format!("reg {range}{name} = 0;\n"));
                let lower = name.to_lowercase();
                if lower.contains("clk") || lower.contains("clock") {
                    stim.push_str(&format!("always #5 {name} = ~{name};\n"));
                } else if lower.contains("rst") || lower.contains("reset") {
                    stim.push_str(&format!("initial begin {name} = 1; #12 {name} = 0; end\n"));
                }
            }
            PortDir::Output | PortDir::Inout => {
                decls.push_str(&format!("wire {range}{name};\n"));
            }
        }
        conns.push(format!(".{name}({name})"));
    }
    Some(format!(
        "{source}\nmodule sweep_tb;\n{decls}{} dut({});\n{stim}initial #200 $finish;\nendmodule\n",
        m.name.name,
        conns.join(", ")
    ))
}

#[test]
fn every_family_survives_a_generic_testbench() {
    let mut rng = SmallRng::seed_from_u64(314);
    let mut swept = 0;
    for (i, family) in dda_corpus::Family::ALL.iter().enumerate() {
        for round in 0..3 {
            let m = dda_corpus::generate_module(*family, i * 10 + round, &mut rng);
            let Some(tb) = generic_testbench(&m.source) else {
                panic!("{family}: could not build a testbench:\n{}", m.source);
            };
            let sf = parse(&tb).unwrap_or_else(|e| panic!("{family}: {e}\n{tb}"));
            let mut sim = Simulator::new(&sf, "sweep_tb")
                .unwrap_or_else(|e| panic!("{family}: elaboration failed: {e}"));
            let result = sim
                .run(&SimOptions {
                    max_time: 1_000,
                    max_steps: 2_000_000,
                    ..SimOptions::default()
                })
                .unwrap_or_else(|e| panic!("{family}: simulation failed: {e}\n{}", m.source));
            assert!(result.finished, "{family}: testbench never finished");
            swept += 1;
        }
    }
    assert_eq!(swept, dda_corpus::Family::ALL.len() * 3);
}

#[test]
fn swept_designs_produce_waveforms() {
    let mut rng = SmallRng::seed_from_u64(99);
    let m = dda_corpus::generate_module(dda_corpus::Family::WrapCounter, 1, &mut rng);
    let tb = generic_testbench(&m.source).expect("tb");
    let sf = parse(&tb).unwrap();
    let mut sim = Simulator::new(&sf, "sweep_tb").unwrap();
    sim.enable_vcd(dda_sim::VcdRecorder::new());
    sim.run(&SimOptions::default()).unwrap();
    let vcd = sim.take_vcd().unwrap();
    assert!(vcd.len() > 20, "only {} transitions", vcd.len());
    let text = vcd.render("1ns");
    assert!(text.contains("$enddefinitions"));
}
