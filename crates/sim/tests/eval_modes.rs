//! Dual-engine equivalence: every program in this battery must produce an
//! identical [`SimResult`] (output text, final time, finished flag, error
//! count) under the AST interpreter and the bytecode engine, and identical
//! run errors when a budget trips. The battery leans on the constructs the
//! compiler lowers specially: wide vectors, part selects, concatenation
//! lvalues, memories, case wildcards, functions, `$random`, nonblocking
//! and intra-assignment delays, `wait`, and `$monitor`.

use dda_sim::{EvalMode, RunErrorKind, SimOptions, Simulator};

fn opts(mode: EvalMode) -> SimOptions {
    SimOptions {
        eval_mode: mode,
        ..SimOptions::default()
    }
}

/// Runs `src` under both engines and asserts the results are identical;
/// returns the (shared) output for optional content checks.
fn both(src: &str, top: &str) -> String {
    let run = |mode: EvalMode| {
        let sf = dda_verilog::parse(src).expect("parses");
        let mut sim = Simulator::new(&sf, top).expect("elaborates");
        sim.seed_random(7);
        sim.run(&opts(mode)).expect("runs")
    };
    let ast = run(EvalMode::Ast);
    let byte = run(EvalMode::Bytecode);
    assert_eq!(ast, byte, "engines diverged on:\n{src}");
    byte.output
}

#[test]
fn counters_and_edges() {
    let out = both(
        "module tb;\n\
         reg clk = 0; reg [7:0] n = 0;\n\
         always #5 clk = ~clk;\n\
         always @(posedge clk) n <= n + 1;\n\
         initial begin #52 $display(\"n=%0d t=%0t\", n, $time); $finish; end\n\
         endmodule",
        "tb",
    );
    assert_eq!(out.trim(), "n=5 t=52");
}

#[test]
fn wide_vectors_cross_word_boundaries() {
    let out = both(
        "module tb;\n\
         reg [127:0] a; reg [199:0] b; reg [63:0] c;\n\
         initial begin\n\
           a = {4{32'hDEAD_BEEF}};\n\
           b = {a, a[127:56]};\n\
           c = a[95:32] ^ b[63:0];\n\
           $display(\"%h %h %h\", a, b[199:136], c);\n\
           $display(\"%0d %0d\", a[64], b < {200{1'b1}});\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
    assert!(out.contains("deadbeef"), "{out}");
}

#[test]
fn x_and_z_propagation() {
    both(
        "module tb;\n\
         reg [3:0] a, b; reg [3:0] r;\n\
         wire [3:0] w = a & b;\n\
         initial begin\n\
           a = 4'b1xz0; b = 4'b1101;\n\
           #1 $display(\"%b %b\", w, a ? 4'hF : 4'h0);\n\
           r = a === 4'b1xz0 ? 4'd1 : 4'd2;\n\
           $display(\"%b %b %b\", r, a + b, !a);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn case_families_and_default_ordering() {
    // Default arm listed first must still lose to a later matching label
    // in both engines; casez/casex wildcards must agree.
    both(
        "module tb;\n\
         reg [3:0] s; integer i;\n\
         initial begin\n\
           for (i = 0; i < 4; i = i + 1) begin\n\
             s = i[3:0];\n\
             case (s)\n\
               default: $display(\"d %0d\", i);\n\
               4'd1: $display(\"one\");\n\
               4'd2, 4'd3: $display(\"pair\");\n\
             endcase\n\
             casez (s)\n\
               4'b00??: $display(\"z-low\");\n\
               default: $display(\"z-hi\");\n\
             endcase\n\
             casex (s)\n\
               4'b0x0x: $display(\"x-even\");\n\
               default: $display(\"x-other\");\n\
             endcase\n\
           end\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn memories_and_dynamic_indexing() {
    both(
        "module tb;\n\
         reg [15:0] mem [0:7]; reg [2:0] i; reg [15:0] acc;\n\
         initial begin\n\
           for (i = 0; i < 7; i = i + 1) mem[i] = {13'd0, i} * 16'd3;\n\
           acc = 0;\n\
           for (i = 0; i < 7; i = i + 1) acc = acc + mem[i];\n\
           mem[acc[2:0]] = 16'hFFFF;\n\
           $display(\"acc=%0d m0=%0d hit=%h\", acc, mem[0], mem[acc[2:0]]);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn part_select_and_concat_lvalues() {
    both(
        "module tb;\n\
         reg [31:0] r; reg [7:0] hi, lo; reg c;\n\
         initial begin\n\
           r = 32'hA5C3_0F17;\n\
           {hi, lo} = r[23:8];\n\
           r[3:0] = hi[7:4];\n\
           r[31-:4] = lo[3:0];\n\
           {c, r[11:8]} = {1'b1, hi[3:0]} + {1'b0, lo[7:4]};\n\
           $display(\"%h %h %h %b\", r, hi, lo, c);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn functions_and_signed_arithmetic() {
    both(
        "module tb;\n\
         reg signed [7:0] a, b; reg signed [15:0] p;\n\
         function [15:0] square; input signed [7:0] v; begin\n\
           square = v * v;\n\
         end endfunction\n\
         initial begin\n\
           a = -8'sd7; b = 8'sd3;\n\
           p = square(a);\n\
           $display(\"%0d %0d %0d %0d\", p, a < b, a >>> 1, a / b);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn random_streams_are_identical() {
    // $random draws must come out of one shared stream: same seed, same
    // sequence, whichever engine evaluates the call.
    let out = both(
        "module tb;\n\
         integer i; reg [31:0] r;\n\
         initial begin\n\
           for (i = 0; i < 5; i = i + 1) begin\n\
             r = $random;\n\
             $display(\"%h\", r);\n\
           end\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
    assert_eq!(out.lines().count(), 5);
}

#[test]
fn nonblocking_and_intra_assignment_delays() {
    both(
        "module tb;\n\
         reg [7:0] a = 1, b = 2, c = 0;\n\
         initial begin\n\
           a <= #3 8'd10;\n\
           b <= a;\n\
           c = #2 a + b;\n\
           $display(\"t%0t %0d %0d %0d\", $time, a, b, c);\n\
           #10 $display(\"t%0t %0d %0d %0d\", $time, a, b, c);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn wait_and_event_controls() {
    both(
        "module tb;\n\
         reg flag = 0; reg [3:0] n = 0; reg clk = 0;\n\
         always #2 clk = ~clk;\n\
         always @(negedge clk) n <= n + 1;\n\
         initial #11 flag = 1;\n\
         initial begin\n\
           wait (flag) $display(\"woke t=%0t n=%0d\", $time, n);\n\
           @(posedge clk) $display(\"edge t=%0t\", $time);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn monitors_and_error_counting() {
    let run = |mode: EvalMode| {
        let src = "module tb;\n\
             reg [3:0] v = 0;\n\
             initial $monitor(\"v=%0d\", v);\n\
             initial begin\n\
               #1 v = 3; #1 v = 3; #1 v = 9;\n\
               $error(\"boom %0d\", v);\n\
               #1 $finish;\n\
             end\n\
             endmodule";
        let sf = dda_verilog::parse(src).expect("parses");
        let mut sim = Simulator::new(&sf, "tb").expect("elaborates");
        sim.run(&opts(mode)).expect("runs")
    };
    let ast = run(EvalMode::Ast);
    let byte = run(EvalMode::Bytecode);
    assert_eq!(ast, byte);
    assert_eq!(byte.error_count, 1);
    assert!(byte.output.contains("[ERROR] boom 9"), "{}", byte.output);
}

#[test]
fn repeat_while_forever_loops() {
    both(
        "module tb;\n\
         reg [7:0] n = 0; reg [7:0] m = 0; reg stop = 0;\n\
         initial forever begin #1 n = n + 1; if (n == 8) stop = 1; end\n\
         initial begin\n\
           repeat (3) m = m + 2;\n\
           while (m > 0) m = m - 1;\n\
           wait (stop) $display(\"n=%0d m=%0d\", n, m);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

#[test]
fn continuous_assignment_network() {
    both(
        "module adder(input [15:0] x, y, output [16:0] s);\n\
         assign s = x + y;\n\
         endmodule\n\
         module tb;\n\
         reg [15:0] x = 0, y = 0; wire [16:0] s;\n\
         adder dut(.x(x), .y(y), .s(s));\n\
         wire [15:0] folded = s[15:0] ^ {16{s[16]}};\n\
         initial begin\n\
           x = 16'hFFFF; y = 16'h0001;\n\
           #1 $display(\"%h %h\", s, folded);\n\
           x = 16'h1234; y = 16'h4321;\n\
           #1 $display(\"%h %h\", s, folded);\n\
           $finish;\n\
         end\n\
         endmodule",
        "tb",
    );
}

/// Step budgets must trip identically: the compiled executor's task
/// structure is 1:1 with the interpreter's, so a runaway loop exhausts
/// `max_steps` at the same count in both engines.
#[test]
fn step_budget_trips_identically() {
    let src = "module tb;\n\
         reg r = 0;\n\
         always r = ~r;\n\
         endmodule";
    let run = |mode: EvalMode, max_steps: u64| {
        let sf = dda_verilog::parse(src).expect("parses");
        let mut sim = Simulator::new(&sf, "tb").expect("elaborates");
        sim.run(&SimOptions {
            max_steps,
            eval_mode: mode,
            ..SimOptions::default()
        })
    };
    for budget in [10, 1_000, 9_999] {
        let ast = run(EvalMode::Ast, budget).expect_err("runaway");
        let byte = run(EvalMode::Bytecode, budget).expect_err("runaway");
        assert_eq!(ast.kind, RunErrorKind::StepBudget);
        assert_eq!(ast, byte, "budget {budget}");
    }
}

/// Same for the NBA delta limit (combinational feedback through
/// nonblocking assigns).
#[test]
fn delta_limit_trips_identically() {
    let src = "module tb;\n\
         reg a = 0;\n\
         always @(a) a <= ~a;\n\
         endmodule";
    let run = |mode: EvalMode| {
        let sf = dda_verilog::parse(src).expect("parses");
        let mut sim = Simulator::new(&sf, "tb").expect("elaborates");
        sim.run(&opts(mode))
    };
    let ast = run(EvalMode::Ast).expect_err("livelock");
    let byte = run(EvalMode::Bytecode).expect_err("livelock");
    assert_eq!(ast.kind, RunErrorKind::DeltaLimit);
    assert_eq!(ast, byte);
}
