//! Deterministic fault injection for the chipdda serving stack.
//!
//! This crate is a seeded, schedule-driven failpoint registry in the
//! spirit of tikv's `fail-rs`, with two deliberate differences:
//!
//! 1. **Determinism.** Whether a failpoint fires is a pure function of
//!    `(schedule seed, site name, per-site hit index)`. A chaos run that
//!    finds a bug is byte-replayable from the `(seed, schedule)` pair
//!    alone — no timing races in the *decision* to inject (the injected
//!    faults themselves may of course perturb timing).
//! 2. **Zero cost when compiled out.** The `fail_point!` / `fail_io!`
//!    macros are selected by this crate's `failpoints` cargo feature *at
//!    the macro definition site*. Without the feature they expand to
//!    nothing (or a constant `Ok(())`), so production builds carry no
//!    branch, no atomic load, and no registry.
//!
//! # Site catalog
//!
//! Sites are plain `&str` names threaded through the hot paths of the
//! runtime pool, the serve daemon, the sim design cache, and the journal.
//! The canonical list lives in [`SITES`]; DESIGN.md §5h documents what
//! each site means and which actions are meaningful there.
//!
//! # Usage
//!
//! ```ignore
//! // In library code (any build):
//! dda_fail::fail_point!("pool.exec");                   // Panic / Sleep
//! dda_fail::fail_point!("pool.submit", Err(SubmitError::Overloaded { depth }));
//! dda_fail::fail_io!("journal.append")?;                // injected io::Error
//!
//! // In a chaos test (built with `--features failpoints`):
//! let schedule = dda_fail::FaultSchedule::parse(
//!     "seed=42;serve.dispatch=panic@hit:3;journal.append=ioerr@every:0:2",
//! )?;
//! dda_fail::install(schedule)?;
//! // ... drive the system ...
//! let fired = dda_fail::fired_log();                    // what actually fired
//! dda_fail::deactivate();
//! ```

#![deny(missing_docs)]

use std::fmt;

/// Canonical failpoint site names threaded through the stack.
///
/// | site | layer | meaningful actions |
/// |------|-------|--------------------|
/// | `pool.submit` | `dda-runtime` pool admission | `return` (shed as `Overloaded`) |
/// | `pool.exec` | worker thread, before running a job | `panic` (caught per-job), `sleep` |
/// | `pool.watchdog` | watchdog sweep loop | `panic` (caught; loop survives), `sleep` |
/// | `serve.conn.read` | daemon per-connection frame read | `ioerr`, `sleep` |
/// | `serve.conn.write` | daemon response frame write | `ioerr`, `sleep` |
/// | `serve.dispatch` | daemon handler dispatch, pre-submit | `panic` (crashes the service loop) |
/// | `sim.cache.lock` | design-cache shard lock acquisition | `sleep` |
/// | `sim.cache.evict` | design-cache LRU eviction | `sleep` |
/// | `journal.append` | journal line append | `ioerr` |
/// | `journal.fsync` | journal durability sync | `ioerr` |
/// | `slm.shard.merge` | sharded retrieval, pre-merge of per-shard top-k | `panic` (caught per-request), `sleep` |
/// | `slm.shard.compact` | shard compaction, before any mutation | `panic` (index stays consistent), `sleep` |
/// | `eval.agent.round` | agent chain, top of each tool-feedback round | `panic` (quarantines the chain), `sleep` |
///
/// New sites append at the END of this list: [`FaultSchedule::generate`]
/// draws one ordered stream across the sites, so appending keeps every
/// earlier site's generated rules byte-identical for any pinned seed.
pub const SITES: &[&str] = &[
    "pool.submit",
    "pool.exec",
    "pool.watchdog",
    "serve.conn.read",
    "serve.conn.write",
    "serve.dispatch",
    "sim.cache.lock",
    "sim.cache.evict",
    "journal.append",
    "journal.fsync",
    "slm.shard.merge",
    "slm.shard.compact",
    "eval.agent.round",
];

/// Whether the failpoint machinery was compiled into this build.
///
/// Always available, so callers (CLI, benches, CI guards) can report the
/// build flavor without `cfg` gymnastics of their own.
pub const fn compiled() -> bool {
    cfg!(feature = "failpoints")
}

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the site (`panic!`), simulating a crash of the
    /// surrounding component. Whether that is fatal depends on the site:
    /// `pool.exec` panics are caught per-job, `serve.dispatch` panics
    /// take down the service loop.
    Panic,
    /// Sleep for the given number of milliseconds, simulating a stall
    /// (slow disk, contended lock, scheduling hiccup).
    Sleep(u64),
    /// Inject an `io::Error` (only meaningful at `fail_io!` sites).
    IoErr,
    /// Early-return the expression given at the `fail_point!` site (only
    /// meaningful at two-argument `fail_point!` sites, e.g. shedding a
    /// submit as `Overloaded`).
    Return,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Panic => write!(f, "panic"),
            FaultAction::Sleep(ms) => write!(f, "sleep:{ms}"),
            FaultAction::IoErr => write!(f, "ioerr"),
            FaultAction::Return => write!(f, "return"),
        }
    }
}

/// When an armed failpoint fires, as a function of the per-site hit
/// index (0-based count of executions of that site since [`install`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly once, on the N-th hit.
    OnHit(u64),
    /// Fire on hit `start`, then every `every` hits after that.
    Every {
        /// First hit index that fires.
        start: u64,
        /// Period between firing hits (must be ≥ 1).
        every: u64,
    },
    /// Fire on each hit with probability `p`/1000, decided by a pure
    /// splitmix64 hash of `(schedule seed, site, hit index)` — random in
    /// distribution, deterministic in replay.
    Permille(u16),
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::OnHit(n) => write!(f, "hit:{n}"),
            Trigger::Every { start, every } => write!(f, "every:{start}:{every}"),
            Trigger::Permille(p) => write!(f, "permille:{p}"),
        }
    }
}

/// One armed failpoint: a site, what to do, and when to do it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Failpoint site name (see [`SITES`]).
    pub site: String,
    /// Action taken when the trigger fires.
    pub action: FaultAction,
    /// When the action fires.
    pub trigger: Trigger,
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}@{}", self.site, self.action, self.trigger)
    }
}

/// A complete, self-describing fault schedule: a seed (feeding
/// [`Trigger::Permille`] coins) plus an ordered rule list. The first
/// rule matching a site whose trigger fires wins.
///
/// Schedules round-trip through a compact text grammar
/// ([`FaultSchedule::parse`] / [`FaultSchedule::to_spec`]) so a failing
/// chaos run can be reported, shrunk by hand, and replayed from a single
/// string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Seed for probabilistic triggers.
    pub seed: u64,
    /// Ordered rules; first match wins per site.
    pub rules: Vec<FaultRule>,
}

/// Error from [`FaultSchedule::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault schedule: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultSchedule {
    /// An empty schedule with the given seed.
    pub fn new(seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            rules: Vec::new(),
        }
    }

    /// Builder: appends a rule and returns the schedule.
    #[must_use]
    pub fn rule(mut self, site: &str, action: FaultAction, trigger: Trigger) -> FaultSchedule {
        self.rules.push(FaultRule {
            site: site.to_string(),
            action,
            trigger,
        });
        self
    }

    /// The pure decision function: does this schedule fire at `site` on
    /// its `hit`-th execution (0-based), and if so with what action?
    ///
    /// Depends only on `(self, site, hit)` — this is what makes chaos
    /// runs replayable from the schedule alone.
    pub fn decide(&self, site: &str, hit: u64) -> Option<FaultAction> {
        for r in &self.rules {
            if r.site != site {
                continue;
            }
            let fires = match r.trigger {
                Trigger::OnHit(n) => hit == n,
                Trigger::Every { start, every } => {
                    hit >= start && (hit - start).is_multiple_of(every.max(1))
                }
                Trigger::Permille(p) => {
                    let coin = splitmix64(
                        self.seed ^ fnv1a(site) ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    (coin % 1000) < u64::from(p)
                }
            };
            if fires {
                return Some(r.action);
            }
        }
        None
    }

    /// Serializes to the text grammar accepted by [`FaultSchedule::parse`]:
    /// `seed=N;site=action@trigger;...`.
    pub fn to_spec(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for r in &self.rules {
            out.push(';');
            out.push_str(&r.to_string());
        }
        out
    }

    /// Parses the `seed=N;site=action@trigger;...` grammar.
    ///
    /// Actions: `panic`, `sleep:MS`, `ioerr`, `return`. Triggers:
    /// `hit:N`, `every:START:PERIOD`, `permille:P`. A leading `seed=N`
    /// part is optional (defaults to 0, fine for schedules without
    /// `permille` rules).
    ///
    /// # Errors
    ///
    /// [`ParseError`] naming the offending part.
    pub fn parse(spec: &str) -> Result<FaultSchedule, ParseError> {
        let mut schedule = FaultSchedule::new(0);
        for (i, part) in spec.split(';').map(str::trim).enumerate() {
            if part.is_empty() {
                continue;
            }
            if let Some(seed) = part.strip_prefix("seed=") {
                if i != 0 {
                    return Err(ParseError(format!("seed must come first, got `{part}`")));
                }
                schedule.seed = seed
                    .parse()
                    .map_err(|_| ParseError(format!("bad seed `{seed}`")))?;
                continue;
            }
            let (site, rest) = part
                .split_once('=')
                .ok_or_else(|| ParseError(format!("rule `{part}` missing `=`")))?;
            let (action_s, trigger_s) = rest
                .split_once('@')
                .ok_or_else(|| ParseError(format!("rule `{part}` missing `@trigger`")))?;
            let action = parse_action(action_s)
                .ok_or_else(|| ParseError(format!("bad action `{action_s}` in `{part}`")))?;
            let trigger = parse_trigger(trigger_s)
                .ok_or_else(|| ParseError(format!("bad trigger `{trigger_s}` in `{part}`")))?;
            schedule.rules.push(FaultRule {
                site: site.to_string(),
                action,
                trigger,
            });
        }
        Ok(schedule)
    }

    /// Generates a pseudo-random schedule over `sites`, deterministically
    /// from `seed`. Used by the schedule-exploration harness: sweeping
    /// seeds sweeps schedules, and any failure names its seed.
    ///
    /// `Panic` actions are always armed with a finite [`Trigger::OnHit`]
    /// so a generated schedule causes a bounded number of crashes per
    /// site rather than a crash loop.
    pub fn generate(seed: u64, sites: &[&str]) -> FaultSchedule {
        let mut schedule = FaultSchedule::new(seed);
        let mut state = splitmix64(seed ^ 0x0DDA_FA11);
        let mut next = move || {
            state = splitmix64(state);
            state
        };
        for site in sites {
            // Arm roughly 60% of sites per schedule.
            if next() % 100 >= 60 {
                continue;
            }
            let action = match next() % 4 {
                0 => FaultAction::Sleep(1 + next() % 5),
                1 => FaultAction::IoErr,
                2 => FaultAction::Return,
                _ => FaultAction::Panic,
            };
            let trigger = if action == FaultAction::Panic {
                Trigger::OnHit(next() % 4)
            } else {
                match next() % 3 {
                    0 => Trigger::OnHit(next() % 8),
                    1 => Trigger::Every {
                        start: next() % 4,
                        every: 1 + next() % 4,
                    },
                    _ => Trigger::Permille(100 + (next() % 300) as u16),
                }
            };
            schedule.rules.push(FaultRule {
                site: (*site).to_string(),
                action,
                trigger,
            });
        }
        schedule
    }
}

fn parse_action(s: &str) -> Option<FaultAction> {
    match s {
        "panic" => Some(FaultAction::Panic),
        "ioerr" => Some(FaultAction::IoErr),
        "return" => Some(FaultAction::Return),
        _ => {
            let ms = s.strip_prefix("sleep:")?;
            ms.parse().ok().map(FaultAction::Sleep)
        }
    }
}

fn parse_trigger(s: &str) -> Option<Trigger> {
    if let Some(n) = s.strip_prefix("hit:") {
        return n.parse().ok().map(Trigger::OnHit);
    }
    if let Some(p) = s.strip_prefix("permille:") {
        return p.parse().ok().filter(|p| *p <= 1000).map(Trigger::Permille);
    }
    let rest = s.strip_prefix("every:")?;
    let (start, every) = rest.split_once(':')?;
    let every: u64 = every.parse().ok()?;
    if every == 0 {
        return None;
    }
    Some(Trigger::Every {
        start: start.parse().ok()?,
        every,
    })
}

/// One firing of a failpoint, for post-run reconciliation against the
/// `dda-obs` trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired {
    /// Site that fired.
    pub site: String,
    /// 0-based hit index at which it fired.
    pub hit: u64,
    /// Action taken.
    pub action: FaultAction,
}

/// Returned by [`install`] when this build was compiled without the
/// `failpoints` feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotCompiled;

impl fmt::Display for NotCompiled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dda-fail was compiled without the `failpoints` feature; rebuild with --features failpoints"
        )
    }
}

impl std::error::Error for NotCompiled {}

#[cfg(feature = "failpoints")]
mod registry {
    use super::{FaultAction, FaultSchedule, Fired, NotCompiled};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// Cap on the retained [`Fired`] log; totals keep counting past it.
    const FIRED_LOG_CAP: usize = 10_000;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static REGISTRY: Mutex<Option<Active>> = Mutex::new(None);

    struct Active {
        schedule: FaultSchedule,
        hits: HashMap<String, u64>,
        fired: Vec<Fired>,
        fired_total: u64,
    }

    fn registry() -> std::sync::MutexGuard<'static, Option<Active>> {
        // The registry lock is never held across an injected panic (eval
        // decides under the lock, the *macro* acts after it is released),
        // but be robust to poisoning from unrelated test panics anyway.
        REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Arms `schedule` as the process-global fault schedule, resetting
    /// all hit counters and the fired log.
    pub fn install(schedule: FaultSchedule) -> Result<(), NotCompiled> {
        let mut reg = registry();
        *reg = Some(Active {
            schedule,
            hits: HashMap::new(),
            fired: Vec::new(),
            fired_total: 0,
        });
        ACTIVE.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Disarms fault injection; subsequent site executions cost one
    /// relaxed atomic load and fire nothing.
    pub fn deactivate() {
        ACTIVE.store(false, Ordering::SeqCst);
        *registry() = None;
    }

    /// Whether a schedule is currently armed.
    pub fn is_active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// The firings recorded since [`install`] (capped at an internal
    /// limit; see [`fired_total`] for the uncapped count).
    pub fn fired_log() -> Vec<Fired> {
        registry()
            .as_ref()
            .map_or_else(Vec::new, |a| a.fired.clone())
    }

    /// Total number of firings since [`install`], uncapped.
    pub fn fired_total() -> u64 {
        registry().as_ref().map_or(0, |a| a.fired_total)
    }

    /// Per-site execution counts since [`install`] (every pass through a
    /// site, fired or not), sorted by site name.
    pub fn hit_counts() -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = registry().as_ref().map_or_else(Vec::new, |a| {
            a.hits.iter().map(|(k, v)| (k.clone(), *v)).collect()
        });
        v.sort();
        v
    }

    /// Decision point called by the `fail_point!` / `fail_io!` macros.
    ///
    /// Increments the site's hit counter and returns the scheduled
    /// action for this hit, if any. The decision (and the fired-log
    /// append) happens under the registry lock; the *action* is taken by
    /// the caller after the lock is released, so an injected panic never
    /// poisons the registry.
    pub fn eval(site: &str) -> Option<FaultAction> {
        if !ACTIVE.load(Ordering::Relaxed) {
            return None;
        }
        let action = {
            let mut reg = registry();
            let active = reg.as_mut()?;
            let hit = active.hits.entry(site.to_string()).or_insert(0);
            let this_hit = *hit;
            *hit += 1;
            let action = active.schedule.decide(site, this_hit)?;
            active.fired_total += 1;
            if active.fired.len() < FIRED_LOG_CAP {
                active.fired.push(Fired {
                    site: site.to_string(),
                    hit: this_hit,
                    action,
                });
            }
            action
        };
        dda_obs::count("fail.fired", 1);
        dda_obs::count(&format!("fail.fired.{site}"), 1);
        Some(action)
    }

    /// Performs the side-effecting part of `Panic` / `Sleep` actions;
    /// `IoErr` and `Return` are no-ops here (they only mean something at
    /// `fail_io!` / two-argument `fail_point!` sites).
    pub fn act_basic(site: &str, action: FaultAction) {
        match action {
            FaultAction::Panic => panic!("dda-fail: injected panic at failpoint `{site}`"),
            FaultAction::Sleep(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            FaultAction::IoErr | FaultAction::Return => {}
        }
    }

    /// Decision + action for `fail_io!` sites: `IoErr` becomes an
    /// `Err(io::Error)`, `Panic`/`Sleep` behave as at plain sites,
    /// `Return` is ignored.
    pub fn eval_io(site: &str) -> std::io::Result<()> {
        match eval(site) {
            Some(FaultAction::IoErr) => Err(std::io::Error::other(format!(
                "dda-fail: injected io error at `{site}`"
            ))),
            Some(other) => {
                act_basic(site, other);
                Ok(())
            }
            None => Ok(()),
        }
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{
    act_basic, deactivate, eval, eval_io, fired_log, fired_total, hit_counts, install, is_active,
};

#[cfg(not(feature = "failpoints"))]
mod stubs {
    use super::{FaultSchedule, Fired, NotCompiled};

    /// Compiled-out stub: always fails with [`NotCompiled`].
    pub fn install(_schedule: FaultSchedule) -> Result<(), NotCompiled> {
        Err(NotCompiled)
    }

    /// Compiled-out stub: no-op.
    pub fn deactivate() {}

    /// Compiled-out stub: always `false`.
    pub fn is_active() -> bool {
        false
    }

    /// Compiled-out stub: always empty.
    pub fn fired_log() -> Vec<Fired> {
        Vec::new()
    }

    /// Compiled-out stub: always 0.
    pub fn fired_total() -> u64 {
        0
    }

    /// Compiled-out stub: always empty.
    pub fn hit_counts() -> Vec<(String, u64)> {
        Vec::new()
    }
}

#[cfg(not(feature = "failpoints"))]
pub use stubs::{deactivate, fired_log, fired_total, hit_counts, install, is_active};

/// Marks a failpoint site.
///
/// One-argument form handles `Panic` and `Sleep` actions. The
/// two-argument form additionally honors [`FaultAction::Return`] by
/// early-returning the given expression from the enclosing function.
///
/// Compiled without the `failpoints` feature this expands to nothing.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        if let Some(__dda_fail_action) = $crate::eval($site) {
            $crate::act_basic($site, __dda_fail_action);
        }
    };
    ($site:expr, $ret:expr) => {
        if let Some(__dda_fail_action) = $crate::eval($site) {
            if __dda_fail_action == $crate::FaultAction::Return {
                return $ret;
            }
            $crate::act_basic($site, __dda_fail_action);
        }
    };
}

/// Marks a failpoint site (inert: this build compiled `dda-fail`
/// without the `failpoints` feature, so the expansion is empty).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($($tt:tt)*) => {{}};
}

/// Marks an I/O failpoint site; expands to an `std::io::Result<()>`
/// expression, so call sites write `fail_io!("journal.append")?;`.
///
/// `IoErr` actions surface as `Err`; `Panic`/`Sleep` behave as at plain
/// sites. Compiled without the `failpoints` feature this is a constant
/// `Ok(())`.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_io {
    ($site:expr) => {
        $crate::eval_io($site)
    };
}

/// Marks an I/O failpoint site (inert: constant `Ok(())` because this
/// build compiled `dda-fail` without the `failpoints` feature).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_io {
    ($($tt:tt)*) => {
        ::std::io::Result::<()>::Ok(())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let spec = "seed=42;serve.dispatch=panic@hit:3;journal.append=ioerr@every:0:2;sim.cache.lock=sleep:5@permille:250;pool.submit=return@hit:0";
        let s = FaultSchedule::parse(spec).unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.rules.len(), 4);
        assert_eq!(s.to_spec(), spec);
        assert_eq!(FaultSchedule::parse(&s.to_spec()).unwrap(), s);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultSchedule::parse("a=panic").is_err()); // missing trigger
        assert!(FaultSchedule::parse("a=boom@hit:1").is_err()); // bad action
        assert!(FaultSchedule::parse("a=panic@soon").is_err()); // bad trigger
        assert!(FaultSchedule::parse("a=panic@every:0:0").is_err()); // zero period
        assert!(FaultSchedule::parse("a=panic@permille:2000").is_err()); // > 1000
        assert!(FaultSchedule::parse("a=panic@hit:1;seed=9").is_err()); // seed not first
        assert!(FaultSchedule::parse("seed=pi").is_err());
    }

    #[test]
    fn seed_defaults_to_zero_and_empty_parts_skip() {
        let s = FaultSchedule::parse("a=ioerr@hit:1;;").unwrap();
        assert_eq!(s.seed, 0);
        assert_eq!(s.rules.len(), 1);
    }

    #[test]
    fn decide_is_pure_and_trigger_semantics_hold() {
        let s = FaultSchedule::new(7)
            .rule("a", FaultAction::Panic, Trigger::OnHit(2))
            .rule(
                "b",
                FaultAction::IoErr,
                Trigger::Every { start: 1, every: 3 },
            )
            .rule("c", FaultAction::Sleep(1), Trigger::Permille(500));
        assert_eq!(s.decide("a", 0), None);
        assert_eq!(s.decide("a", 2), Some(FaultAction::Panic));
        assert_eq!(s.decide("a", 3), None);
        assert_eq!(s.decide("b", 0), None);
        assert_eq!(s.decide("b", 1), Some(FaultAction::IoErr));
        assert_eq!(s.decide("b", 4), Some(FaultAction::IoErr));
        assert_eq!(s.decide("unknown", 5), None);
        // Permille: deterministic per (seed, site, hit) ...
        for hit in 0..64 {
            assert_eq!(s.decide("c", hit), s.decide("c", hit));
        }
        // ... roughly fair over many hits ...
        let fires = (0..1000).filter(|h| s.decide("c", *h).is_some()).count();
        assert!((300..700).contains(&fires), "p=0.5 fired {fires}/1000");
        // ... and seed-sensitive.
        let s2 = FaultSchedule {
            seed: 8,
            ..s.clone()
        };
        assert!(
            (0..1000).any(|h| s.decide("c", h) != s2.decide("c", h)),
            "different seeds should give different permille streams"
        );
    }

    #[test]
    fn first_matching_rule_wins() {
        let s = FaultSchedule::new(0)
            .rule("a", FaultAction::IoErr, Trigger::OnHit(1))
            .rule(
                "a",
                FaultAction::Panic,
                Trigger::Every { start: 0, every: 1 },
            );
        assert_eq!(s.decide("a", 0), Some(FaultAction::Panic));
        assert_eq!(s.decide("a", 1), Some(FaultAction::IoErr));
        assert_eq!(s.decide("a", 2), Some(FaultAction::Panic));
    }

    #[test]
    fn generate_is_deterministic_and_bounds_panics() {
        let a = FaultSchedule::generate(1234, SITES);
        let b = FaultSchedule::generate(1234, SITES);
        assert_eq!(a, b);
        assert_eq!(a.to_spec(), b.to_spec());
        let c = FaultSchedule::generate(1235, SITES);
        assert_ne!(a, c, "adjacent seeds should differ");
        // Every generated panic rule is a finite OnHit.
        for seed in 0..200u64 {
            for r in FaultSchedule::generate(seed, SITES).rules {
                if r.action == FaultAction::Panic {
                    assert!(matches!(r.trigger, Trigger::OnHit(_)), "{r}");
                }
            }
        }
        // Round-trips through the grammar.
        assert_eq!(FaultSchedule::parse(&a.to_spec()).unwrap(), a);
    }

    #[test]
    fn compiled_reports_feature_state() {
        assert_eq!(compiled(), cfg!(feature = "failpoints"));
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn stubs_when_compiled_out() {
        assert_eq!(install(FaultSchedule::new(1)), Err(NotCompiled));
        assert!(!is_active());
        assert!(fired_log().is_empty());
        assert_eq!(fired_total(), 0);
        assert!(hit_counts().is_empty());
        deactivate();
        // Macros are inert.
        fail_point!("nope");
        fail_point!("nope", ());
        assert!(fail_io!("nope").is_ok());
    }

    #[cfg(feature = "failpoints")]
    mod armed {
        use super::super::*;
        use std::sync::Mutex;

        /// The registry is process-global; serialize armed tests.
        static GATE: Mutex<()> = Mutex::new(());

        #[test]
        fn registry_fires_per_schedule_and_logs() {
            let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
            install(
                FaultSchedule::new(3)
                    .rule("t.io", FaultAction::IoErr, Trigger::OnHit(1))
                    .rule(
                        "t.ret",
                        FaultAction::Return,
                        Trigger::Every { start: 0, every: 2 },
                    ),
            )
            .unwrap();
            assert!(is_active());
            assert!(fail_io!("t.io").is_ok()); // hit 0
            assert!(fail_io!("t.io").is_err()); // hit 1 fires
            assert!(fail_io!("t.io").is_ok()); // hit 2

            fn guarded(out: &mut Vec<u32>) {
                fail_point!("t.ret", ());
                out.push(1);
            }
            let mut out = Vec::new();
            guarded(&mut out); // hit 0: returns early
            guarded(&mut out); // hit 1: runs
            guarded(&mut out); // hit 2: returns early
            assert_eq!(out, vec![1]);

            let fired = fired_log();
            assert_eq!(fired.len(), 3);
            assert_eq!(fired_total(), 3);
            assert_eq!(
                fired[0],
                Fired {
                    site: "t.io".into(),
                    hit: 1,
                    action: FaultAction::IoErr
                }
            );
            assert_eq!(
                hit_counts(),
                vec![("t.io".to_string(), 3), ("t.ret".to_string(), 3)]
            );
            deactivate();
            assert!(!is_active());
            assert!(fail_io!("t.io").is_ok());
            assert!(fired_log().is_empty());
        }

        #[test]
        fn injected_panic_is_catchable_and_does_not_poison() {
            let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
            install(FaultSchedule::new(0).rule("t.panic", FaultAction::Panic, Trigger::OnHit(0)))
                .unwrap();
            let r = std::panic::catch_unwind(|| fail_point!("t.panic"));
            assert!(r.is_err());
            // Registry still usable after the injected panic.
            assert_eq!(fired_total(), 1);
            fail_point!("t.panic"); // hit 1: no fire
            assert_eq!(hit_counts(), vec![("t.panic".to_string(), 2)]);
            deactivate();
        }

        #[test]
        fn replay_from_spec_is_byte_identical() {
            let _g = GATE.lock().unwrap_or_else(|p| p.into_inner());
            let schedule = FaultSchedule::generate(99, &["x", "y", "z"]);
            let mut runs = Vec::new();
            for _ in 0..2 {
                // Re-arm from the serialized spec alone.
                install(FaultSchedule::parse(&schedule.to_spec()).unwrap()).unwrap();
                for _ in 0..50 {
                    // Generated schedules may arm panics; catch them so
                    // the hit sequence keeps advancing identically.
                    for site in ["x", "y", "z"] {
                        let _ = std::panic::catch_unwind(|| {
                            let _ = fail_io!(site);
                        });
                    }
                }
                runs.push(fired_log());
                deactivate();
            }
            assert_eq!(runs[0], runs[1], "same spec must replay byte-identically");
        }
    }
}
