//! Determinism and observability batteries for the parallel agent batch
//! (PR-10 tentpole).
//!
//! 1. **Bit-equivalence** (proptest): with early-exit off, [`agent_batch`]
//!    at workers 1, 2, and 8 is bit-identical — `f64::to_bits` included —
//!    to the sequential reference [`agent_batch_sequential`], across
//!    random problems, levels, k, round budgets, and RAG on/off.
//! 2. **Early-exit invariance**: with early-exit on, the *committed*
//!    outcome (winner, its chains prefix, canonical cancelled suffix) is
//!    identical for any worker count and equal to the sequential
//!    reference.
//! 3. **Span ↔ outcome reconciliation**: one trace file plus the counter
//!    registry reconcile exactly with the returned [`AgentBatchOutcome`]
//!    (rounds, chains, winner), under the `OBS_LOCK` discipline of
//!    `crates/sim/tests/obs_batch.rs`.
//! 4. **Engine invariance**: lockstep lanes (`runs_per_batch`) and the
//!    batch simulator change wall-clock only, never an outcome.

use dda_benchmarks::thakur_suite;
use dda_eval::rag::RagIndex;
use dda_eval::{
    agent_batch, agent_batch_sequential, AgentBatchOptions, AgentBatchOutcome, AgentProtocol,
    EvalMode, ModelId, ModelZoo, ZooOptions,
};
use dda_slm::Slm;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, OnceLock};

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Serializes recorder access and hands back a clean, enabled recorder.
fn recorder() -> MutexGuard<'static, ()> {
    let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    dda_obs::reset();
    dda_obs::enable();
    guard
}

/// One shared model: finetuning is the expensive part of these tests, so
/// every case reuses the same zoo model (chains reseed per (problem,
/// level, chain), so sharing a model loses no coverage).
fn model() -> &'static Slm {
    static MODEL: OnceLock<ModelZoo> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            ModelZoo::build(&ZooOptions {
                corpus_modules: 24,
                ..ZooOptions::default()
            })
        })
        .model(ModelId::Ours13B)
}

/// A small shared retrieval index for the RAG-on cases.
fn rag() -> &'static RagIndex {
    static RAG: OnceLock<RagIndex> = OnceLock::new();
    RAG.get_or_init(|| {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4242);
        RagIndex::build(dda_corpus::generate_corpus(16, &mut rng))
    })
}

/// Field-by-field equality with `f64::to_bits` on the pass rates — the
/// "bit-identical" in the acceptance criteria, not an epsilon compare.
fn assert_bit_identical(a: &AgentBatchOutcome, b: &AgentBatchOutcome, what: &str) {
    assert_eq!(a.winner, b.winner, "{what}: winner");
    assert_eq!(a.rounds_total, b.rounds_total, "{what}: rounds_total");
    assert_eq!(a.quarantined, b.quarantined, "{what}: quarantined");
    assert_eq!(a.chains.len(), b.chains.len(), "{what}: chain count");
    for (ca, cb) in a.chains.iter().zip(&b.chains) {
        assert_eq!(ca.chain, cb.chain, "{what}: chain id");
        assert_eq!(ca.rounds, cb.rounds, "{what}: chain {} rounds", ca.chain);
        assert_eq!(
            ca.lint_clean, cb.lint_clean,
            "{what}: chain {} lint",
            ca.chain
        );
        assert_eq!(
            ca.function.to_bits(),
            cb.function.to_bits(),
            "{what}: chain {} function bits",
            ca.chain
        );
        assert_eq!(
            ca.repaired_by_loop, cb.repaired_by_loop,
            "{what}: chain {} repaired",
            ca.chain
        );
        assert_eq!(
            ca.cancelled, cb.cancelled,
            "{what}: chain {} cancelled",
            ca.chain
        );
    }
}

fn opts(k: usize, rounds: usize, workers: usize, early_exit: bool) -> AgentBatchOptions {
    AgentBatchOptions {
        k,
        workers,
        early_exit,
        protocol: AgentProtocol {
            max_feedback_iters: rounds,
            ..AgentProtocol::default()
        },
        ..AgentBatchOptions::default()
    }
}

proptest! {
    /// The acceptance-criteria property: early-exit-off parallel runs at
    /// workers 1/2/8 are bit-identical to the sequential reference.
    #[test]
    fn early_exit_off_is_bit_identical_across_worker_counts(
        pi in 0usize..8,
        level in 0usize..3,
        k in 1usize..=4,
        rounds in 0usize..=2,
        seed in 0u64..1000,
        use_rag in any::<bool>(),
    ) {
        let suite = thakur_suite();
        let problem = &suite[pi % suite.len()];
        let mut o = opts(k, rounds, 1, false);
        o.protocol.seed = 7331 ^ seed;
        let context = if use_rag {
            rag().context_for(&problem.prompts[level], 2)
        } else {
            Vec::new()
        };
        let reference = agent_batch_sequential(model(), problem, level, &context, &o);
        for workers in [1usize, 2, 8] {
            o.workers = workers;
            let got = agent_batch(model(), problem, level, &context, &o);
            assert_bit_identical(&got, &reference, &format!("workers={workers}"));
        }
    }
}

/// With early-exit on, the committed outcome is worker-count-invariant:
/// the winner and its prefix are deterministic, every chain above the
/// winner reports the canonical cancelled shape, regardless of how much
/// speculative work each worker count happened to do.
#[test]
fn early_exit_commit_is_worker_invariant() {
    let suite = thakur_suite();
    for (pi, level) in [(0usize, 2usize), (3, 1), (5, 2), (11, 0)] {
        let problem = &suite[pi];
        let o1 = opts(4, 2, 1, true);
        let reference = agent_batch_sequential(model(), problem, level, &[], &o1);
        for workers in [1usize, 2, 8] {
            let mut o = o1.clone();
            o.workers = workers;
            let got = agent_batch(model(), problem, level, &[], &o);
            assert_bit_identical(
                &got,
                &reference,
                &format!("early-exit p={pi} workers={workers}"),
            );
        }
        if let Some(w) = reference.winner {
            for c in &reference.chains[w + 1..] {
                assert!(c.cancelled, "chains above the winner are cancelled");
                assert_eq!(c.rounds, 0, "cancelled chains report canonical shape");
            }
        }
    }
}

/// Lockstep lanes and the batch simulator are stress knobs, not semantic
/// ones: outcomes are bit-identical across `runs_per_batch` and engines.
#[test]
fn lockstep_scoring_cannot_change_outcomes() {
    let suite = thakur_suite();
    let problem = &suite[2];
    let base = opts(3, 2, 2, false);
    let reference = agent_batch(model(), problem, 2, &[], &base);
    for (runs, mode) in [(4usize, EvalMode::Bytecode), (4, EvalMode::Batch)] {
        let mut o = base.clone();
        o.runs_per_batch = runs;
        o.eval_mode = mode;
        let got = agent_batch(model(), problem, 2, &[], &o);
        assert_bit_identical(&got, &reference, &format!("runs={runs} mode={mode:?}"));
    }
}

/// One trace file reconciles an entire agent run: counters and trace
/// events must agree exactly with the returned outcome.
#[test]
fn spans_and_counters_reconcile_with_outcome() {
    let _g = recorder();
    let trace = std::env::temp_dir().join(format!("agent_recon_{}.jsonl", std::process::id()));
    dda_obs::open_trace(&trace).expect("open trace");

    let suite = thakur_suite();
    let problem = &suite[1];
    let o = opts(3, 2, 2, false);
    let out = agent_batch(model(), problem, 2, &[], &o);

    let snap = dda_obs::snapshot();
    dda_obs::close_trace().expect("close trace");
    dda_obs::disable();

    // Counters ↔ outcome. Early-exit is off, so every chain committed:
    // started = k, passed + failed = k, cancelled = 0, and the round
    // counter is exactly the outcome's deterministic work measure.
    let k = o.k as u64;
    assert_eq!(snap.counter("agent.chain.started"), k);
    assert_eq!(
        snap.counter("agent.chain.passed") + snap.counter("agent.chain.failed"),
        k
    );
    assert_eq!(snap.counter("agent.chain.cancelled"), 0);
    assert_eq!(snap.counter("agent.round"), out.rounds_total as u64);

    // Span aggregates ↔ outcome: one agent.batch span, k agent.chain
    // spans, rounds_total agent.round spans.
    assert_eq!(snap.span("agent.batch").expect("batch span").count, 1);
    assert_eq!(snap.span("agent.chain").expect("chain span").count, k);
    assert_eq!(
        snap.span("agent.round").expect("round span").count,
        out.rounds_total as u64
    );

    // Trace events ↔ outcome.
    let events = dda_obs::read_trace(&trace).expect("read trace");
    let rounds: Vec<_> = events.iter().filter(|e| e.kind == "agent.round").collect();
    let chains: Vec<_> = events.iter().filter(|e| e.kind == "agent.chain").collect();
    let batches: Vec<_> = events.iter().filter(|e| e.kind == "agent.batch").collect();
    assert_eq!(rounds.len(), out.rounds_total, "one event per round");
    assert_eq!(chains.len(), out.chains.len(), "one event per chain");
    assert_eq!(batches.len(), 1, "one event per batch");

    for c in &out.chains {
        let ev = chains
            .iter()
            .find(|e| e.field("chain").and_then(|v| v.as_u64()) == Some(c.chain as u64))
            .expect("chain event present");
        assert_eq!(
            ev.field("rounds").and_then(|v| v.as_u64()),
            Some(c.rounds as u64),
            "chain {} rounds in trace",
            c.chain
        );
        let per_chain_rounds = rounds
            .iter()
            .filter(|e| e.field("chain").and_then(|v| v.as_u64()) == Some(c.chain as u64))
            .count();
        assert_eq!(per_chain_rounds, c.rounds, "chain {} round events", c.chain);
    }

    let batch = batches[0];
    assert_eq!(batch.field("k").and_then(|v| v.as_u64()), Some(k));
    assert_eq!(
        batch.field("rounds_total").and_then(|v| v.as_u64()),
        Some(out.rounds_total as u64)
    );
    assert_eq!(
        batch.field("winner").and_then(|v| v.as_u64()),
        out.winner.map(|w| w as u64)
    );

    let _ = std::fs::remove_file(&trace);
}
