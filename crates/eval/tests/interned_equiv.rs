//! End-to-end equivalence for the interned-token retrieval rewrite: a
//! full evaluation sweep must render *byte-identical* table rows whether
//! the model retrieves through the new postings-list index or the
//! retained linear-scan reference. This is the integration counterpart
//! of the per-component equivalence suites in `dda-slm/tests/interned.rs`
//! — if the two query paths ever disagree on any hit (score, doc, or tie
//! order), a generation changes and a rendered cell diverges here.

use dda_benchmarks::thakur_suite;
use dda_eval::report::{pct, TextTable};
use dda_eval::{eval_suite, GenProtocol, GenRow};
use dda_slm::{Slm, SlmProfile, PROGRESSIVE_ORDER};
use rand::SeedableRng;

fn trained_model() -> Slm {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let corpus = dda_corpus::generate_corpus(32, &mut rng);
    let (data, _report) = dda_core::pipeline::augment(
        &corpus,
        &dda_core::pipeline::PipelineOptions::default(),
        &mut rng,
    );
    Slm::finetune(SlmProfile::llama2(13.0), &data, &PROGRESSIVE_ORDER)
}

/// Renders sweep rows exactly the way the table binaries do.
fn render(rows: &[GenRow]) -> String {
    let mut table = TextTable::new(["Problem", "L1", "L2", "L3", "Pass"]);
    for r in rows {
        let mut cells = vec![r.id.to_string()];
        cells.extend(r.cells.iter().map(|c| pct(c.best_function)));
        cells.push(if r.is_success() { "yes" } else { "no" }.into());
        table.row(cells);
    }
    table.render()
}

#[test]
fn eval_rows_are_identical_across_retrieval_paths() {
    let mut model = trained_model();
    let problems: Vec<_> = thakur_suite().into_iter().take(6).collect();
    let protocol = GenProtocol {
        k: 3,
        ..GenProtocol::default()
    };
    let fast = eval_suite(&model, &problems, &protocol);
    model.set_reference_retrieval(true);
    let reference = eval_suite(&model, &problems, &protocol);
    assert_eq!(fast, reference, "sweep rows diverged between query paths");
    let fast_table = render(&fast);
    let ref_table = render(&reference);
    assert_eq!(
        fast_table.as_bytes(),
        ref_table.as_bytes(),
        "rendered tables are not byte-identical:\n{fast_table}\nvs\n{ref_table}"
    );
    // Sanity: the sweep actually exercised retrieval-backed generation.
    assert!(
        fast.iter()
            .flat_map(|r| &r.cells)
            .any(|c| c.best_function > 0.0),
        "sweep never reached functional scoring: {fast:?}"
    );
}
