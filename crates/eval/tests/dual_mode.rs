//! Sweep-level engine equivalence: a full pass@k evaluation must produce
//! byte-identical rows whether testbenches run on the AST interpreter or
//! the bytecode engine. This is the integration-level counterpart of the
//! per-program battery in `dda-sim/tests/eval_modes.rs` — if the engines
//! ever diverge on any generated candidate (including syntactically valid
//! but semantically wrong ones), a table cell changes and this fails.

use dda_benchmarks::{rtllm_suite, thakur_suite};
use dda_eval::repair_eval::{eval_repair_suite, RepairProtocol};
use dda_eval::{eval_suite, EvalMode, GenProtocol, ModelId, ModelZoo, ZooOptions};
use dda_slm::{Slm, SlmProfile, PROGRESSIVE_ORDER};

#[test]
fn generation_sweep_is_engine_invariant() {
    // A real augmentation-trained model, so some candidates actually pass
    // their testbenches (retrieval needs a non-empty finetune set).
    let zoo = ModelZoo::build(&ZooOptions {
        corpus_modules: 32,
        seed: 7,
        ..ZooOptions::default()
    });
    let m = zoo.model(ModelId::Ours13B);
    let problems: Vec<_> = thakur_suite().into_iter().take(5).collect();
    let run = |mode: EvalMode| {
        eval_suite(
            m,
            &problems,
            &GenProtocol {
                k: 3,
                eval_mode: mode,
                ..GenProtocol::default()
            },
        )
    };
    let ast = run(EvalMode::Ast);
    let byte = run(EvalMode::Bytecode);
    assert_eq!(ast, byte);
    // Sanity: the sweep exercised the simulator (some candidate scored).
    assert!(
        byte.iter()
            .flat_map(|r| &r.cells)
            .any(|c| c.best_function > 0.0),
        "sweep never reached functional scoring: {byte:?}"
    );
}

#[test]
fn repair_sweep_is_engine_invariant() {
    // Repair runs lint-guided search on the broken input, so a skill-floor
    // mock is enough to reach functional scoring — no dataset needed.
    let m = Slm::finetune(
        SlmProfile {
            name: "dual-mode-fix".into(),
            floor_repair: 0.95,
            ..SlmProfile::llama2(13.0)
        },
        &dda_core::Dataset::new(),
        &PROGRESSIVE_ORDER,
    );
    let problems: Vec<_> = rtllm_suite().into_iter().take(5).collect();
    let run = |mode: EvalMode| {
        eval_repair_suite(
            &m,
            &problems,
            &RepairProtocol {
                eval_mode: mode,
                ..RepairProtocol::default()
            },
        )
    };
    let ast = run(EvalMode::Ast);
    let byte = run(EvalMode::Bytecode);
    assert_eq!(ast, byte);
    assert!(
        byte.iter().any(|(_, c)| c.best_function > 0.0),
        "sweep never reached functional scoring: {byte:?}"
    );
}
