//! Verilog-generation evaluation (the paper's Table 5 protocol).
//!
//! For each benchmark problem and prompt level, sample `k` generations at
//! temperature 0.1, lint each for syntax, and run the problem's
//! self-checking testbench on the syntactically clean ones. A cell reports
//! the number of syntax-failing samples and the best functional pass rate;
//! a problem is *successful* when any level's best sample passes 100% of
//! its testbench checks.

use dda_benchmarks::{parse_result, VerilogProblem};
use dda_core::align::ALIGN_INSTRUCT;
use dda_runtime::CancelToken;
use dda_sim::cache::{shared_design, FrontendError};
use dda_sim::{run_batch, EvalMode, SimOptions, Simulator, MAX_BATCH_LANES};
use dda_slm::{GenOptions, Slm};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One (problem, level) cell of Table 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenCell {
    /// Samples (of `k`) rejected by the syntax checker.
    pub syntax_errors: usize,
    /// Best functional pass rate across the k samples, in `[0, 1]`.
    pub best_function: f64,
}

impl GenCell {
    /// Whether the best sample fully passed the testbench.
    pub fn is_success(&self) -> bool {
        self.best_function >= 1.0 - 1e-9
    }
}

/// Per-problem result: one cell per prompt level.
#[derive(Debug, Clone, PartialEq)]
pub struct GenRow {
    /// Problem id (table row label).
    pub id: &'static str,
    /// Cells in prompt-level order.
    pub cells: Vec<GenCell>,
}

impl GenRow {
    /// Success = any level reached a 100% functional pass.
    pub fn is_success(&self) -> bool {
        self.cells.iter().any(GenCell::is_success)
    }
}

/// Protocol options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenProtocol {
    /// Samples per cell (the paper uses pass@5).
    pub k: usize,
    /// Sampling temperature (the paper uses 0.1).
    pub temperature: f64,
    /// Base seed; sample `i` of cell `c` uses a derived seed.
    pub seed: u64,
    /// Simulator execution engine (bytecode by default; `Ast` reproduces
    /// the reference interpreter for differential runs).
    pub eval_mode: EvalMode,
    /// Simulation lanes per batched testbench run (`--runs-per-batch R`).
    /// At 1 (the default) every sample scores through the sequential
    /// scalar path. Above 1, identical candidate sources are scored `R`
    /// at a time through [`dda_sim::run_batch`]; lane results are
    /// bit-identical to the sequential path, so cells never change.
    pub runs_per_batch: usize,
}

impl Default for GenProtocol {
    fn default() -> Self {
        GenProtocol {
            k: 5,
            temperature: 0.1,
            seed: 99,
            eval_mode: EvalMode::default(),
            runs_per_batch: 1,
        }
    }
}

/// Outcome of one testbench run, distinguishing every failure mode on the
/// untrusted-input path instead of lumping them into a zero score.
#[derive(Debug, Clone, PartialEq)]
pub enum TestbenchVerdict {
    /// Simulation completed; the fraction of testbench checks that passed.
    Scored(f64),
    /// The generated module plus testbench failed to parse.
    ParseError(String),
    /// Elaboration rejected the design (bad hierarchy, width limits, ...).
    ElabError(String),
    /// Simulation exhausted a resource budget: the delta limit, the
    /// statement budget, or — when the run's [`SimOptions::cancel`] token
    /// carries a deadline — the *wall-clock* ceiling. The message records
    /// which budget tripped ([`dda_sim::RunErrorKind`] distinguishes them
    /// for callers holding the raw error).
    Timeout(String),
    /// The simulator panicked; the panic was caught and isolated.
    Crash(String),
}

impl TestbenchVerdict {
    /// Functional pass rate: the score when simulation completed, zero for
    /// every failure verdict (the paper's scoring).
    pub fn pass_rate(&self) -> f64 {
        match self {
            TestbenchVerdict::Scored(r) => *r,
            _ => 0.0,
        }
    }

    /// Whether this run hit a resource budget rather than failing outright.
    pub fn is_timeout(&self) -> bool {
        matches!(self, TestbenchVerdict::Timeout(_))
    }

    /// Whether this run crashed the simulator (caught panic).
    pub fn is_crash(&self) -> bool {
        matches!(self, TestbenchVerdict::Crash(_))
    }
}

/// The standard simulator budget for one testbench run, with the given
/// cancel token threaded in for wall-clock supervision.
pub fn testbench_sim_options(cancel: &CancelToken) -> SimOptions {
    SimOptions {
        max_time: 100_000,
        max_steps: 2_000_000,
        cancel: cancel.clone(),
        ..SimOptions::default()
    }
}

/// Runs a generated module against the problem's testbench and reports a
/// full [`TestbenchVerdict`]. Panics inside the simulator are caught and
/// surfaced as [`TestbenchVerdict::Crash`] so one bad sample cannot take
/// down an evaluation sweep.
pub fn run_testbench_verdict(problem: &VerilogProblem, generated: &str) -> TestbenchVerdict {
    run_testbench_verdict_with(
        problem,
        generated,
        &testbench_sim_options(&CancelToken::new()),
    )
}

/// [`run_testbench_verdict`] with caller-supplied [`SimOptions`] — the
/// supervised sweeps use this to thread a deadline-bearing
/// [`CancelToken`] into the simulator's exec loop.
pub fn run_testbench_verdict_with(
    problem: &VerilogProblem,
    generated: &str,
    opts: &SimOptions,
) -> TestbenchVerdict {
    let src = format!("{generated}\n{}", problem.testbench);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<TestbenchVerdict, TestbenchVerdict> {
            // The frontend result is memoized per thread: re-scoring the
            // same candidate (pass@k, repair loops) reuses the elaborated
            // design and its compiled bytecode instead of re-parsing.
            let design = shared_design(&src, "tb").map_err(|e| match e {
                FrontendError::Parse(m) => TestbenchVerdict::ParseError(m),
                FrontendError::Elab(e) => TestbenchVerdict::ElabError(e.message),
            })?;
            let mut sim = Simulator::from_design(design);
            let result = sim
                .run(opts)
                .map_err(|e| TestbenchVerdict::Timeout(e.to_string()))?;
            Ok(match parse_result(&result.output) {
                Some((pass, total)) if total > 0 => {
                    TestbenchVerdict::Scored(pass as f64 / total as f64)
                }
                _ => TestbenchVerdict::Scored(0.0),
            })
        },
    ));
    match outcome {
        Ok(Ok(v)) | Ok(Err(v)) => v,
        Err(payload) => TestbenchVerdict::Crash(panic_message(&payload)),
    }
}

/// Scores `runs` copies of the same `generated` candidate against the
/// problem's testbench in one batched simulation ([`run_batch`] lanes),
/// returning one verdict per lane.
///
/// Lanes are unseeded, so each shares the scalar engine's default
/// `$random` stream and the verdicts are bit-identical to `runs`
/// sequential [`run_testbench_verdict_with`] calls. Identical lanes stay
/// on the batch engine's uniform fast path, which is where the pass@k
/// sweep's ~R× throughput gain comes from. Frontend failures and caught
/// panics replicate across all lanes (one bad candidate fails the same
/// way however many times it is scored).
pub fn run_testbench_verdicts_batched(
    problem: &VerilogProblem,
    generated: &str,
    runs: usize,
    opts: &SimOptions,
) -> Vec<TestbenchVerdict> {
    let src = format!("{generated}\n{}", problem.testbench);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<Vec<TestbenchVerdict>, TestbenchVerdict> {
            let design = shared_design(&src, "tb").map_err(|e| match e {
                FrontendError::Parse(m) => TestbenchVerdict::ParseError(m),
                FrontendError::Elab(e) => TestbenchVerdict::ElabError(e.message),
            })?;
            let seeds = vec![None; runs];
            Ok(run_batch(&design, &seeds, opts)
                .into_iter()
                .map(|lane| match lane {
                    Ok(result) => match parse_result(&result.output) {
                        Some((pass, total)) if total > 0 => {
                            TestbenchVerdict::Scored(pass as f64 / total as f64)
                        }
                        _ => TestbenchVerdict::Scored(0.0),
                    },
                    Err(e) => TestbenchVerdict::Timeout(e.to_string()),
                })
                .collect())
        },
    ));
    match outcome {
        Ok(Ok(v)) => v,
        Ok(Err(v)) => vec![v; runs],
        Err(payload) => vec![TestbenchVerdict::Crash(panic_message(&payload)); runs],
    }
}

/// Best pass rate over a set of lint-clean candidates, scored `R` lanes
/// at a time when the protocol asks for batching. Shared by the
/// generation and repair sweeps; the `runs_per_batch == 1` path is the
/// original sequential loop, untouched.
pub(crate) fn best_rate_batched(
    problem: &VerilogProblem,
    clean: &[String],
    runs_per_batch: usize,
    opts: &SimOptions,
) -> f64 {
    let mut best: f64 = 0.0;
    if runs_per_batch <= 1 {
        for out in clean {
            let rate = run_testbench_verdict_with(problem, out, opts).pass_rate();
            if rate > best {
                best = rate;
            }
        }
        return best;
    }
    // Group identical candidates (pass@k at low temperature repeats
    // sources often) and score each group's copies R lanes per batch.
    // The simulator is deterministic, so copy-counts cannot change the
    // max — but every copy still runs, keeping verdict totals and obs
    // counters faithful to the sequential protocol.
    let r = runs_per_batch.min(MAX_BATCH_LANES);
    let mut groups: Vec<(&str, usize)> = Vec::new();
    for out in clean {
        match groups.iter_mut().find(|(src, _)| *src == out.as_str()) {
            Some((_, n)) => *n += 1,
            None => groups.push((out.as_str(), 1)),
        }
    }
    for (src, mut remaining) in groups {
        while remaining > 0 {
            let lanes = remaining.min(r);
            for v in run_testbench_verdicts_batched(problem, src, lanes, opts) {
                let rate = v.pass_rate();
                if rate > best {
                    best = rate;
                }
            }
            remaining -= lanes;
        }
    }
    best
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs a generated module against the problem's testbench; returns the
/// functional pass rate in `[0, 1]` (every failure verdict scores zero).
pub fn run_testbench(problem: &VerilogProblem, generated: &str) -> f64 {
    run_testbench_verdict(problem, generated).pass_rate()
}

/// Evaluates one (problem, level) cell.
pub fn eval_cell(
    model: &Slm,
    problem: &VerilogProblem,
    level: usize,
    protocol: &GenProtocol,
) -> GenCell {
    eval_cell_with(model, problem, level, protocol, &CancelToken::new())
}

/// [`eval_cell`] with a supervising [`CancelToken`]: each testbench run
/// inherits the token, so a tripped deadline cuts the simulation short
/// with a wall-timeout verdict instead of hanging the sweep.
pub fn eval_cell_with(
    model: &Slm,
    problem: &VerilogProblem,
    level: usize,
    protocol: &GenProtocol,
    cancel: &CancelToken,
) -> GenCell {
    let prompt = &problem.prompts[level];
    let opts = GenOptions {
        temperature: protocol.temperature,
    };
    let mut syntax_errors = 0;
    let mut clean: Vec<String> = Vec::new();
    for i in 0..protocol.k {
        let mut rng = SmallRng::seed_from_u64(
            protocol
                .seed
                .wrapping_mul(1_000_003)
                .wrapping_add((level as u64) << 32)
                .wrapping_add(hash_id(problem.id))
                .wrapping_add(hash_id(&model.profile().name))
                .wrapping_add(i as u64),
        );
        let out = model.generate(ALIGN_INSTRUCT, prompt, &opts, &mut rng);
        let report = dda_lint::check_source("gen.v", &out);
        if !report.is_clean() {
            syntax_errors += 1;
            continue;
        }
        clean.push(out);
    }
    let mut sim_opts = testbench_sim_options(cancel);
    sim_opts.eval_mode = protocol.eval_mode;
    let best_function = best_rate_batched(problem, &clean, protocol.runs_per_batch, &sim_opts);
    GenCell {
        syntax_errors,
        best_function,
    }
}

fn hash_id(id: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Evaluates a model over a whole suite.
pub fn eval_suite(model: &Slm, problems: &[VerilogProblem], protocol: &GenProtocol) -> Vec<GenRow> {
    problems
        .iter()
        .map(|p| GenRow {
            id: p.id,
            cells: (0..p.prompts.len())
                .map(|l| eval_cell(model, p, l, protocol))
                .collect(),
        })
        .collect()
}

/// Fraction of rows that succeeded.
pub fn success_rate(rows: &[GenRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().filter(|r| r.is_success()).count() as f64 / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_benchmarks::thakur_suite;

    #[test]
    fn reference_implementations_score_100() {
        for p in thakur_suite().into_iter().take(4) {
            let rate = run_testbench(&p, p.reference);
            assert!((rate - 1.0).abs() < 1e-9, "{}: {rate}", p.id);
        }
    }

    #[test]
    fn garbage_scores_zero() {
        let p = &thakur_suite()[0];
        assert_eq!(run_testbench(p, "module garbage(; endmodule"), 0.0);
        assert_eq!(
            run_testbench(p, "module wrong_name(input x); endmodule"),
            0.0
        );
    }

    #[test]
    fn wrong_behaviour_scores_partial() {
        // An inverted wire fails both checks; a constant-0 wire passes one.
        let p = &thakur_suite()[0];
        let constant = "module simple_wire(input in, output out);\nassign out = 1'b0;\nendmodule\n";
        let rate = run_testbench(p, constant);
        assert!((rate - 0.5).abs() < 1e-9, "{rate}");
    }

    #[test]
    fn verdicts_distinguish_failure_modes() {
        let p = &thakur_suite()[0];
        // Unparseable sample.
        let v = run_testbench_verdict(p, "module garbage(; endmodule");
        assert!(matches!(v, TestbenchVerdict::ParseError(_)), "{v:?}");
        // Elaboration failure: correct module name, resource-guard trip.
        let huge = "module simple_wire(input in, output out);\n\
                    reg [8388607:0] big;\nassign out = in;\nendmodule\n";
        let v = run_testbench_verdict(p, huge);
        assert!(matches!(v, TestbenchVerdict::ElabError(_)), "{v:?}");
        // Runaway sample: a free-running zero-delay loop exhausts the
        // statement budget — a Timeout, not a zero-score crash.
        let runaway = "module simple_wire(input in, output out);\n\
                       reg r;\nalways r = ~r;\nassign out = in;\nendmodule\n";
        let v = run_testbench_verdict(p, runaway);
        assert!(v.is_timeout(), "{v:?}");
        assert!(!v.is_crash());
        assert_eq!(v.pass_rate(), 0.0);
        // The reference still scores through the verdict path.
        let v = run_testbench_verdict(p, p.reference);
        assert_eq!(v, TestbenchVerdict::Scored(1.0));
    }

    #[test]
    fn batched_scoring_matches_sequential() {
        let p = &thakur_suite()[0];
        let constant = "module simple_wire(input in, output out);\nassign out = 1'b0;\nendmodule\n";
        let opts = testbench_sim_options(&CancelToken::new());
        // Verdict level: every lane equals the sequential verdict.
        for candidate in [p.reference, constant] {
            let seq = run_testbench_verdict_with(p, candidate, &opts);
            let lanes = run_testbench_verdicts_batched(p, candidate, 4, &opts);
            assert_eq!(lanes.len(), 4);
            for v in lanes {
                assert_eq!(v, seq);
            }
        }
        // Frontend failures replicate across all lanes.
        let bad = run_testbench_verdicts_batched(p, "module garbage(; endmodule", 3, &opts);
        assert_eq!(bad.len(), 3);
        assert!(bad
            .iter()
            .all(|v| matches!(v, TestbenchVerdict::ParseError(_))));
        // Cell level: duplicated candidates group and chunk into R-lane
        // batches without changing the best rate.
        let clean: Vec<String> = [
            constant,
            p.reference,
            constant,
            constant,
            p.reference,
            constant,
            constant,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let seq = best_rate_batched(p, &clean, 1, &opts);
        assert!((seq - 1.0).abs() < 1e-9);
        for r in [2, 4, 64, MAX_BATCH_LANES + 9] {
            assert_eq!(best_rate_batched(p, &clean, r, &opts), seq);
        }
        assert_eq!(best_rate_batched(p, &[], 4, &opts), 0.0);
    }

    #[test]
    fn success_rate_counts_full_passes() {
        let rows = vec![
            GenRow {
                id: "a",
                cells: vec![
                    GenCell {
                        syntax_errors: 0,
                        best_function: 1.0,
                    },
                    GenCell {
                        syntax_errors: 5,
                        best_function: 0.0,
                    },
                ],
            },
            GenRow {
                id: "b",
                cells: vec![GenCell {
                    syntax_errors: 0,
                    best_function: 0.9,
                }],
            },
        ];
        assert!((success_rate(&rows) - 0.5).abs() < 1e-9);
    }
}
