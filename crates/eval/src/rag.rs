//! Retrieval-augmented evaluation: a corpus-backed [`RagIndex`] that
//! turns a broken file (or any query text) into few-shot context for
//! [`dda_slm::Slm::generate_with_context`].
//!
//! The index is a [`ShardedTfIdf`] over generated corpus modules (name +
//! source), the same structure `chipdda serve` keeps resident for its
//! `retrieve` verb. `context_for` returns the k nearest module sources,
//! best first; an empty context (k = 0, or an empty index) makes the
//! downstream generation bit-identical to the retrieval-free path, so
//! RAG-vs-no-RAG deltas in Table 3 measure retrieval alone.

use dda_corpus::CorpusModule;
use dda_slm::ShardedTfIdf;

/// Shard count for evaluation-side retrieval: matches the serving
/// daemon's layout so eval and serve exercise the same merge path.
pub const RAG_SHARDS: usize = 4;

/// A retrieval index over corpus modules for few-shot augmentation.
#[derive(Debug)]
pub struct RagIndex {
    modules: Vec<CorpusModule>,
    index: ShardedTfIdf,
}

impl RagIndex {
    /// Builds the index over `modules` (hit ids are vec indices).
    pub fn build(modules: Vec<CorpusModule>) -> RagIndex {
        let mut index = ShardedTfIdf::new(RAG_SHARDS);
        for (i, m) in modules.iter().enumerate() {
            index
                .insert(i as u64, &format!("{} {}", m.name, m.source))
                .expect("vec indices are unique");
        }
        RagIndex { modules, index }
    }

    /// Modules behind the index.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the index holds no modules.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The k nearest module sources for `query`, best first. `k = 0`
    /// returns an empty context (the no-RAG baseline).
    pub fn context_for(&self, query: &str, k: usize) -> Vec<String> {
        self.index
            .query(query, k)
            .into_iter()
            .map(|h| self.modules[h.id as usize].source.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn corpus(n: usize) -> Vec<CorpusModule> {
        let mut rng = SmallRng::seed_from_u64(7);
        dda_corpus::generate_corpus(n, &mut rng)
    }

    #[test]
    fn self_query_retrieves_the_module_itself() {
        let modules = corpus(20);
        let rag = RagIndex::build(modules.clone());
        assert_eq!(rag.len(), 20);
        let target = &modules[3];
        let ctx = rag.context_for(&format!("{} {}", target.name, target.source), 2);
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx[0], target.source, "self-query must win retrieval");
    }

    #[test]
    fn k_zero_is_the_no_rag_baseline() {
        let rag = RagIndex::build(corpus(8));
        assert!(rag.context_for("a counter with enable", 0).is_empty());
        assert!(RagIndex::build(Vec::new())
            .context_for("anything", 5)
            .is_empty());
    }
}
