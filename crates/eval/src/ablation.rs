//! Ablation studies: the paper's §4.2.2 data-composition ablation (and
//! Fig. 7 case study), plus the extra design-choice ablations DESIGN.md
//! commits to (mutation cap, training order, corpus size).

use crate::generation::{eval_suite, success_rate, GenProtocol, GenRow};
use dda_benchmarks::VerilogProblem;
use dda_core::align::ALIGN_INSTRUCT;
use dda_core::pipeline::{augment, PipelineOptions, StageSet};
use dda_core::{Dataset, TaskKind};
use dda_slm::{pretraining_dataset, GenOptions, Slm, SlmProfile, PROGRESSIVE_ORDER};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The three training regimes of the paper's Fig. 7 / §4.2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Only program-completion data ("General Aug").
    CompletionOnly,
    /// Only natural-language alignment data.
    NlOnly,
    /// The full progressive pipeline.
    Progressive,
}

impl Regime {
    /// All regimes in Fig. 7 column order.
    pub const ALL: [Regime; 3] = [Regime::CompletionOnly, Regime::NlOnly, Regime::Progressive];

    /// Fig. 7 column label.
    pub fn label(self) -> &'static str {
        match self {
            Regime::CompletionOnly => "Only Program Complete Data",
            Regime::NlOnly => "Only Natural Language Data",
            Regime::Progressive => "Our Progressive Training",
        }
    }

    fn stages(self) -> StageSet {
        match self {
            Regime::CompletionOnly => StageSet::GENERAL_AUG,
            Regime::NlOnly => StageSet::NL_ONLY,
            Regime::Progressive => StageSet::FULL,
        }
    }
}

/// Builds the 13B model for a regime from a shared corpus.
pub fn regime_model(regime: Regime, corpus_modules: usize, seed: u64) -> Slm {
    let mut rng = SmallRng::seed_from_u64(seed);
    let corpus = dda_corpus::generate_corpus(corpus_modules, &mut rng);
    let mut rng2 = SmallRng::seed_from_u64(seed ^ 0xAB);
    let (ds, _) = augment(
        &corpus,
        &PipelineOptions {
            stages: regime.stages(),
            ..PipelineOptions::default()
        },
        &mut rng2,
    );
    let profile = SlmProfile {
        name: format!("Llama2-13B [{}]", regime.label()),
        ..SlmProfile::llama2(13.0)
    };
    let pre = pretraining_dataset(&profile);
    Slm::finetune_with_pretraining(profile, &pre, &ds, &PROGRESSIVE_ORDER)
}

/// The Fig. 7 case study: each regime's answer to the `right_shifter`
/// prompt, side by side.
pub fn fig7_case_study(prompt: &str, corpus_modules: usize, seed: u64) -> Vec<(Regime, String)> {
    Regime::ALL
        .iter()
        .map(|r| {
            let model = regime_model(*r, corpus_modules, seed);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let out = model.generate(
                ALIGN_INSTRUCT,
                prompt,
                &GenOptions { temperature: 0.1 },
                &mut rng,
            );
            (*r, out)
        })
        .collect()
}

/// §4.2.2 numbers: success rate per regime on a problem suite.
pub fn regime_success_rates(
    problems: &[VerilogProblem],
    corpus_modules: usize,
    seed: u64,
    protocol: &GenProtocol,
) -> Vec<(Regime, f64, Vec<GenRow>)> {
    Regime::ALL
        .iter()
        .map(|r| {
            let model = regime_model(*r, corpus_modules, seed);
            let rows = eval_suite(&model, problems, protocol);
            let rate = success_rate(&rows);
            (*r, rate, rows)
        })
        .collect()
}

/// Mutation-cap ablation (§3.2.1's "below five"): for each cap, the
/// fraction of broken files the checker still flags — too many mutations
/// shred files into unrecognisable noise, too few undertrain.
pub fn mutation_cap_detection_rates(caps: &[usize], seed: u64) -> Vec<(usize, f64)> {
    use dda_core::repair::{break_verilog, RepairOptions};
    let mut rng = SmallRng::seed_from_u64(seed);
    let corpus = dda_corpus::generate_corpus(24, &mut rng);
    caps.iter()
        .map(|cap| {
            let mut flagged = 0usize;
            let mut total = 0usize;
            let mut rng = SmallRng::seed_from_u64(seed ^ (*cap as u64) << 8);
            for m in &corpus {
                for _ in 0..4 {
                    let Some(b) = break_verilog(
                        &m.source,
                        &RepairOptions {
                            max_mutations: *cap,
                        },
                        &mut rng,
                    ) else {
                        continue;
                    };
                    total += 1;
                    if !dda_lint::check_source("m.v", &b.source).is_clean() {
                        flagged += 1;
                    }
                }
            }
            (*cap, flagged as f64 / total.max(1) as f64)
        })
        .collect()
}

/// Training-order ablation: progressive (aligned data last) vs reversed.
/// Returns `(progressive_rate, reversed_rate)` on the given suite.
pub fn order_ablation(
    problems: &[VerilogProblem],
    corpus_modules: usize,
    seed: u64,
    protocol: &GenProtocol,
) -> (f64, f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let corpus = dda_corpus::generate_corpus(corpus_modules, &mut rng);
    let mut rng2 = SmallRng::seed_from_u64(seed ^ 0xAB);
    let (ds, _) = augment(&corpus, &PipelineOptions::default(), &mut rng2);
    let profile = SlmProfile {
        // Make ordering visible: strong recency preference.
        recency_weight: 0.6,
        ..SlmProfile::llama2(13.0)
    };
    let pre = pretraining_dataset(&profile);
    let reversed: Vec<TaskKind> = PROGRESSIVE_ORDER.iter().rev().copied().collect();
    let m_prog = Slm::finetune_with_pretraining(profile.clone(), &pre, &ds, &PROGRESSIVE_ORDER);
    let m_rev = Slm::finetune_with_pretraining(profile, &pre, &ds, &reversed);
    let r_prog = success_rate(&eval_suite(&m_prog, problems, protocol));
    let r_rev = success_rate(&eval_suite(&m_rev, problems, protocol));
    (r_prog, r_rev)
}

/// Corpus-size (data-volume) sweep: success rate of the full pipeline at
/// several corpus sizes — the evaluation-level echo of Fig. 3.
pub fn corpus_size_sweep(
    problems: &[VerilogProblem],
    sizes: &[usize],
    seed: u64,
    protocol: &GenProtocol,
) -> Vec<(usize, f64)> {
    sizes
        .iter()
        .map(|n| {
            let model = regime_model(Regime::Progressive, *n, seed);
            (*n, success_rate(&eval_suite(&model, problems, protocol)))
        })
        .collect()
}

/// Builds a dataset of only the given stages over a fresh corpus (helper
/// for benches).
pub fn dataset_for(stages: StageSet, corpus_modules: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let corpus = dda_corpus::generate_corpus(corpus_modules, &mut rng);
    let mut rng2 = SmallRng::seed_from_u64(seed ^ 0xAB);
    augment(
        &corpus,
        &PipelineOptions {
            stages,
            ..PipelineOptions::default()
        },
        &mut rng2,
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_have_distinct_skill_profiles() {
        let comp = regime_model(Regime::CompletionOnly, 96, 3);
        let nl = regime_model(Regime::NlOnly, 96, 3);
        let full = regime_model(Regime::Progressive, 96, 3);
        assert!(full.skills().nl > comp.skills().nl + 0.15);
        assert!(nl.skills().nl > comp.skills().nl);
        assert!(comp.skills().code >= nl.skills().code);
    }

    #[test]
    fn mutation_caps_all_detected_reasonably() {
        let rates = mutation_cap_detection_rates(&[1, 4, 12], 5);
        assert_eq!(rates.len(), 3);
        for (cap, rate) in &rates {
            assert!(*rate > 0.4, "cap {cap}: detection rate {rate}");
        }
        // More mutations, more detectable damage.
        assert!(rates[2].1 >= rates[0].1 - 0.05);
    }

    #[test]
    fn fig7_outputs_differ_across_regimes() {
        let prompt = "An 8-bit right shifter: on each rising clock edge the register q shifts right by one and the serial input d enters at bit 7.\nModule name: right_shifter\nPorts: input clk, input d, output reg [7:0] q\n";
        let outs = fig7_case_study(prompt, 96, 11);
        assert_eq!(outs.len(), 3);
        // The progressive model produces lint-clean Verilog.
        let prog = &outs[2].1;
        assert!(
            dda_lint::check_source("p.v", prog).is_clean(),
            "progressive output dirty:\n{prog}"
        );
    }
}
