//! Plain-text table rendering for the table/figure regeneration binaries.

use std::fmt::Write as _;

/// A simple ASCII table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a header row.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                let _ = write!(out, "| {c}{} ", " ".repeat(pad));
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }
}

/// Formats a fraction as a percentage the way the paper does (`70.6%`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a fraction with no decimals when whole (`100%`, `37.5%`).
pub fn pct_short(x: f64) -> String {
    let v = x * 100.0;
    if (v - v.round()).abs() < 1e-9 {
        format!("{}%", v.round() as i64)
    } else {
        format!("{v:.1}%")
    }
}

/// Formats bytes in MB/GB like the paper's Table 2.
pub fn size_label(bytes: usize) -> String {
    const MB: f64 = 1024.0 * 1024.0;
    let mb = bytes as f64 / MB;
    if mb >= 1024.0 {
        format!("{:.1}GB", mb / 1024.0)
    } else if mb >= 1.0 {
        format!("{mb:.2}MB")
    } else {
        format!("{:.1}KB", bytes as f64 / 1024.0)
    }
}

/// Formats an entry count like the paper's Table 2 (`124k`, `3700k`).
pub fn count_label(n: usize) -> String {
    if n >= 1000 {
        format!("{}k", n / 1000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        let widths: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert_eq!(widths[0], widths[2]);
        assert_eq!(widths[2], widths[3]);
    }

    #[test]
    fn formats() {
        assert_eq!(pct(0.706), "70.6%");
        assert_eq!(pct_short(1.0), "100%");
        assert_eq!(pct_short(0.375), "37.5%");
        assert_eq!(size_label(300 * 1024), "300.0KB");
        assert_eq!(size_label(2 * 1024 * 1024), "2.00MB");
        assert_eq!(count_label(124_000), "124k");
        assert_eq!(count_label(200), "200");
    }
}
