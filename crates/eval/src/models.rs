//! The model zoo: the six systems compared in the paper's Tables 3–5.
//!
//! "Ours" models are Llama-2 profiles finetuned on the full augmented
//! dataset; the ablation baseline uses completion-only data; the external
//! baselines (GPT-3.5, Thakur et al., pretrained Llama-2) are profiles
//! with their own synthetic pretraining (see
//! [`dda_slm::pretraining_dataset`]).

use dda_core::pipeline::{augment, PipelineOptions, StageSet};
use dda_core::Dataset;
use dda_slm::{pretraining_dataset, Slm, SlmProfile, TrainOptions, PROGRESSIVE_ORDER};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// The compared systems, in the paper's column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// GPT-3.5 (closed baseline).
    Gpt35,
    /// Llama 2-FT (Ours) 7B.
    Ours7B,
    /// Llama 2-FT (Ours) 13B.
    Ours13B,
    /// Thakur et al. (CodeGen-16B finetuned on completion).
    Thakur,
    /// Pretrained Llama 2 13B.
    Llama2Pt,
    /// Llama 2-FT (General Aug) 13B — completion-only ablation.
    GeneralAug,
}

impl ModelId {
    /// All models in Table 5 column order.
    pub const ALL: [ModelId; 6] = [
        ModelId::Gpt35,
        ModelId::Ours7B,
        ModelId::Ours13B,
        ModelId::Thakur,
        ModelId::Llama2Pt,
        ModelId::GeneralAug,
    ];

    /// Display label used in the tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelId::Gpt35 => "GPT-3.5",
            ModelId::Ours7B => "Ours-7B",
            ModelId::Ours13B => "Ours-13B",
            ModelId::Thakur => "Thakur et al.",
            ModelId::Llama2Pt => "Llama2-PT 13B",
            ModelId::GeneralAug => "Llama2-General Aug.",
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for building the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZooOptions {
    /// Synthetic-corpus size the "Ours" finetuning data is augmented from.
    pub corpus_modules: usize,
    /// Seed for corpus generation and augmentation.
    pub seed: u64,
    /// Worker threads for per-document tokenisation during finetuning
    /// (forwarded as [`TrainOptions::workers`]; the built models are
    /// identical for any worker count).
    pub train_workers: usize,
}

impl Default for ZooOptions {
    fn default() -> Self {
        ZooOptions {
            corpus_modules: 192,
            seed: 2024,
            train_workers: 1,
        }
    }
}

/// The six models, finetuned and ready to query.
pub struct ModelZoo {
    models: Vec<(ModelId, Slm)>,
    /// The full augmented dataset (exposed for Table 2 / Fig. 3 benches).
    pub full_dataset: Dataset,
    /// The completion-only dataset (the General-Aug ablation).
    pub general_dataset: Dataset,
}

impl fmt::Debug for ModelZoo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelZoo")
            .field("models", &self.models.len())
            .field("full_dataset", &self.full_dataset.len())
            .finish()
    }
}

impl ModelZoo {
    /// Builds the zoo: generates the corpus, runs the augmentation pipeline
    /// (full and completion-only variants), and finetunes every profile.
    pub fn build(opts: &ZooOptions) -> ModelZoo {
        let _build_span = dda_obs::span("zoo.build");
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        let corpus = dda_corpus::generate_corpus(opts.corpus_modules, &mut rng);
        let pipe = PipelineOptions::default();
        let mut rng_full = SmallRng::seed_from_u64(opts.seed ^ 0xF0);
        let (full, _) = augment(&corpus, &pipe, &mut rng_full);
        let mut rng_gen = SmallRng::seed_from_u64(opts.seed ^ 0xF0);
        let (general, _) = augment(
            &corpus,
            &PipelineOptions {
                stages: StageSet::GENERAL_AUG,
                ..pipe
            },
            &mut rng_gen,
        );
        let ours13 = SlmProfile {
            name: "Llama 2-FT (Ours) 13B".into(),
            ..SlmProfile::llama2(13.0)
        };
        let ours7 = SlmProfile {
            name: "Llama 2-FT (Ours) 7B".into(),
            ..SlmProfile::llama2(7.0)
        };
        let general13 = SlmProfile {
            name: "Llama 2-FT (General Aug) 13B".into(),
            ..SlmProfile::llama2(13.0)
        };
        let topts = TrainOptions {
            workers: opts.train_workers.max(1),
        };
        let build = |profile: SlmProfile, finetune: &Dataset| -> Slm {
            let pre = pretraining_dataset(&profile);
            Slm::finetune_with_options(profile, &pre, finetune, &PROGRESSIVE_ORDER, &topts)
        };
        let empty = Dataset::new();
        let models = vec![
            (ModelId::Gpt35, build(SlmProfile::gpt35(), &empty)),
            (ModelId::Ours7B, build(ours7, &full)),
            (ModelId::Ours13B, build(ours13, &full)),
            (ModelId::Thakur, build(SlmProfile::codegen16b(), &general)),
            (ModelId::Llama2Pt, build(SlmProfile::llama2(13.0), &empty)),
            (ModelId::GeneralAug, build(general13, &general)),
        ];
        ModelZoo {
            models,
            full_dataset: full,
            general_dataset: general,
        }
    }

    /// Fetches a model.
    pub fn model(&self, id: ModelId) -> &Slm {
        &self
            .models
            .iter()
            .find(|(m, _)| *m == id)
            .expect("all models are built")
            .1
    }

    /// Iterates `(id, model)` in column order.
    pub fn iter(&self) -> impl Iterator<Item = (ModelId, &Slm)> {
        self.models.iter().map(|(id, m)| (*id, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_zoo() -> ModelZoo {
        ModelZoo::build(&ZooOptions {
            corpus_modules: 32,
            seed: 7,
            ..ZooOptions::default()
        })
    }

    #[test]
    fn zoo_builds_all_models() {
        let zoo = small_zoo();
        assert_eq!(zoo.iter().count(), 6);
        for id in ModelId::ALL {
            let _ = zoo.model(id);
        }
    }

    #[test]
    fn ours_models_outskill_baselines_on_alignment() {
        let zoo = small_zoo();
        let ours = zoo.model(ModelId::Ours13B).skills();
        let general = zoo.model(ModelId::GeneralAug).skills();
        let pt = zoo.model(ModelId::Llama2Pt).skills();
        assert!(ours.nl > general.nl, "{ours:?} vs {general:?}");
        assert!(ours.nl > pt.nl);
        assert!(ours.eda > 0.9);
        assert!(general.eda < 0.3);
        assert!(ours.repair > pt.repair);
    }

    #[test]
    fn capacity_separates_ours_7_and_13() {
        let zoo = small_zoo();
        assert_eq!(zoo.model(ModelId::Ours7B).profile().capacity_b, 7.0);
        assert_eq!(zoo.model(ModelId::Ours13B).profile().capacity_b, 13.0);
        // Same data, same derived skills.
        let s7 = zoo.model(ModelId::Ours7B).skills();
        let s13 = zoo.model(ModelId::Ours13B).skills();
        assert!((s7.nl - s13.nl).abs() < 1e-9);
    }

    #[test]
    fn datasets_exposed() {
        let zoo = small_zoo();
        assert!(zoo.full_dataset.len() > zoo.general_dataset.len());
    }
}
