//! Supervised, resumable variants of the three evaluation sweeps.
//!
//! Each sweep treats one benchmark problem (or SC task) as one engine
//! unit and runs the units through [`dda_runtime::run_supervised`]: a
//! bounded worker pool with per-unit wall-clock deadlines, seeded
//! retry/backoff, and an optional write-ahead journal for
//! checkpoint/resume. Every sweep derives its per-sample RNG seeds from
//! the `(protocol.seed, problem, sample)` triple — never from shared
//! mutable state — so the supervised sweeps produce *byte-identical*
//! rows to their sequential counterparts for any worker count,
//! scheduling order, or interruption point.
//!
//! A unit whose deadline trips is quarantined (excluded from the rows)
//! rather than silently scored zero; the returned [`EngineSummary`]
//! carries the accounting.

use crate::generation::{eval_cell_with, GenProtocol, GenRow};
use crate::repair_eval::{eval_repair_with, RepairCell, RepairProtocol};
use crate::script_eval::{eval_script, ScriptCell, ScriptProtocol};
use dda_benchmarks::{ScTask, VerilogProblem};
use dda_runtime::{
    run_supervised, run_supervised_journaled, CancelToken, EngineReport, EngineSummary, RunOptions,
    UnitError, DEADLINE_DIAGNOSTIC,
};
use dda_slm::Slm;
use std::io;
use std::path::PathBuf;

/// Options for one supervised sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Engine options: worker count, per-unit deadline, retry policy.
    pub run: RunOptions,
    /// Write-ahead journal path (`None` disables checkpointing).
    pub journal: Option<PathBuf>,
    /// Replay an existing journal at the path before executing, skipping
    /// units it already covers. Ignored when `journal` is `None`.
    pub resume: bool,
}

impl SweepOptions {
    /// A sweep over `workers` threads with no journal.
    pub fn with_workers(workers: usize) -> SweepOptions {
        SweepOptions {
            run: RunOptions {
                workers,
                ..RunOptions::default()
            },
            ..SweepOptions::default()
        }
    }
}

/// Runs `units` through the engine, journaled or not per `sweep`.
fn dispatch<T, F, E, D>(
    units: usize,
    sweep: &SweepOptions,
    encode: E,
    decode: D,
    exec: F,
) -> io::Result<EngineReport<T>>
where
    T: Send,
    F: Fn(usize, &CancelToken) -> Result<T, UnitError> + Sync,
    E: Fn(&T) -> String + Sync,
    D: Fn(&str) -> Option<T>,
{
    match &sweep.journal {
        Some(path) => {
            run_supervised_journaled(units, &sweep.run, path, sweep.resume, encode, decode, exec)
        }
        None => Ok(run_supervised(units, &sweep.run, exec)),
    }
}

/// Fails the unit when its supervision token has tripped, so a
/// deadline-cut unit is quarantined instead of reported with a
/// wall-timeout-depressed score.
fn check_deadline(cancel: &CancelToken, what: &str) -> Result<(), UnitError> {
    if cancel.is_cancelled() {
        Err(UnitError::fatal(format!("{DEADLINE_DIAGNOSTIC} ({what})")))
    } else {
        Ok(())
    }
}

fn encode_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn decode_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Journal codec for a `(syntax_errors, best_function)` cell:
/// `"<errors>:<f64 bits in hex>"`, exact to the bit.
fn encode_cell(syntax_errors: usize, best_function: f64) -> String {
    format!("{syntax_errors}:{}", encode_f64(best_function))
}

fn decode_cell(s: &str) -> Option<(usize, f64)> {
    let (se, bits) = s.split_once(':')?;
    Some((se.parse().ok()?, decode_f64(bits)?))
}

/// Supervised Table 5 sweep: one engine unit per benchmark problem.
///
/// Rows come back in problem order for the units that completed;
/// quarantined problems (deadline, panic, exhausted retries) are listed
/// in the summary. With `workers = 1` and no faults the rows are
/// byte-identical to [`crate::generation::eval_suite`].
///
/// # Errors
///
/// Propagates journal IO failures.
pub fn eval_suite_supervised(
    model: &Slm,
    problems: &[VerilogProblem],
    protocol: &GenProtocol,
    sweep: &SweepOptions,
) -> io::Result<(Vec<GenRow>, EngineSummary)> {
    let encode = |cells: &Vec<crate::generation::GenCell>| -> String {
        cells
            .iter()
            .map(|c| encode_cell(c.syntax_errors, c.best_function))
            .collect::<Vec<_>>()
            .join(";")
    };
    let report = dispatch(
        problems.len(),
        sweep,
        encode,
        // The journal stores only the cells; the static row id is
        // recovered from the problem table by unit index at decode time.
        |s: &str| -> Option<Vec<crate::generation::GenCell>> {
            s.split(';')
                .map(|c| {
                    decode_cell(c).map(|(syntax_errors, best_function)| {
                        crate::generation::GenCell {
                            syntax_errors,
                            best_function,
                        }
                    })
                })
                .collect()
        },
        |unit, cancel| {
            let p = &problems[unit];
            let cells: Vec<_> = (0..p.prompts.len())
                .map(|l| eval_cell_with(model, p, l, protocol, cancel))
                .collect();
            check_deadline(cancel, p.id)?;
            Ok(cells)
        },
    )?;
    let summary = report.summary();
    let rows = report
        .into_results()
        .map(|(unit, cells)| GenRow {
            id: problems[unit].id,
            cells,
        })
        .collect();
    Ok((rows, summary))
}

/// Supervised Table 3 sweep: one engine unit per repair problem.
///
/// # Errors
///
/// Propagates journal IO failures.
pub fn eval_repair_suite_supervised(
    model: &Slm,
    problems: &[VerilogProblem],
    protocol: &RepairProtocol,
    sweep: &SweepOptions,
) -> io::Result<(Vec<(&'static str, RepairCell)>, EngineSummary)> {
    let report = dispatch(
        problems.len(),
        sweep,
        |c: &RepairCell| encode_cell(c.syntax_errors, c.best_function),
        |s| {
            decode_cell(s).map(|(syntax_errors, best_function)| RepairCell {
                syntax_errors,
                best_function,
            })
        },
        |unit, cancel| {
            let p = &problems[unit];
            let cell = eval_repair_with(model, p, protocol, cancel);
            check_deadline(cancel, p.id)?;
            Ok(cell)
        },
    )?;
    let summary = report.summary();
    let rows = report
        .into_results()
        .map(|(unit, cell)| (problems[unit].id, cell))
        .collect();
    Ok((rows, summary))
}

/// Journal codec for a [`ScriptCell`]: `"<syn>:<func>"` with `-` for a
/// miss (`None`).
fn encode_iter(it: Option<usize>) -> String {
    match it {
        Some(i) => i.to_string(),
        None => "-".to_string(),
    }
}

fn decode_iter(s: &str) -> Option<Option<usize>> {
    if s == "-" {
        Some(None)
    } else {
        s.parse().ok().map(Some)
    }
}

/// Supervised Table 4 sweep: one engine unit per SC task. The task has no
/// inner simulation, so the deadline is only checked between units.
///
/// # Errors
///
/// Propagates journal IO failures.
pub fn eval_script_suite_supervised(
    model: &Slm,
    tasks: &[ScTask],
    protocol: &ScriptProtocol,
    sweep: &SweepOptions,
) -> io::Result<(Vec<(String, ScriptCell)>, EngineSummary)> {
    let report = dispatch(
        tasks.len(),
        sweep,
        |c: &ScriptCell| format!("{}:{}", encode_iter(c.syn_iter), encode_iter(c.func_iter)),
        |s| {
            let (syn, func) = s.split_once(':')?;
            Some(ScriptCell {
                syn_iter: decode_iter(syn)?,
                func_iter: decode_iter(func)?,
            })
        },
        |unit, cancel| {
            let t = &tasks[unit];
            let cell = eval_script(model, t, protocol);
            check_deadline(cancel, t.level.label())?;
            Ok(cell)
        },
    )?;
    let summary = report.summary();
    let rows = report
        .into_results()
        .map(|(unit, cell)| (tasks[unit].level.label().to_owned(), cell))
        .collect();
    Ok((rows, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generation::eval_suite;
    use crate::repair_eval::eval_repair_suite;
    use crate::script_eval::eval_script_suite;
    use dda_benchmarks::{rtllm_suite, sc_suite, thakur_suite};
    use dda_slm::{SlmProfile, PROGRESSIVE_ORDER};

    fn model() -> Slm {
        Slm::finetune(
            SlmProfile::llama2(7.0),
            &dda_core::Dataset::new(),
            &PROGRESSIVE_ORDER,
        )
    }

    #[test]
    fn supervised_generation_matches_sequential_for_any_worker_count() {
        let model = model();
        let problems: Vec<_> = thakur_suite().into_iter().take(3).collect();
        let protocol = GenProtocol {
            k: 2,
            ..GenProtocol::default()
        };
        let sequential = eval_suite(&model, &problems, &protocol);
        for workers in [1, 2, 8] {
            let (rows, summary) = eval_suite_supervised(
                &model,
                &problems,
                &protocol,
                &SweepOptions::with_workers(workers),
            )
            .unwrap();
            assert_eq!(rows, sequential, "workers={workers}");
            assert_eq!(summary.ok, problems.len());
            assert_eq!(summary.quarantined, 0);
        }
    }

    #[test]
    fn supervised_repair_matches_sequential() {
        let model = model();
        let problems: Vec<_> = rtllm_suite().into_iter().take(3).collect();
        let protocol = RepairProtocol {
            k: 2,
            ..RepairProtocol::default()
        };
        let sequential = eval_repair_suite(&model, &problems, &protocol);
        let (rows, _) = eval_repair_suite_supervised(
            &model,
            &problems,
            &protocol,
            &SweepOptions::with_workers(4),
        )
        .unwrap();
        assert_eq!(rows, sequential);
    }

    #[test]
    fn supervised_script_matches_sequential() {
        let model = model();
        let tasks = sc_suite();
        let protocol = ScriptProtocol {
            max_iters: 3,
            ..ScriptProtocol::default()
        };
        let sequential = eval_script_suite(&model, &tasks, &protocol);
        let (rows, _) =
            eval_script_suite_supervised(&model, &tasks, &protocol, &SweepOptions::with_workers(2))
                .unwrap();
        assert_eq!(rows, sequential);
    }

    #[test]
    fn cell_codec_is_bit_exact() {
        for v in [0.0, 1.0, 0.5, 2.0 / 3.0, f64::MIN_POSITIVE] {
            let enc = encode_cell(7, v);
            let (se, dec) = decode_cell(&enc).unwrap();
            assert_eq!(se, 7);
            assert_eq!(dec.to_bits(), v.to_bits());
        }
        assert_eq!(decode_iter("-"), Some(None));
        assert_eq!(decode_iter("4"), Some(Some(4)));
        assert_eq!(decode_iter("x"), None);
    }
}
