//! SiliconCompiler script-generation evaluation (Table 4 protocol).
//!
//! For each task level the model is queried up to `max_iters` times
//! (pass@10 in the paper); the table reports the iteration at which the
//! first syntactically valid script appeared (`syn`) and the first
//! functionally correct one (`func`). `None` renders as `>10`.

use dda_benchmarks::ScTask;
use dda_core::edascript::EDA_INSTRUCT;
use dda_slm::{GenOptions, Slm};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One Table 4 cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptCell {
    /// Iteration (1-based) of the first syntactically valid script.
    pub syn_iter: Option<usize>,
    /// Iteration (1-based) of the first functionally correct script.
    pub func_iter: Option<usize>,
}

impl ScriptCell {
    /// Renders an iteration count the way Table 4 does (`>10` for misses).
    pub fn fmt_iter(it: Option<usize>, max: usize) -> String {
        match it {
            Some(i) => i.to_string(),
            None => format!(">{max}"),
        }
    }
}

/// Protocol options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptProtocol {
    /// Maximum query attempts (pass@10 in the paper).
    pub max_iters: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for ScriptProtocol {
    fn default() -> Self {
        ScriptProtocol {
            max_iters: 10,
            seed: 31,
        }
    }
}

/// Evaluates one model on one task.
pub fn eval_script(model: &Slm, task: &ScTask, protocol: &ScriptProtocol) -> ScriptCell {
    let opts = GenOptions { temperature: 0.1 };
    let mut syn_iter = None;
    let mut func_iter = None;
    for i in 0..protocol.max_iters {
        let mut h = 0xcbf29ce484222325u64;
        for b in task
            .level
            .label()
            .bytes()
            .chain(model.profile().name.bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut rng =
            SmallRng::seed_from_u64(protocol.seed.wrapping_mul(7919) ^ h.wrapping_add(i as u64));
        let out = model.generate(EDA_INSTRUCT, &task.prompt, &opts, &mut rng);
        if syn_iter.is_none() && task.check_syntax(&out) {
            syn_iter = Some(i + 1);
        }
        if func_iter.is_none() && task.check_function(&out) {
            func_iter = Some(i + 1);
        }
        if func_iter.is_some() {
            break;
        }
    }
    ScriptCell {
        syn_iter,
        func_iter,
    }
}

/// Evaluates a model over all five tasks.
pub fn eval_script_suite(
    model: &Slm,
    tasks: &[ScTask],
    protocol: &ScriptProtocol,
) -> Vec<(String, ScriptCell)> {
    tasks
        .iter()
        .map(|t| (t.level.label().to_owned(), eval_script(model, t, protocol)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_benchmarks::sc_suite;
    use dda_core::Dataset;
    use dda_slm::{SlmProfile, PROGRESSIVE_ORDER};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn eda_trained_model() -> Slm {
        let mut ds = Dataset::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for (k, e) in dda_core::edascript::generate_eda_entries(200, &mut rng) {
            ds.push(k, e);
        }
        Slm::finetune(SlmProfile::llama2(13.0), &ds, &PROGRESSIVE_ORDER)
    }

    #[test]
    fn trained_model_solves_every_level_first_try_or_nearly() {
        let model = eda_trained_model();
        let protocol = ScriptProtocol::default();
        for (label, cell) in eval_script_suite(&model, &sc_suite(), &protocol) {
            assert!(
                cell.func_iter.map(|i| i <= 2).unwrap_or(false),
                "{label}: {cell:?}"
            );
        }
    }

    #[test]
    fn untrained_model_mostly_misses() {
        let model = Slm::finetune(
            SlmProfile::llama2(13.0),
            &Dataset::new(),
            &PROGRESSIVE_ORDER,
        );
        let protocol = ScriptProtocol::default();
        let rows = eval_script_suite(&model, &sc_suite(), &protocol);
        let misses = rows.iter().filter(|(_, c)| c.func_iter.is_none()).count();
        assert!(misses >= 4, "only {misses}/5 missed: {rows:?}");
    }

    #[test]
    fn iteration_formatting() {
        assert_eq!(ScriptCell::fmt_iter(Some(3), 10), "3");
        assert_eq!(ScriptCell::fmt_iter(None, 10), ">10");
    }
}
