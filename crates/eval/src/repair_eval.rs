//! Verilog-repair evaluation (the paper's Table 3 protocol).
//!
//! "The benchmark for the Verilog code repair task is derived from
//! syntax-error code": each RTLLM reference is broken with the §3.2.1
//! injection rules, the checker's diagnostics are prepended (Fig. 6
//! layout), and the model is asked to repair under pass@5. A repaired file
//! is syntax-scored with the checker and function-scored with the
//! problem's testbench.

use crate::generation::{best_rate_batched, testbench_sim_options};
use dda_benchmarks::VerilogProblem;
use dda_core::repair::{break_verilog, RepairOptions, REPAIR_INSTRUCT};
use dda_runtime::CancelToken;
use dda_slm::{GenOptions, Slm};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One Table 3 cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairCell {
    /// Samples (of k) whose repaired output still has syntax errors.
    pub syntax_errors: usize,
    /// Best functional pass rate among the k repairs.
    pub best_function: f64,
}

impl RepairCell {
    /// A fully functional repair was produced.
    pub fn is_success(&self) -> bool {
        self.best_function >= 1.0 - 1e-9
    }
}

/// Protocol options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairProtocol {
    /// Samples per problem (pass@5 in the paper).
    pub k: usize,
    /// Temperature.
    pub temperature: f64,
    /// Seed for fault injection and sampling.
    pub seed: u64,
    /// Mutation cap used when deriving the broken input.
    pub max_mutations: usize,
    /// Simulator execution engine for the function-scoring runs.
    pub eval_mode: dda_sim::EvalMode,
    /// Simulation lanes per batched function-scoring run (see
    /// [`crate::GenProtocol::runs_per_batch`]); 1 scores sequentially.
    pub runs_per_batch: usize,
}

impl Default for RepairProtocol {
    fn default() -> Self {
        RepairProtocol {
            k: 5,
            temperature: 0.1,
            seed: 424,
            max_mutations: 3,
            eval_mode: dda_sim::EvalMode::default(),
            runs_per_batch: 1,
        }
    }
}

/// Builds the broken input for a problem: `([yosys info], wrong file)`.
///
/// Returns `(input_text, wrong_source)`. The injection is retried until the
/// broken file actually fails the checker, so every repair case is real.
pub fn broken_input(problem: &VerilogProblem, protocol: &RepairProtocol) -> (String, String) {
    let mut rng = SmallRng::seed_from_u64(protocol.seed ^ hash_id(problem.id));
    let opts = RepairOptions {
        max_mutations: protocol.max_mutations,
    };
    for _ in 0..50 {
        let Some(broken) = break_verilog(problem.reference, &opts, &mut rng) else {
            continue;
        };
        let report = dda_lint::check_source(&format!("{}.v", problem.id), &broken.source);
        if report.is_clean() {
            continue; // mutation happened to stay legal; redraw
        }
        let input = format!("{}, {}", report.render().trim_end(), broken.source);
        return (input, broken.source);
    }
    // Fallback: guaranteed syntax fault.
    let wrong = problem.reference.replacen(';', "", 1);
    let report = dda_lint::check_source(&format!("{}.v", problem.id), &wrong);
    (format!("{}, {}", report.render().trim_end(), wrong), wrong)
}

fn hash_id(id: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Evaluates one model on one problem.
pub fn eval_repair(model: &Slm, problem: &VerilogProblem, protocol: &RepairProtocol) -> RepairCell {
    eval_repair_with(model, problem, protocol, &CancelToken::new())
}

/// [`eval_repair`] with a supervising [`CancelToken`] threaded into each
/// testbench simulation (see [`crate::supervised`]).
pub fn eval_repair_with(
    model: &Slm,
    problem: &VerilogProblem,
    protocol: &RepairProtocol,
    cancel: &CancelToken,
) -> RepairCell {
    eval_repair_ctx(model, problem, protocol, None, cancel)
}

/// [`eval_repair`] with retrieval augmentation: the `k` corpus modules
/// nearest the broken input (diagnostics + wrong file) are injected as
/// few-shot context through [`Slm::generate_with_context`]. `k = 0` is
/// bit-identical to [`eval_repair`], so Table 3's RAG-vs-no-RAG delta
/// isolates retrieval.
pub fn eval_repair_rag(
    model: &Slm,
    problem: &VerilogProblem,
    protocol: &RepairProtocol,
    rag: &crate::rag::RagIndex,
    rag_k: usize,
) -> RepairCell {
    eval_repair_ctx(
        model,
        problem,
        protocol,
        Some((rag, rag_k)),
        &CancelToken::new(),
    )
}

fn eval_repair_ctx(
    model: &Slm,
    problem: &VerilogProblem,
    protocol: &RepairProtocol,
    rag: Option<(&crate::rag::RagIndex, usize)>,
    cancel: &CancelToken,
) -> RepairCell {
    let (input, _) = broken_input(problem, protocol);
    let context = match rag {
        Some((index, k)) => index.context_for(&input, k),
        None => Vec::new(),
    };
    let opts = GenOptions {
        temperature: protocol.temperature,
    };
    let mut syntax_errors = 0;
    let mut clean: Vec<String> = Vec::new();
    for i in 0..protocol.k {
        let mut rng = SmallRng::seed_from_u64(
            protocol.seed.wrapping_add(77 + i as u64)
                ^ hash_id(problem.id)
                ^ hash_id(&model.profile().name).rotate_left(17),
        );
        let out = model.generate_with_context(REPAIR_INSTRUCT, &input, &context, &opts, &mut rng);
        if !dda_lint::check_source("fix.v", &out).is_clean() {
            syntax_errors += 1;
            continue;
        }
        clean.push(out);
    }
    let mut sim_opts = testbench_sim_options(cancel);
    sim_opts.eval_mode = protocol.eval_mode;
    let best_function = best_rate_batched(problem, &clean, protocol.runs_per_batch, &sim_opts);
    RepairCell {
        syntax_errors,
        best_function,
    }
}

/// Per-problem rows for a model over a suite with retrieval augmentation
/// (see [`eval_repair_rag`]).
pub fn eval_repair_suite_rag(
    model: &Slm,
    problems: &[VerilogProblem],
    protocol: &RepairProtocol,
    rag: &crate::rag::RagIndex,
    rag_k: usize,
) -> Vec<(&'static str, RepairCell)> {
    problems
        .iter()
        .map(|p| (p.id, eval_repair_rag(model, p, protocol, rag, rag_k)))
        .collect()
}

/// Per-problem rows for a model over a suite.
pub fn eval_repair_suite(
    model: &Slm,
    problems: &[VerilogProblem],
    protocol: &RepairProtocol,
) -> Vec<(&'static str, RepairCell)> {
    problems
        .iter()
        .map(|p| (p.id, eval_repair(model, p, protocol)))
        .collect()
}

/// Success rate over rows (fraction of fully repaired designs).
pub fn repair_success_rate(rows: &[(&'static str, RepairCell)]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().filter(|(_, c)| c.is_success()).count() as f64 / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_benchmarks::rtllm_suite;
    use dda_slm::{SlmProfile, PROGRESSIVE_ORDER};

    #[test]
    fn broken_inputs_carry_feedback_and_fail_lint() {
        let protocol = RepairProtocol::default();
        for p in rtllm_suite().into_iter().take(6) {
            let (input, wrong) = broken_input(&p, &protocol);
            assert!(input.contains("ERROR"), "{}: {input}", p.id);
            assert!(
                !dda_lint::check_source("w.v", &wrong).is_clean(),
                "{} broken file lints clean",
                p.id
            );
        }
    }

    #[test]
    fn strong_repairer_fixes_simple_faults() {
        let model = dda_slm::Slm::finetune(
            SlmProfile {
                name: "strong-fixer".into(),
                floor_repair: 0.95,
                ..SlmProfile::llama2(13.0)
            },
            &dda_core::Dataset::new(),
            &PROGRESSIVE_ORDER,
        );
        // Attempts are deterministic per (model, input) with a ~5% miss
        // band at this skill, so judge across several designs. The fault
        // injection seed is arbitrary; this one avoids the miss band for
        // most of the sampled designs under the vendored RNG stream.
        let suite = rtllm_suite();
        let ids = ["adder_8bit", "mux", "counter_12", "pe", "edge_detect"];
        let protocol = RepairProtocol {
            seed: 10,
            ..RepairProtocol::default()
        };
        let cells: Vec<_> = ids
            .iter()
            .map(|id| {
                let p = suite.iter().find(|p| p.id == *id).unwrap();
                eval_repair(&model, p, &protocol)
            })
            .collect();
        // Most repairs become syntactically clean; a majority also restore
        // full function (invisible semantic faults stay broken, as in the
        // paper's Table 3 where even Ours-13B misses some designs).
        let syntax_ok = cells.iter().filter(|c| c.syntax_errors < 5).count();
        let fixed = cells.iter().filter(|c| c.is_success()).count();
        assert!(
            syntax_ok >= 4,
            "only {syntax_ok}/5 syntactically repaired: {cells:?}"
        );
        assert!(fixed >= 3, "only {fixed}/5 fully repaired: {cells:?}");
    }

    #[test]
    fn batched_repair_cells_match_sequential() {
        let model = dda_slm::Slm::finetune(
            SlmProfile {
                name: "strong-fixer".into(),
                floor_repair: 0.95,
                ..SlmProfile::llama2(13.0)
            },
            &dda_core::Dataset::new(),
            &PROGRESSIVE_ORDER,
        );
        let suite = rtllm_suite();
        let base = RepairProtocol {
            seed: 10,
            ..RepairProtocol::default()
        };
        for id in ["adder_8bit", "mux"] {
            let p = suite.iter().find(|p| p.id == id).unwrap();
            let sequential = eval_repair(&model, p, &base);
            for r in [4, 8] {
                let batched = eval_repair(
                    &model,
                    p,
                    &RepairProtocol {
                        runs_per_batch: r,
                        ..base
                    },
                );
                assert_eq!(batched, sequential, "{id} diverged at R={r}");
            }
        }
    }

    #[test]
    fn rag_k_zero_matches_plain_eval_bitwise() {
        let model = dda_slm::Slm::finetune(
            SlmProfile {
                name: "mid-fixer".into(),
                floor_repair: 0.5,
                ..SlmProfile::llama2(13.0)
            },
            &dda_core::Dataset::new(),
            &PROGRESSIVE_ORDER,
        );
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let rag = crate::rag::RagIndex::build(dda_corpus::generate_corpus(12, &mut rng));
        let suite = rtllm_suite();
        let protocol = RepairProtocol::default();
        for id in ["adder_8bit", "mux", "counter_12"] {
            let p = suite.iter().find(|p| p.id == id).unwrap();
            let plain = eval_repair(&model, p, &protocol);
            let k0 = eval_repair_rag(&model, p, &protocol, &rag, 0);
            assert_eq!(plain.syntax_errors, k0.syntax_errors, "{id}");
            assert_eq!(
                plain.best_function.to_bits(),
                k0.best_function.to_bits(),
                "{id}: k=0 must be the no-RAG baseline to the bit"
            );
        }
    }

    #[test]
    fn rag_context_never_hurts_repair_cells() {
        let model = dda_slm::Slm::finetune(
            SlmProfile {
                name: "mid-fixer".into(),
                floor_repair: 0.5,
                ..SlmProfile::llama2(13.0)
            },
            &dda_core::Dataset::new(),
            &PROGRESSIVE_ORDER,
        );
        // Index the suite's own references: retrieval can surface the
        // worked example for each broken file.
        let suite = rtllm_suite();
        let modules: Vec<dda_corpus::CorpusModule> = suite
            .iter()
            .map(|p| dda_corpus::CorpusModule {
                family: dda_corpus::Family::WireBuf,
                name: p.id.to_string(),
                source: p.reference.to_string(),
            })
            .collect();
        let rag = crate::rag::RagIndex::build(modules);
        let protocol = RepairProtocol::default();
        let mut lifted = 0usize;
        for p in suite.iter().take(8) {
            let plain = eval_repair(&model, p, &protocol);
            let with_rag = eval_repair_rag(&model, p, &protocol, &rag, 2);
            assert!(
                with_rag.syntax_errors <= plain.syntax_errors,
                "{}: RAG added syntax errors ({} > {})",
                p.id,
                with_rag.syntax_errors,
                plain.syntax_errors
            );
            assert!(
                with_rag.best_function >= plain.best_function - 1e-12,
                "{}: RAG lowered function rate",
                p.id
            );
            if with_rag.best_function > plain.best_function + 1e-12
                || with_rag.syntax_errors < plain.syntax_errors
            {
                lifted += 1;
            }
        }
        assert!(lifted > 0, "reference-backed RAG lifted no cell");
    }

    #[test]
    fn weak_repairer_mostly_fails() {
        let model = dda_slm::Slm::finetune(
            SlmProfile::llama2(13.0),
            &dda_core::Dataset::new(),
            &PROGRESSIVE_ORDER,
        );
        let suite = rtllm_suite();
        let p = suite.iter().find(|p| p.id == "adder_8bit").unwrap();
        let cell = eval_repair(&model, p, &RepairProtocol::default());
        assert!(cell.syntax_errors >= 3, "{cell:?}");
    }
}
