//! # dda-eval
//!
//! The evaluation harness reproducing the paper's §4 protocols:
//!
//! * [`models`] — the six-model zoo (GPT-3.5, Ours-7B/13B, Thakur et al.,
//!   pretrained Llama-2, and the completion-only General-Aug ablation);
//! * [`generation`] — Verilog generation under pass@5 with lint syntax
//!   scoring and simulated-testbench function scoring (Table 5);
//! * [`repair_eval`] — Verilog repair from tool-feedback inputs (Table 3);
//! * [`script_eval`] — SiliconCompiler script generation, iterations to
//!   syntactic/functional success under pass@10 (Table 4);
//! * [`ablation`] — data-composition (Fig. 7/§4.2.2), mutation-cap,
//!   training-order, and corpus-size ablations;
//! * [`agent`] — the Fig. 1 EDA-tool agent loop (generate → tool feedback
//!   → repair → retry): the sequential episode, its comparison against
//!   single-shot generation, and the parallel supervised pass@k chain
//!   batch with deterministic early-exit;
//! * [`supervised`] — parallel, deadline-supervised, resumable variants
//!   of the three sweeps, running on the `dda-runtime` engine;
//! * [`report`] — plain-text table rendering for the regeneration binaries.
//!
//! ## Example
//!
//! Build a small model zoo and score one Thakur problem under the
//! Table-5 pass@5 protocol (the table binaries do exactly this over the
//! full suites):
//!
//! ```
//! use dda_eval::{eval_suite, GenProtocol, ModelId, ModelZoo, ZooOptions};
//!
//! let zoo = ModelZoo::build(&ZooOptions { corpus_modules: 8, ..ZooOptions::default() });
//! let suite = dda_benchmarks::thakur_suite();
//! let rows = eval_suite(zoo.model(ModelId::Ours13B), &suite[..1], &GenProtocol::default());
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].cells.len(), 3); // one cell per prompt detail level
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod agent;
pub mod generation;
pub mod models;
pub mod rag;
pub mod repair_eval;
pub mod report;
pub mod script_eval;
pub mod supervised;

pub use agent::{
    agent_batch, agent_batch_sequential, agent_episode, agent_vs_single, AgentBatchOptions,
    AgentBatchOutcome, AgentOutcome, AgentProtocol, ChainOutcome,
};
pub use dda_sim::EvalMode;
pub use generation::{
    eval_cell, eval_suite, run_testbench, run_testbench_verdict, run_testbench_verdict_with,
    run_testbench_verdicts_batched, success_rate, GenCell, GenProtocol, GenRow, TestbenchVerdict,
};
pub use models::{ModelId, ModelZoo, ZooOptions};
pub use rag::{RagIndex, RAG_SHARDS};
pub use repair_eval::{
    eval_repair, eval_repair_rag, eval_repair_suite, eval_repair_suite_rag, RepairCell,
    RepairProtocol,
};
pub use report::TextTable;
pub use script_eval::{eval_script, eval_script_suite, ScriptCell, ScriptProtocol};
pub use supervised::{
    eval_repair_suite_supervised, eval_script_suite_supervised, eval_suite_supervised, SweepOptions,
};
