//! The EDA-tool agent loop of the paper's Fig. 1, sequential and parallel.
//!
//! The paper motivates a chip-design LLM that "works like a human
//! programmer by interacting with EDA tool feedback to remodify the
//! Verilog": generate, run the checker, feed the diagnostics back through
//! the repair pathway, and retry. This module implements that loop twice:
//!
//! * [`agent_episode`] — the original sequential episode (lint feedback
//!   only, one candidate), kept verbatim as the historical reference that
//!   `agent_vs_single` and the `agent` bench binary measure;
//! * [`agent_batch`] / [`agent_batch_sequential`] — the pass@k **chain**
//!   batch: each of `k` independent chains runs the full
//!   generate → lint → simulate → feed-diagnostics → repair loop, and the
//!   batch runs its chains as units on the `dda-runtime` supervised
//!   engine (per-chain wall-clock deadlines, seeded retries), optionally
//!   early-exiting as soon as the lowest-indexed passing chain commits.
//!
//! Determinism contract: with early-exit off, [`agent_batch`] is
//! bit-identical to [`agent_batch_sequential`] for any worker count —
//! every chain derives its RNG from `(seed, problem, level, model,
//! chain)` and shares no mutable state. With early-exit on, the batch
//! commits the *lowest-indexed* passing chain: chains below it always run
//! to completion (they could win), only chains above it are cancelled, so
//! the reported outcome is still worker-count-invariant even though
//! wall-clock and speculative work are not. DESIGN.md §5k spells out the
//! argument; `tests/agent_parallel.rs` pins it with proptest.
//!
//! [`AgentProtocol::tool_wait`] makes the external-call stalls of the
//! deployed setting (EDA-tool subprocess spawns, LLM API round-trips)
//! explicit in the in-process simulation: chains sleep through each
//! modeled call, outcomes never change, and the parallel batch earns its
//! speedup the same way it would in production — by overlapping waits.

use crate::generation::{
    run_testbench, run_testbench_verdict_with, run_testbench_verdicts_batched,
    testbench_sim_options,
};
use dda_benchmarks::VerilogProblem;
use dda_core::align::ALIGN_INSTRUCT;
use dda_core::repair::REPAIR_INSTRUCT;
use dda_runtime::{run_supervised, CancelToken, RetryPolicy, RunOptions, UnitOutcome};
use dda_sim::{EvalMode, SimOptions, MAX_BATCH_LANES};
use dda_slm::{GenOptions, Slm};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Functional pass threshold shared by every agent scorer.
const PASS_THRESHOLD: f64 = 1.0 - 1e-9;

/// Outcome of one agent episode.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentOutcome {
    /// Tool-feedback iterations consumed (1 = the first draft sufficed).
    pub iterations: usize,
    /// Whether the final candidate lints clean.
    pub lint_clean: bool,
    /// Functional pass rate of the final candidate.
    pub function: f64,
    /// Whether the repair loop (not the first draft) produced the final
    /// clean candidate.
    pub repaired_by_loop: bool,
}

/// Agent configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentProtocol {
    /// Maximum tool-feedback iterations after the first draft.
    pub max_feedback_iters: usize,
    /// Sampling temperature.
    pub temperature: f64,
    /// Seed.
    pub seed: u64,
    /// Modeled wall-clock stall per external call in a chain — the LLM
    /// round-trip for each draft/repair and the EDA-tool invocation for
    /// each lint+simulate round. Zero (the default) adds nothing. In the
    /// deployed setting these calls dominate wall-clock (subprocess spawn
    /// plus API latency), and overlapping them is what the parallel batch
    /// buys; the in-process simulation makes that stall explicit so the
    /// benchmarks measure the same shape. A nonzero wait never changes an
    /// outcome — chains sleep, they do not reschedule — and the stall is
    /// honored by the chain batches ([`agent_batch`] and
    /// [`agent_batch_sequential`]), not by the historical
    /// [`agent_episode`] reference.
    pub tool_wait: Duration,
}

impl Default for AgentProtocol {
    fn default() -> Self {
        AgentProtocol {
            max_feedback_iters: 3,
            temperature: 0.1,
            seed: 7331,
            tool_wait: Duration::ZERO,
        }
    }
}

/// Runs one generate → lint → repair episode against a problem prompt.
///
/// ```
/// use dda_eval::{agent_episode, AgentProtocol};
/// use dda_slm::{Slm, SlmProfile, PROGRESSIVE_ORDER};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let corpus = dda_corpus::generate_corpus(8, &mut rng);
/// let (data, _) = dda_core::pipeline::augment(
///     &corpus,
///     &dda_core::pipeline::PipelineOptions::default(),
///     &mut rng,
/// );
/// let model = Slm::finetune(SlmProfile::llama2(13.0), &data, &PROGRESSIVE_ORDER);
///
/// let problem = &dda_benchmarks::thakur_suite()[0];
/// let protocol = AgentProtocol::default();
/// let out = agent_episode(&model, problem, 2, &protocol);
/// assert!(out.iterations >= 1 && out.iterations <= 1 + protocol.max_feedback_iters);
/// ```
pub fn agent_episode(
    model: &Slm,
    problem: &VerilogProblem,
    level: usize,
    protocol: &AgentProtocol,
) -> AgentOutcome {
    let opts = GenOptions {
        temperature: protocol.temperature,
    };
    let mut rng = SmallRng::seed_from_u64(
        protocol.seed ^ fnv(problem.id) ^ ((level as u64) << 40) ^ fnv(&model.profile().name),
    );
    let prompt = &problem.prompts[level];
    let mut candidate = model.generate(ALIGN_INSTRUCT, prompt, &opts, &mut rng);
    let file = format!("{}.v", problem.module_name);
    let mut repaired_by_loop = false;
    let mut iterations = 1;
    for _ in 0..protocol.max_feedback_iters {
        let report = dda_lint::check_source(&file, &candidate);
        if report.is_clean() {
            break;
        }
        iterations += 1;
        // Fig. 6 layout: the tool transcript plus the rejected file.
        let input = format!("{}, {}", report.render().trim_end(), candidate);
        let fixed = model.generate(REPAIR_INSTRUCT, &input, &opts, &mut rng);
        if dda_lint::check_source(&file, &fixed).is_clean() {
            candidate = fixed;
            repaired_by_loop = true;
            break;
        }
        // Repair failed: redraft from the prompt with a fresh sample.
        candidate = model.generate(ALIGN_INSTRUCT, prompt, &opts, &mut rng);
    }
    let lint_clean = dda_lint::check_source(&file, &candidate).is_clean();
    let function = if lint_clean {
        run_testbench(problem, &candidate)
    } else {
        0.0
    };
    AgentOutcome {
        iterations,
        lint_clean,
        function,
        repaired_by_loop,
    }
}

/// Compares single-shot (k = 1, no feedback) against the agent loop over a
/// suite. Returns `(single_success, agent_success, mean_agent_iters)`
/// where success = any prompt level reaching a 100% functional pass.
pub fn agent_vs_single(
    model: &Slm,
    problems: &[VerilogProblem],
    protocol: &AgentProtocol,
) -> (f64, f64, f64) {
    let single = AgentProtocol {
        max_feedback_iters: 0,
        ..*protocol
    };
    let mut single_ok = 0usize;
    let mut agent_ok = 0usize;
    let mut iters = 0usize;
    let mut episodes = 0usize;
    for p in problems {
        let mut s = false;
        let mut a = false;
        for level in 0..p.prompts.len() {
            let o1 = agent_episode(model, p, level, &single);
            s |= o1.function >= 1.0 - 1e-9;
            let o2 = agent_episode(model, p, level, protocol);
            a |= o2.function >= 1.0 - 1e-9;
            iters += o2.iterations;
            episodes += 1;
        }
        single_ok += s as usize;
        agent_ok += a as usize;
    }
    let n = problems.len().max(1) as f64;
    (
        single_ok as f64 / n,
        agent_ok as f64 / n,
        iters as f64 / episodes.max(1) as f64,
    )
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Options for one pass@k agent batch ([`agent_batch`] and its
/// sequential reference [`agent_batch_sequential`]).
#[derive(Debug, Clone)]
pub struct AgentBatchOptions {
    /// Candidate chains in the batch (the k of pass@k).
    pub k: usize,
    /// Per-chain protocol: round budget, temperature, seed.
    pub protocol: AgentProtocol,
    /// Worker threads for the parallel batch (ignored by the sequential
    /// reference; clamped to at least 1).
    pub workers: usize,
    /// Commit the lowest-indexed passing chain as soon as it is known and
    /// cancel every chain above it. Off = run all chains to completion
    /// (the bit-equivalence mode).
    pub early_exit: bool,
    /// Wall-clock deadline per chain attempt (`None` = unbounded). A
    /// chain that blows its deadline books as cancelled.
    pub chain_deadline: Option<Duration>,
    /// Retry budget for chains (chains are deterministic, so this only
    /// matters under injected faults).
    pub retry: RetryPolicy,
    /// Lockstep lanes per candidate scoring: `R > 1` scores R identical
    /// copies of each lint-clean candidate through the batch simulation
    /// engine. Verdicts are bit-identical to the scalar path; this is the
    /// stress knob, not a semantic one.
    pub runs_per_batch: usize,
    /// Simulator engine for testbench scoring.
    pub eval_mode: EvalMode,
}

impl Default for AgentBatchOptions {
    fn default() -> Self {
        AgentBatchOptions {
            k: 5,
            protocol: AgentProtocol::default(),
            workers: 1,
            early_exit: false,
            chain_deadline: None,
            retry: RetryPolicy::none(),
            runs_per_batch: 1,
            eval_mode: EvalMode::default(),
        }
    }
}

/// Terminal state of one candidate chain in a pass@k batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainOutcome {
    /// Chain index within the batch (0-based; doubles as the sample id in
    /// the chain's RNG seed).
    pub chain: usize,
    /// Tool rounds consumed (1 = the first draft was evaluated once).
    pub rounds: usize,
    /// Whether the final candidate lints clean.
    pub lint_clean: bool,
    /// Functional pass rate of the final candidate.
    pub function: f64,
    /// Whether the repair pathway (not a fresh redraft) produced the
    /// final candidate.
    pub repaired_by_loop: bool,
    /// Whether the chain was cut short — early-exit, deadline, or an
    /// injected fault — instead of running to its own conclusion.
    pub cancelled: bool,
}

impl ChainOutcome {
    /// Whether this chain's final candidate fully passes the testbench.
    pub fn passed(&self) -> bool {
        !self.cancelled && self.lint_clean && self.function >= PASS_THRESHOLD
    }

    /// The canonical cancelled outcome: every cut-short chain reports
    /// this exact shape so batch outputs stay worker-count-invariant.
    fn cancelled_at(chain: usize) -> ChainOutcome {
        ChainOutcome {
            chain,
            rounds: 0,
            lint_clean: false,
            function: 0.0,
            repaired_by_loop: false,
            cancelled: true,
        }
    }
}

/// Result of one pass@k agent batch, in chain order.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentBatchOutcome {
    /// One outcome per chain, ordered by chain index.
    pub chains: Vec<ChainOutcome>,
    /// Lowest-indexed passing chain, when any chain passed.
    pub winner: Option<usize>,
    /// Tool rounds spent by committed (non-cancelled) chains. This is the
    /// deterministic work measure: speculative rounds spent by chains the
    /// early-exit later cancelled are excluded.
    pub rounds_total: usize,
    /// Chains the supervised engine quarantined (deadline expiry or a
    /// caught panic); they book as cancelled in [`chains`](Self::chains).
    pub quarantined: usize,
}

impl AgentBatchOutcome {
    /// Whether any chain fully passed the testbench.
    pub fn passed(&self) -> bool {
        self.winner.is_some()
    }
}

/// Per-chain RNG seed: chain 0 reproduces [`agent_episode`]'s stream.
fn chain_seed(
    protocol: &AgentProtocol,
    model: &Slm,
    problem: &VerilogProblem,
    level: usize,
    chain: usize,
) -> u64 {
    protocol.seed
        ^ fnv(problem.id)
        ^ ((level as u64) << 40)
        ^ fnv(&model.profile().name)
        ^ (chain as u64).wrapping_mul(0x9e3779b97f4a7c15)
}

/// Scores one lint-clean candidate, on the scalar engine or — when the
/// batch asks for lockstep lanes — through the batched simulator.
/// Verdicts are engine-invariant, so this cannot change an outcome.
fn score_candidate(
    problem: &VerilogProblem,
    candidate: &str,
    opts: &AgentBatchOptions,
    sim: &SimOptions,
) -> f64 {
    if opts.runs_per_batch <= 1 {
        return run_testbench_verdict_with(problem, candidate, sim).pass_rate();
    }
    let runs = opts.runs_per_batch.min(MAX_BATCH_LANES);
    run_testbench_verdicts_batched(problem, candidate, runs, sim)
        .first()
        .map(|v| v.pass_rate())
        .unwrap_or(0.0)
}

/// Sleeps for the protocol's modeled external-call stall, clipped to the
/// chain's remaining deadline so the watchdog never has to cut a chain
/// mid-sleep. Cancelled chains skip the stall entirely.
fn tool_stall(protocol: &AgentProtocol, cancel: &CancelToken) {
    if protocol.tool_wait.is_zero() || cancel.is_cancelled() {
        return;
    }
    let wait = match cancel.remaining() {
        Some(left) => protocol.tool_wait.min(left),
        None => protocol.tool_wait,
    };
    std::thread::sleep(wait);
}

/// Runs one full candidate chain: draft, then up to
/// `protocol.max_feedback_iters` rounds of lint → simulate → feed the
/// transcript back through the repair pathway. Every round emits an
/// `agent.round` span/counter/trace-event; the chain emits `agent.chain`.
fn run_chain(
    model: &Slm,
    problem: &VerilogProblem,
    level: usize,
    chain: usize,
    context: &[String],
    opts: &AgentBatchOptions,
    cancel: &CancelToken,
) -> ChainOutcome {
    let chain_span = dda_obs::span("agent.chain");
    dda_obs::count("agent.chain.started", 1);
    let gen = GenOptions {
        temperature: opts.protocol.temperature,
    };
    let mut rng = SmallRng::seed_from_u64(chain_seed(&opts.protocol, model, problem, level, chain));
    let prompt = &problem.prompts[level];
    let file = format!("{}.v", problem.module_name);
    let mut sim = testbench_sim_options(cancel);
    sim.eval_mode = opts.eval_mode;

    let mut candidate = model.generate(ALIGN_INSTRUCT, prompt, &gen, &mut rng);
    tool_stall(&opts.protocol, cancel);
    let mut repaired_by_loop = false;
    let mut rounds = 0usize;
    let (mut lint_clean, mut function);
    loop {
        if cancel.is_cancelled() {
            dda_obs::count("agent.chain.cancelled", 1);
            return ChainOutcome::cancelled_at(chain);
        }
        rounds += 1;
        dda_fail::fail_point!("eval.agent.round");
        let round_span = dda_obs::span("agent.round");
        dda_obs::count("agent.round", 1);
        tool_stall(&opts.protocol, cancel);
        let report = dda_lint::check_source(&file, &candidate);
        lint_clean = report.is_clean();
        function = if lint_clean {
            score_candidate(problem, &candidate, opts, &sim)
        } else {
            0.0
        };
        if dda_obs::enabled() {
            dda_obs::emit(
                dda_obs::Event::new("agent.round")
                    .str("problem", problem.id)
                    .u64("level", level as u64)
                    .u64("chain", chain as u64)
                    .u64("round", rounds as u64)
                    .bool("lint", lint_clean)
                    .f64("function", function),
            );
        }
        drop(round_span);
        if (lint_clean && function >= PASS_THRESHOLD) || rounds > opts.protocol.max_feedback_iters {
            break;
        }
        // Fig. 6 layout: the tool transcript plus the rejected file. A
        // lint-clean-but-wrong candidate feeds the simulator's verdict
        // instead of an empty lint report.
        let diagnostic = if lint_clean {
            format!("/{file}: testbench pass rate {function:.4} below 1.0000")
        } else {
            report.render().trim_end().to_string()
        };
        let input = format!("{diagnostic}, {candidate}");
        let fixed = model.generate_with_context(REPAIR_INSTRUCT, &input, context, &gen, &mut rng);
        tool_stall(&opts.protocol, cancel);
        if dda_lint::check_source(&file, &fixed).is_clean() {
            candidate = fixed;
            repaired_by_loop = true;
        } else {
            // Repair failed: redraft from the prompt with a fresh sample.
            candidate = model.generate(ALIGN_INSTRUCT, prompt, &gen, &mut rng);
            tool_stall(&opts.protocol, cancel);
            repaired_by_loop = false;
        }
    }
    let out = ChainOutcome {
        chain,
        rounds,
        lint_clean,
        function,
        repaired_by_loop,
        cancelled: false,
    };
    dda_obs::count(
        if out.passed() {
            "agent.chain.passed"
        } else {
            "agent.chain.failed"
        },
        1,
    );
    if dda_obs::enabled() {
        let wall_ms = chain_span
            .finish()
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        dda_obs::emit(
            dda_obs::Event::new("agent.chain")
                .str("problem", problem.id)
                .u64("level", level as u64)
                .u64("chain", chain as u64)
                .u64("rounds", out.rounds as u64)
                .bool("passed", out.passed())
                .f64("wall_ms", wall_ms),
        );
    }
    out
}

/// Canonicalizes raw chain outcomes into the committed batch view:
/// the winner is the lowest-indexed passing chain, and — under early
/// exit — every chain above the winner reports the canonical cancelled
/// outcome whether or not its speculative run happened to finish.
fn assemble(mut chains: Vec<ChainOutcome>, early_exit: bool) -> AgentBatchOutcome {
    let winner = chains.iter().find(|c| c.passed()).map(|c| c.chain);
    if early_exit {
        if let Some(w) = winner {
            for c in chains.iter_mut().skip(w + 1) {
                *c = ChainOutcome::cancelled_at(c.chain);
            }
        }
    }
    let rounds_total = chains
        .iter()
        .filter(|c| !c.cancelled)
        .map(|c| c.rounds)
        .sum();
    AgentBatchOutcome {
        chains,
        winner,
        rounds_total,
        quarantined: 0,
    }
}

fn emit_batch_event(
    problem: &VerilogProblem,
    level: usize,
    opts: &AgentBatchOptions,
    out: &AgentBatchOutcome,
) {
    if !dda_obs::enabled() {
        return;
    }
    let mut ev = dda_obs::Event::new("agent.batch")
        .str("problem", problem.id)
        .u64("level", level as u64)
        .u64("k", opts.k as u64)
        .bool("early_exit", opts.early_exit)
        .bool("passed", out.passed())
        .u64("rounds_total", out.rounds_total as u64);
    if let Some(w) = out.winner {
        ev = ev.u64("winner", w as u64);
    }
    dda_obs::emit(ev);
}

/// The sequential reference for a pass@k chain batch: chains run in
/// index order on the calling thread. With early-exit on, chains after
/// the first pass are never started (they report the canonical cancelled
/// outcome). [`agent_batch`] is bit-identical to this function whenever
/// early-exit is off; the proptest in `tests/agent_parallel.rs` holds it
/// to that.
pub fn agent_batch_sequential(
    model: &Slm,
    problem: &VerilogProblem,
    level: usize,
    context: &[String],
    opts: &AgentBatchOptions,
) -> AgentBatchOutcome {
    let _span = dda_obs::span("agent.batch");
    let never = CancelToken::new();
    let mut chains = Vec::with_capacity(opts.k);
    for chain in 0..opts.k {
        if opts.early_exit && chains.iter().any(ChainOutcome::passed) {
            chains.push(ChainOutcome::cancelled_at(chain));
            continue;
        }
        chains.push(run_chain(
            model, problem, level, chain, context, opts, &never,
        ));
    }
    let out = assemble(chains, opts.early_exit);
    emit_batch_event(problem, level, opts, &out);
    out
}

/// Runs a pass@k chain batch on the supervised `dda-runtime` engine:
/// each chain is one unit with a per-attempt wall-clock deadline and the
/// batch's retry budget.
///
/// With `early_exit` the batch commits the lowest-indexed passing chain
/// as soon as it is known and cancels every chain above it (chains below
/// it always run to completion — one of them could still win). The
/// committed outcome is therefore deterministic and worker-count
/// invariant in both modes; only wall-clock and the amount of cancelled
/// speculative work vary. See DESIGN.md §5k for the full argument.
///
/// ```
/// use dda_eval::{agent_batch, agent_batch_sequential, AgentBatchOptions};
/// use dda_slm::{Slm, SlmProfile, PROGRESSIVE_ORDER};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let corpus = dda_corpus::generate_corpus(8, &mut rng);
/// let (data, _) = dda_core::pipeline::augment(
///     &corpus,
///     &dda_core::pipeline::PipelineOptions::default(),
///     &mut rng,
/// );
/// let model = Slm::finetune(SlmProfile::llama2(13.0), &data, &PROGRESSIVE_ORDER);
/// let problem = &dda_benchmarks::thakur_suite()[0];
///
/// let opts = AgentBatchOptions { k: 3, workers: 4, ..AgentBatchOptions::default() };
/// let parallel = agent_batch(&model, problem, 2, &[], &opts);
/// let reference = agent_batch_sequential(&model, problem, 2, &[], &opts);
/// assert_eq!(parallel, reference); // bit-identical with early-exit off
/// ```
pub fn agent_batch(
    model: &Slm,
    problem: &VerilogProblem,
    level: usize,
    context: &[String],
    opts: &AgentBatchOptions,
) -> AgentBatchOutcome {
    let _span = dda_obs::span("agent.batch");
    if opts.k == 0 {
        return AgentBatchOutcome {
            chains: Vec::new(),
            winner: None,
            rounds_total: 0,
            quarantined: 0,
        };
    }
    // Lowest-indexed passing chain so far: the early-exit floor.
    let best = AtomicUsize::new(usize::MAX);
    // Cancellation handles for in-flight chains, indexed by chain.
    let inflight: Vec<Mutex<Option<CancelToken>>> = (0..opts.k).map(|_| Mutex::new(None)).collect();
    let run = RunOptions {
        workers: opts.workers,
        unit_deadline: opts.chain_deadline,
        retry: opts.retry,
        ..RunOptions::default()
    };
    let report = run_supervised(opts.k, &run, |chain, token| {
        // Deterministic gate: a lower chain already passed, so this
        // chain can never be committed — skip it entirely.
        if opts.early_exit && best.load(Ordering::Acquire) < chain {
            dda_obs::count("agent.chain.cancelled", 1);
            return Ok(ChainOutcome::cancelled_at(chain));
        }
        // A child of the engine's token: the chain still honors the
        // engine deadline/watchdog, and the early-exit can cancel this
        // one chain without touching its siblings.
        let sib = token.child();
        *inflight[chain].lock().unwrap() = Some(sib.clone());
        let out = run_chain(model, problem, level, chain, context, opts, &sib);
        *inflight[chain].lock().unwrap() = None;
        if opts.early_exit && out.passed() {
            let mut cur = best.load(Ordering::Acquire);
            while chain < cur {
                match best.compare_exchange(cur, chain, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
            // Cut every in-flight chain above the floor loose. Only
            // chains above a passing index are ever cancelled, so the
            // final winner's prefix always runs to completion.
            let floor = best.load(Ordering::Acquire);
            for slot in inflight.iter().skip(floor + 1) {
                if let Some(t) = slot.lock().unwrap().as_ref() {
                    t.cancel();
                }
            }
        }
        Ok(out)
    });
    let mut quarantined = 0usize;
    let chains = report
        .units
        .into_iter()
        .map(|u| match u.outcome {
            UnitOutcome::Ok(c) => c,
            // Deadline expiry or a caught panic: the canonical cancelled
            // outcome, same as an early-exit cut.
            UnitOutcome::Quarantined { .. } => {
                quarantined += 1;
                ChainOutcome::cancelled_at(u.unit)
            }
        })
        .collect();
    let mut out = assemble(chains, opts.early_exit);
    out.quarantined = quarantined;
    emit_batch_event(problem, level, opts, &out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_benchmarks::thakur_suite;
    use dda_core::pipeline::{augment, PipelineOptions};
    use dda_slm::{SlmProfile, PROGRESSIVE_ORDER};

    fn model() -> Slm {
        let mut rng = SmallRng::seed_from_u64(77);
        let corpus = dda_corpus::generate_corpus(64, &mut rng);
        let (ds, _) = augment(&corpus, &PipelineOptions::default(), &mut rng);
        Slm::finetune(
            SlmProfile {
                name: "agent-under-test".into(),
                ..SlmProfile::llama2(13.0)
            },
            &ds,
            &PROGRESSIVE_ORDER,
        )
    }

    #[test]
    fn episodes_terminate_and_report() {
        let m = model();
        let suite = thakur_suite();
        let protocol = AgentProtocol::default();
        for p in suite.iter().take(4) {
            let o = agent_episode(&m, p, 2, &protocol);
            assert!(o.iterations >= 1);
            assert!(o.iterations <= 1 + protocol.max_feedback_iters);
            if !o.lint_clean {
                assert_eq!(o.function, 0.0);
            }
        }
    }

    #[test]
    fn feedback_loop_never_hurts_lint_rate() {
        let m = model();
        let suite = thakur_suite();
        let protocol = AgentProtocol::default();
        let single = AgentProtocol {
            max_feedback_iters: 0,
            ..protocol
        };
        let mut single_clean = 0;
        let mut agent_clean = 0;
        for p in suite.iter().take(8) {
            let s = agent_episode(&m, p, 2, &single);
            let a = agent_episode(&m, p, 2, &protocol);
            single_clean += s.lint_clean as usize;
            agent_clean += a.lint_clean as usize;
        }
        assert!(
            agent_clean >= single_clean,
            "agent {agent_clean} < single {single_clean}"
        );
    }

    #[test]
    fn tool_wait_never_changes_outcomes() {
        let m = model();
        let suite = thakur_suite();
        let baseline = AgentBatchOptions::default();
        let stalled = AgentBatchOptions {
            protocol: AgentProtocol {
                tool_wait: Duration::from_micros(300),
                ..baseline.protocol
            },
            ..baseline.clone()
        };
        for p in suite.iter().take(3) {
            let a = agent_batch_sequential(&m, p, 2, &[], &baseline);
            let b = agent_batch_sequential(&m, p, 2, &[], &stalled);
            assert_eq!(a, b, "{}: sequential outcome drifted under tool_wait", p.id);
            let c = agent_batch(
                &m,
                p,
                2,
                &[],
                &AgentBatchOptions {
                    workers: 4,
                    ..stalled.clone()
                },
            );
            assert_eq!(a, c, "{}: parallel outcome drifted under tool_wait", p.id);
        }
    }
}
