//! The EDA-tool agent loop of the paper's Fig. 1.
//!
//! The paper motivates a chip-design LLM that "works like a human
//! programmer by interacting with EDA tool feedback to remodify the
//! Verilog": generate, run the checker, feed the diagnostics back through
//! the repair pathway, and retry. This module implements that loop and
//! measures what it buys over single-shot generation — the synthesis of
//! the §3.1 (generation) and §3.2 (repair) datasets into one agent.

use crate::generation::run_testbench;
use dda_benchmarks::VerilogProblem;
use dda_core::align::ALIGN_INSTRUCT;
use dda_core::repair::REPAIR_INSTRUCT;
use dda_slm::{GenOptions, Slm};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Outcome of one agent episode.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentOutcome {
    /// Tool-feedback iterations consumed (1 = the first draft sufficed).
    pub iterations: usize,
    /// Whether the final candidate lints clean.
    pub lint_clean: bool,
    /// Functional pass rate of the final candidate.
    pub function: f64,
    /// Whether the repair loop (not the first draft) produced the final
    /// clean candidate.
    pub repaired_by_loop: bool,
}

/// Agent configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentProtocol {
    /// Maximum tool-feedback iterations after the first draft.
    pub max_feedback_iters: usize,
    /// Sampling temperature.
    pub temperature: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for AgentProtocol {
    fn default() -> Self {
        AgentProtocol {
            max_feedback_iters: 3,
            temperature: 0.1,
            seed: 7331,
        }
    }
}

/// Runs one generate → lint → repair episode against a problem prompt.
pub fn agent_episode(
    model: &Slm,
    problem: &VerilogProblem,
    level: usize,
    protocol: &AgentProtocol,
) -> AgentOutcome {
    let opts = GenOptions {
        temperature: protocol.temperature,
    };
    let mut rng = SmallRng::seed_from_u64(
        protocol.seed ^ fnv(problem.id) ^ ((level as u64) << 40) ^ fnv(&model.profile().name),
    );
    let prompt = &problem.prompts[level];
    let mut candidate = model.generate(ALIGN_INSTRUCT, prompt, &opts, &mut rng);
    let file = format!("{}.v", problem.module_name);
    let mut repaired_by_loop = false;
    let mut iterations = 1;
    for _ in 0..protocol.max_feedback_iters {
        let report = dda_lint::check_source(&file, &candidate);
        if report.is_clean() {
            break;
        }
        iterations += 1;
        // Fig. 6 layout: the tool transcript plus the rejected file.
        let input = format!("{}, {}", report.render().trim_end(), candidate);
        let fixed = model.generate(REPAIR_INSTRUCT, &input, &opts, &mut rng);
        if dda_lint::check_source(&file, &fixed).is_clean() {
            candidate = fixed;
            repaired_by_loop = true;
            break;
        }
        // Repair failed: redraft from the prompt with a fresh sample.
        candidate = model.generate(ALIGN_INSTRUCT, prompt, &opts, &mut rng);
    }
    let lint_clean = dda_lint::check_source(&file, &candidate).is_clean();
    let function = if lint_clean {
        run_testbench(problem, &candidate)
    } else {
        0.0
    };
    AgentOutcome {
        iterations,
        lint_clean,
        function,
        repaired_by_loop,
    }
}

/// Compares single-shot (k = 1, no feedback) against the agent loop over a
/// suite. Returns `(single_success, agent_success, mean_agent_iters)`
/// where success = any prompt level reaching a 100% functional pass.
pub fn agent_vs_single(
    model: &Slm,
    problems: &[VerilogProblem],
    protocol: &AgentProtocol,
) -> (f64, f64, f64) {
    let single = AgentProtocol {
        max_feedback_iters: 0,
        ..*protocol
    };
    let mut single_ok = 0usize;
    let mut agent_ok = 0usize;
    let mut iters = 0usize;
    let mut episodes = 0usize;
    for p in problems {
        let mut s = false;
        let mut a = false;
        for level in 0..p.prompts.len() {
            let o1 = agent_episode(model, p, level, &single);
            s |= o1.function >= 1.0 - 1e-9;
            let o2 = agent_episode(model, p, level, protocol);
            a |= o2.function >= 1.0 - 1e-9;
            iters += o2.iterations;
            episodes += 1;
        }
        single_ok += s as usize;
        agent_ok += a as usize;
    }
    let n = problems.len().max(1) as f64;
    (
        single_ok as f64 / n,
        agent_ok as f64 / n,
        iters as f64 / episodes.max(1) as f64,
    )
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_benchmarks::thakur_suite;
    use dda_core::pipeline::{augment, PipelineOptions};
    use dda_slm::{SlmProfile, PROGRESSIVE_ORDER};

    fn model() -> Slm {
        let mut rng = SmallRng::seed_from_u64(77);
        let corpus = dda_corpus::generate_corpus(64, &mut rng);
        let (ds, _) = augment(&corpus, &PipelineOptions::default(), &mut rng);
        Slm::finetune(
            SlmProfile {
                name: "agent-under-test".into(),
                ..SlmProfile::llama2(13.0)
            },
            &ds,
            &PROGRESSIVE_ORDER,
        )
    }

    #[test]
    fn episodes_terminate_and_report() {
        let m = model();
        let suite = thakur_suite();
        let protocol = AgentProtocol::default();
        for p in suite.iter().take(4) {
            let o = agent_episode(&m, p, 2, &protocol);
            assert!(o.iterations >= 1);
            assert!(o.iterations <= 1 + protocol.max_feedback_iters);
            if !o.lint_clean {
                assert_eq!(o.function, 0.0);
            }
        }
    }

    #[test]
    fn feedback_loop_never_hurts_lint_rate() {
        let m = model();
        let suite = thakur_suite();
        let protocol = AgentProtocol::default();
        let single = AgentProtocol {
            max_feedback_iters: 0,
            ..protocol
        };
        let mut single_clean = 0;
        let mut agent_clean = 0;
        for p in suite.iter().take(8) {
            let s = agent_episode(&m, p, 2, &single);
            let a = agent_episode(&m, p, 2, &protocol);
            single_clean += s.lint_clean as usize;
            agent_clean += a.lint_clean as usize;
        }
        assert!(
            agent_clean >= single_clean,
            "agent {agent_clean} < single {single_clean}"
        );
    }
}
