//! Property-based tests over the core data structures and invariants,
//! spanning crate boundaries: parser/printer round trips, four-state
//! arithmetic laws, JSONL round trips, tokenizer invariances, mutation
//! budget bounds, and checker monotonicity.

use chipdda::core::dataset::DataEntry;
use chipdda::core::repair::{break_verilog, RepairOptions};
use chipdda::verilog::printer::print_source;
use chipdda::verilog::{parse, LogicVec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Any corpus module parses, and printing then reparsing reaches the
    /// printer's fixed point (print ∘ parse ∘ print = print).
    #[test]
    fn corpus_print_parse_fixed_point(seed in 0u64..500, idx in 0usize..49) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let family = chipdda::corpus::Family::ALL[idx];
        let m = chipdda::corpus::generate_module(family, seed as usize, &mut rng);
        let sf1 = parse(&m.source).expect("corpus modules parse");
        let printed = print_source(&sf1);
        let sf2 = parse(&printed).expect("printed output parses");
        prop_assert_eq!(printed, print_source(&sf2));
    }

    /// Four-state addition agrees with wrapping u64 addition on known bits.
    #[test]
    fn logic_add_matches_u64(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2, w in 1usize..64) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let va = LogicVec::from_u64(a & mask, w);
        let vb = LogicVec::from_u64(b & mask, w);
        let sum = chipdda::sim::ops::add(&va, &vb);
        prop_assert_eq!(sum.to_u64(), Some(((a & mask).wrapping_add(b & mask)) & mask));
    }

    /// Resize then resize back preserves the low bits.
    #[test]
    fn logic_resize_preserves_low_bits(v in any::<u64>(), w1 in 1usize..64, w2 in 1usize..64) {
        let lv = LogicVec::from_u64(v, w1);
        let round = lv.resize(w2, false).resize(w1, false);
        let keep = w1.min(w2);
        for i in 0..keep {
            prop_assert_eq!(round.bit(i), lv.bit(i));
        }
    }

    /// JSONL serialization round-trips arbitrary unicode payloads.
    #[test]
    fn jsonl_round_trips(instruct in "\\PC*", input in "\\PC*", output in "\\PC*") {
        let e = DataEntry::new(instruct, input, output);
        let line = chipdda::core::json::to_json_line(&e);
        let back = chipdda::core::json::from_jsonl(&line).expect("round trip");
        prop_assert_eq!(back, vec![e]);
    }

    /// The tokenizer is whitespace-invariant.
    #[test]
    fn tokenizer_whitespace_invariant(words in prop::collection::vec("[a-z0-9_]{1,8}", 1..12)) {
        let tight = words.join("+");
        let spaced = words.join("  +\n ");
        prop_assert_eq!(
            chipdda::core::tokenize::tokenize(&tight),
            chipdda::core::tokenize::tokenize(&spaced)
        );
    }

    /// Error injection stays within the mutation budget and actually
    /// changes the file.
    #[test]
    fn mutation_budget_respected(seed in 0u64..300, cap in 1usize..6) {
        let src = "module m(input clk, rst, output reg [3:0] q);\n\
                   always @(posedge clk)\n  if (rst) q <= 4'd0;\n  else q <= q + 4'd1;\nendmodule\n";
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Some(b) = break_verilog(src, &RepairOptions { max_mutations: cap }, &mut rng) {
            prop_assert!(!b.mutations.is_empty());
            prop_assert!(b.mutations.len() <= cap);
            prop_assert_ne!(b.source.as_str(), src);
        }
    }

    /// The linter never panics and is deterministic on arbitrary input.
    #[test]
    fn lint_total_and_deterministic(src in "\\PC{0,200}") {
        let a = chipdda::lint::check_source("f.v", &src);
        let b = chipdda::lint::check_source("f.v", &src);
        prop_assert_eq!(a, b);
    }

    /// The SiliconCompiler generator only emits checker-clean scripts that
    /// survive a text round trip.
    #[test]
    fn sc_scripts_valid_and_round_trip(seed in 0u64..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pool = chipdda::scscript::generate_pool(3, &mut rng);
        for s in pool {
            prop_assert!(chipdda::scscript::check(&s).is_clean());
            let text = s.to_python();
            let back = chipdda::scscript::parse(&text).expect("round trip");
            prop_assert_eq!(s.stmts, back.stmts);
        }
    }

    /// The corruption channel at zero edits is the identity, and any edit
    /// count returns *some* string without panicking.
    #[test]
    fn corruption_total(seed in 0u64..200, edits in 0usize..8) {
        let src = "module m(input a, output y);\nassign y = ~a;\nendmodule\n";
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = chipdda::slm::corrupt::corrupt(src, edits, &mut rng);
        if edits == 0 {
            prop_assert_eq!(out, src);
        }
    }

    /// Sign-extension: resizing a negative signed value keeps its i64 value.
    #[test]
    fn sign_extension_preserves_value(v in -1000i64..1000, grow in 0usize..16) {
        let w = 16usize;
        let lv = LogicVec::from_u64(v as u64, w);
        let wide = lv.resize(w + grow, true);
        prop_assert_eq!(wide.to_i64(), Some(v));
    }
}

/// Explicit re-run of the shrunken case recorded in
/// `properties.proptest-regressions` (`seed = 111, cap = 3`): the vendored
/// proptest shim does not replay persistence files, so the historical
/// failure is pinned here directly.
#[test]
fn mutation_budget_regression_seed_111_cap_3() {
    let src = "module m(input clk, rst, output reg [3:0] q);\n\
               always @(posedge clk)\n  if (rst) q <= 4'd0;\n  else q <= q + 4'd1;\nendmodule\n";
    let mut rng = SmallRng::seed_from_u64(111);
    if let Some(b) = break_verilog(src, &RepairOptions { max_mutations: 3 }, &mut rng) {
        assert!(!b.mutations.is_empty());
        assert!(b.mutations.len() <= 3);
        assert_ne!(b.source.as_str(), src);
    }
}

#[test]
fn simulator_determinism_across_runs() {
    // Not a proptest (sim runs are slower); fixed sweep over seeds.
    let src = "module tb;
reg clk = 0; reg [7:0] lfsr = 8'h1;
always #5 clk = ~clk;
always @(posedge clk) lfsr <= {lfsr[6:0], lfsr[7] ^ lfsr[5] ^ lfsr[4] ^ lfsr[3]};
initial begin #500 $display(\"%h\", lfsr); $finish; end
endmodule";
    let sf = parse(src).unwrap();
    let mut outputs = Vec::new();
    for _ in 0..3 {
        let mut sim = chipdda::sim::Simulator::new(&sf, "tb").unwrap();
        outputs.push(
            sim.run(&chipdda::sim::SimOptions::default())
                .unwrap()
                .output,
        );
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}
