//! Chaos-injection tests: drive [`chipdda::core::pipeline::augment`] over
//! deliberately corrupted corpora and assert the pipeline's three
//! robustness properties end to end:
//!
//! 1. **No panic escapes** — every fault family is survivable; failures
//!    surface as quarantine records, not crashes.
//! 2. **Determinism** — the same seed over the same corrupted corpus
//!    reproduces the same dataset *and* the same report.
//! 3. **Conservation** — `ok + skipped + quarantined == corpus.len()` for
//!    every per-module stage, so no input is ever silently dropped.
//!
//! A fourth property pins backward compatibility: on a *clean* corpus the
//! new pipeline emits exactly the dataset the pre-report per-stage loop
//! produces for the same seed.

use chipdda::benchmarks::{Suite, VerilogProblem};
use chipdda::core::chaos::{chaos_corpus, inject, Fault};
use chipdda::core::completion::completion_entries;
use chipdda::core::pipeline::{augment, PipelineOptions, Stage, StageSet, QUARANTINE_INSTRUCT};
use chipdda::core::repair::repair_entries;
use chipdda::core::{Dataset, TaskKind};
use chipdda::corpus::generate_corpus;
use chipdda::eval::run_testbench_verdict_with;
use chipdda::runtime::CancelToken;
use chipdda::sim::{RunErrorKind, SimOptions, Simulator};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Small volumes so the property sweep stays fast; all stages enabled.
fn opts() -> PipelineOptions {
    PipelineOptions {
        repairs_per_module: 1,
        eda_scripts: 4,
        ..PipelineOptions::default()
    }
}

proptest! {
    /// Randomly corrupted corpora never panic the pipeline, and the report
    /// accounts for every module at every stage.
    #[test]
    fn corrupted_corpus_never_panics_and_is_conserved(seed in 0u64..24) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let corpus = generate_corpus(6, &mut rng);
        let (corpus, hits) = chaos_corpus(corpus, 0.6, &mut rng);
        let (ds, report) = augment(&corpus, &opts(), &mut rng);
        prop_assert!(report.is_conserved(), "{report:?}");
        prop_assert_eq!(report.modules, corpus.len());
        for stage in Stage::PER_MODULE {
            let t = report.stage(stage);
            prop_assert_eq!(t.ok + t.skipped + t.quarantined, corpus.len());
        }
        // Quarantines only come from corrupted modules.
        for q in &report.quarantines {
            let idx = corpus.iter().position(|m| m.name == q.module);
            prop_assert!(
                idx.is_some_and(|i| hits.iter().any(|(j, _)| *j == i)),
                "clean module {} quarantined at {}: {}",
                q.module, q.stage, q.diagnostic
            );
        }
        // The dataset itself stays consumable.
        prop_assert!(ds.iter().count() == ds.len());
    }

    /// Same seed, same corrupted corpus: identical dataset and report.
    #[test]
    fn chaos_runs_are_deterministic_per_seed(seed in 0u64..12) {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(seed);
            let corpus = generate_corpus(5, &mut rng);
            let (corpus, _) = chaos_corpus(corpus, 0.7, &mut rng);
            augment(&corpus, &opts(), &mut rng)
        };
        let (ds_a, rep_a) = run();
        let (ds_b, rep_b) = run();
        prop_assert_eq!(ds_a, ds_b);
        prop_assert_eq!(rep_a, rep_b);
    }
}

/// Every fault family, applied to every module, is survivable on its own —
/// and at 100% corruption the report still accounts for all modules.
#[test]
fn every_fault_family_is_survivable() {
    for fault in Fault::ALL {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let mut corpus = generate_corpus(4, &mut rng);
        for m in &mut corpus {
            m.source = inject(&m.source, fault, &mut rng);
        }
        let (_, report) = augment(&corpus, &opts(), &mut rng);
        assert!(report.is_conserved(), "{fault}: {report:?}");
        // Corruption may or may not defeat a given stage (e.g. duplicated
        // modules still parse), but accounting always holds and any
        // quarantine carries a non-empty diagnostic.
        for q in &report.quarantines {
            assert!(!q.diagnostic.is_empty(), "{fault}: empty diagnostic");
        }
    }
}

/// Truncation reliably defeats alignment, and the diagnostics are recycled
/// into §3.2-style (broken source → tool report) training pairs.
#[test]
fn truncation_quarantines_and_recycles() {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut corpus = generate_corpus(4, &mut rng);
    for m in &mut corpus {
        // Cut each module roughly in half: no module survives parsing.
        let cut = m.source.len() / 2;
        m.source = inject(
            &m.source,
            Fault::Truncation,
            &mut SmallRng::seed_from_u64(cut as u64),
        );
    }
    let (ds, report) = augment(&corpus, &opts(), &mut rng);
    assert!(report.is_conserved());
    assert!(
        report
            .quarantines
            .iter()
            .any(|q| q.stage == Stage::Alignment),
        "{:?}",
        report.quarantines
    );
    assert!(report.recycled > 0);
    let recycled: Vec<_> = ds
        .entries(TaskKind::VerilogDebug)
        .iter()
        .filter(|e| e.instruct == QUARANTINE_INSTRUCT)
        .collect();
    assert_eq!(recycled.len(), report.recycled);
    for e in &recycled {
        assert!(!e.output.is_empty(), "recycled pair without a diagnostic");
    }
}

/// Backward compatibility: on a clean corpus, `augment` produces exactly
/// the dataset the pre-report pipeline (plain per-stage loop, same RNG
/// draw order) produced, and quarantines nothing.
#[test]
fn clean_corpus_matches_legacy_pipeline_exactly() {
    let opts = opts();
    let mut rng = SmallRng::seed_from_u64(77);
    let corpus = generate_corpus(8, &mut rng);

    let mut rng_new = SmallRng::seed_from_u64(78);
    let (ds_new, report) = augment(&corpus, &opts, &mut rng_new);
    assert!(report.quarantines.is_empty(), "{:?}", report.quarantines);
    assert_eq!(report.recycled, 0);
    assert!(report.is_conserved());

    // The pre-change pipeline, verbatim.
    let mut rng_old = SmallRng::seed_from_u64(78);
    let mut ds_old = Dataset::new();
    for m in &corpus {
        for (k, e) in completion_entries(&m.source, &opts.completion) {
            ds_old.push(k, e);
        }
        for (k, e) in chipdda::core::align::align_entries(&m.source) {
            ds_old.push(k, e);
        }
        let file = format!("{}.v", m.name);
        for (k, e) in repair_entries(
            &file,
            &m.source,
            opts.repairs_per_module,
            &opts.repair,
            &mut rng_old,
        ) {
            ds_old.push(k, e);
        }
    }
    for (k, e) in chipdda::core::edascript::generate_eda_entries(opts.eda_scripts, &mut rng_old) {
        ds_old.push(k, e);
    }
    ds_old.trim_by_token_len(opts.max_entry_tokens);

    assert_eq!(ds_new, ds_old);
}

/// Simulator budgets that only the wall-clock deadline can trip: sim-time
/// and statement ceilings are effectively unlimited.
fn wall_only_opts(deadline: Duration) -> SimOptions {
    SimOptions {
        max_time: u64::MAX / 4,
        max_steps: u64::MAX / 4,
        cancel: CancelToken::with_deadline(deadline),
        ..SimOptions::default()
    }
}

/// Slow-burn and event-livelock corpora are invisible to the step/delta
/// budgets by construction; only the wall-clock deadline stops them. Both
/// families, over several injection seeds, must abort with a
/// `WallTimeout` (not hang, not exhaust a sim budget) within a bounded
/// overshoot of the 2 s deadline.
#[test]
fn wall_deadline_converts_slow_faults_to_timeouts() {
    for fault in [Fault::SlowBurn, Fault::EventLivelock] {
        for seed in [1u64, 7] {
            let src = inject(
                "module chaos_unit;\nendmodule\n",
                fault,
                &mut SmallRng::seed_from_u64(seed),
            );
            let sf = chipdda::verilog::parse(&src).expect("chaos module parses");
            let mut sim = Simulator::new(&sf, "chaos_unit").expect("chaos module elaborates");
            let start = Instant::now();
            let err = sim
                .run(&wall_only_opts(Duration::from_secs(2)))
                .expect_err("must not complete");
            let elapsed = start.elapsed();
            assert_eq!(err.kind, RunErrorKind::WallTimeout, "{fault} seed {seed}");
            assert!(err.is_wall_timeout());
            assert!(
                elapsed >= Duration::from_secs(2),
                "{fault} seed {seed}: finished early ({elapsed:?})"
            );
            assert!(
                elapsed < Duration::from_secs(30),
                "{fault} seed {seed}: deadline overshot ({elapsed:?})"
            );
        }
    }
}

/// A handshake problem whose testbench spans enough simulated time that a
/// livelocked DUT burns minutes of wall-clock before `$finish`.
fn handshake_problem() -> VerilogProblem {
    VerilogProblem {
        id: "chaos_handshake",
        suite: Suite::Thakur,
        module_name: "chaos_unit",
        prompts: vec![String::new()],
        reference: "module chaos_unit(output reg done);\ninitial #5 done = 1;\nendmodule\n",
        testbench: "module tb;\n  wire done;\n  chaos_unit dut(.done(done));\n  initial begin\n    #1000000 $display(\"RESULT %0d 1\", done ? 1 : 0);\n    $finish;\n  end\nendmodule\n",
    }
}

/// End-to-end through the eval harness: under a 2 s deadline the chaos
/// fault families surface as `TestbenchVerdict::Timeout` carrying the
/// wall-clock diagnostic — distinguishable from sim-budget exhaustion —
/// while a clean reference still scores through the same options.
#[test]
fn eval_verdicts_are_wall_timeouts_under_deadline() {
    let p = handshake_problem();
    for fault in [Fault::SlowBurn, Fault::EventLivelock] {
        let generated = inject(p.reference, fault, &mut SmallRng::seed_from_u64(3));
        let v = run_testbench_verdict_with(&p, &generated, &wall_only_opts(Duration::from_secs(2)));
        match &v {
            chipdda::eval::TestbenchVerdict::Timeout(msg) => {
                assert!(msg.contains("wall-clock"), "{fault}: {msg}")
            }
            other => panic!("{fault}: expected Timeout, got {other:?}"),
        }
        assert_eq!(v.pass_rate(), 0.0);
    }
    // Control: the clean reference completes well inside the deadline.
    let v = run_testbench_verdict_with(&p, p.reference, &wall_only_opts(Duration::from_secs(2)));
    assert_eq!(v.pass_rate(), 1.0, "{v:?}");
}

/// The ablation StageSets stay honest under chaos: disabled stages account
/// every module as skipped even when the corpus is corrupted.
#[test]
fn disabled_stages_skip_under_chaos() {
    let mut rng = SmallRng::seed_from_u64(21);
    let corpus = generate_corpus(5, &mut rng);
    let (corpus, _) = chaos_corpus(corpus, 1.0, &mut rng);
    let (_, report) = augment(
        &corpus,
        &PipelineOptions {
            stages: StageSet::GENERAL_AUG,
            ..opts()
        },
        &mut rng,
    );
    assert!(report.is_conserved());
    assert_eq!(report.alignment.skipped, corpus.len());
    assert_eq!(report.repair.skipped, corpus.len());
    assert_eq!(report.eda_script.skipped, 1);
}
