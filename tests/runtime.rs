//! Resume-determinism tests for the supervised engine wiring: a journaled
//! run interrupted at a seeded random unit must resume to output that is
//! byte-identical to an uninterrupted run, for worker counts 1, 2, and 8.

use chipdda::core::json::to_jsonl;
use chipdda::core::pipeline::PipelineOptions;
use chipdda::core::supervised::{augment_supervised, SupervisedOptions};
use chipdda::core::{Dataset, TaskKind};
use chipdda::eval::supervised::{eval_suite_supervised, SweepOptions};
use chipdda::eval::GenProtocol;
use chipdda::runtime::RunOptions;
use chipdda::slm::{Slm, SlmProfile, PROGRESSIVE_ORDER};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dda-int-runtime-{}-{name}", std::process::id()));
    p
}

fn opts() -> PipelineOptions {
    PipelineOptions {
        repairs_per_module: 1,
        eda_scripts: 4,
        ..PipelineOptions::default()
    }
}

/// The dataset flattened to JSONL bytes, task group by task group — the
/// strongest form of the "byte-identical" claim.
fn dataset_bytes(ds: &Dataset) -> String {
    let mut out = String::new();
    for kind in TaskKind::ALL {
        out.push_str(&to_jsonl(ds.entries(kind)));
    }
    out
}

/// Interrupts a journaled augmentation at a seeded random unit k (by
/// truncating the journal to its first k records), resumes with each
/// worker count, and asserts the result is byte-identical to the
/// uninterrupted run.
#[test]
fn interrupted_augmentation_resumes_byte_identical() {
    let corpus = chipdda::corpus::generate_corpus(10, &mut SmallRng::seed_from_u64(31));
    let path = tmp("augment-resume");
    let _ = std::fs::remove_file(&path);

    let journaled = SupervisedOptions {
        journal: Some(path.clone()),
        ..SupervisedOptions::default()
    };
    let (full_ds, full_report, _) = augment_supervised(&corpus, &opts(), &journaled).unwrap();
    let full_journal = std::fs::read_to_string(&path).unwrap();
    let units = full_journal.lines().count();
    assert_eq!(units, corpus.len() + 1, "one journal record per unit");

    for workers in [1usize, 2, 8] {
        // Seeded random interruption point, distinct per worker count.
        let k = SmallRng::seed_from_u64(0xC0DE + workers as u64).gen_range(1..units);
        let kept: Vec<&str> = full_journal.lines().take(k).collect();
        std::fs::write(&path, format!("{}\n", kept.join("\n"))).unwrap();

        let resumed = SupervisedOptions {
            run: RunOptions {
                workers,
                ..RunOptions::default()
            },
            journal: Some(path.clone()),
            resume: true,
            ..SupervisedOptions::default()
        };
        let (ds, report, summary) = augment_supervised(&corpus, &opts(), &resumed).unwrap();
        assert_eq!(summary.resumed, k, "workers={workers}");
        assert_eq!(
            dataset_bytes(&ds),
            dataset_bytes(&full_ds),
            "workers={workers} interrupted at k={k}"
        );
        assert_eq!(report, full_report, "workers={workers}");
    }
    std::fs::remove_file(&path).ok();
}

/// The same property for an eval sweep: interrupt mid-sweep, resume with
/// 1/2/8 workers, identical rows.
#[test]
fn interrupted_eval_sweep_resumes_byte_identical() {
    let model = Slm::finetune(
        SlmProfile::llama2(7.0),
        &chipdda::core::Dataset::new(),
        &PROGRESSIVE_ORDER,
    );
    let problems: Vec<_> = chipdda::benchmarks::thakur_suite()
        .into_iter()
        .take(4)
        .collect();
    let protocol = GenProtocol {
        k: 1,
        ..GenProtocol::default()
    };
    let path = tmp("eval-resume");
    let _ = std::fs::remove_file(&path);

    let journaled = SweepOptions {
        journal: Some(path.clone()),
        ..SweepOptions::default()
    };
    let (full_rows, _) = eval_suite_supervised(&model, &problems, &protocol, &journaled).unwrap();
    let full_journal = std::fs::read_to_string(&path).unwrap();

    for workers in [1usize, 2, 8] {
        let k = SmallRng::seed_from_u64(0xE7A1 + workers as u64).gen_range(1..problems.len());
        let kept: Vec<&str> = full_journal.lines().take(k).collect();
        std::fs::write(&path, format!("{}\n", kept.join("\n"))).unwrap();

        let resumed = SweepOptions {
            run: RunOptions {
                workers,
                ..RunOptions::default()
            },
            journal: Some(path.clone()),
            resume: true,
        };
        let (rows, summary) =
            eval_suite_supervised(&model, &problems, &protocol, &resumed).unwrap();
        assert_eq!(rows, full_rows, "workers={workers} k={k}");
        assert_eq!(summary.resumed, k, "workers={workers}");
    }
    std::fs::remove_file(&path).ok();
}

/// A journal torn mid-record (simulating a crash during a write) is
/// tolerated: the torn tail is dropped and the touched unit re-executes.
#[test]
fn torn_journal_tail_is_tolerated() {
    let corpus = chipdda::corpus::generate_corpus(5, &mut SmallRng::seed_from_u64(9));
    let path = tmp("torn-tail");
    let _ = std::fs::remove_file(&path);
    let journaled = SupervisedOptions {
        journal: Some(path.clone()),
        ..SupervisedOptions::default()
    };
    let (full_ds, ..) = augment_supervised(&corpus, &opts(), &journaled).unwrap();

    // Cut the journal mid-way through its final line.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut cut = text.len() - text.len() / 8;
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    std::fs::write(&path, &text[..cut]).unwrap();

    let resumed = SupervisedOptions {
        journal: Some(path.clone()),
        resume: true,
        ..SupervisedOptions::default()
    };
    let (ds, report, _) = augment_supervised(&corpus, &opts(), &resumed).unwrap();
    assert_eq!(dataset_bytes(&ds), dataset_bytes(&full_ds));
    assert!(report.is_conserved());
    std::fs::remove_file(&path).ok();
}
