//! Cross-crate integration tests: each drives a full user scenario through
//! the public API (corpus → augmentation → finetune → generate → EDA-tool
//! verification), the way the examples do, with assertions.

use chipdda::core::align::ALIGN_INSTRUCT;
use chipdda::core::edascript::EDA_INSTRUCT;
use chipdda::core::pipeline::{augment, PipelineOptions, StageSet};
use chipdda::core::repair::{break_verilog, RepairOptions, REPAIR_INSTRUCT};
use chipdda::core::{Dataset, TaskKind};
use chipdda::slm::{GenOptions, Slm, SlmProfile, PROGRESSIVE_ORDER};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn trained_model(modules: usize, seed: u64) -> (Slm, Dataset) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let corpus = chipdda::corpus::generate_corpus(modules, &mut rng);
    let (data, report) = augment(&corpus, &PipelineOptions::default(), &mut rng);
    assert!(report.is_conserved());
    let model = Slm::finetune(
        SlmProfile {
            name: format!("it-model-{seed}"),
            ..SlmProfile::llama2(13.0)
        },
        &data,
        &PROGRESSIVE_ORDER,
    );
    (model, data)
}

#[test]
fn corpus_to_generation_round_trip() {
    let (model, _) = trained_model(96, 41);
    let mut rng = SmallRng::seed_from_u64(5);
    let prompt = "A 4-bit counter with synchronous reset that wraps from 11 back to 0.\n\
                  Module name: counter_12\n\
                  Ports: input clk, input rst, output reg [3:0] count\n";
    // Across a pass@5 budget the model must produce at least one
    // syntactically clean counter named per the request.
    let mut clean = 0;
    let mut named = 0;
    for _ in 0..5 {
        let out = model.generate(ALIGN_INSTRUCT, prompt, &GenOptions::default(), &mut rng);
        if chipdda::lint::check_source("g.v", &out).is_clean() {
            clean += 1;
        }
        if out.contains("module counter_12") {
            named += 1;
        }
    }
    assert!(clean >= 3, "only {clean}/5 lint-clean generations");
    assert!(named >= 3, "only {named}/5 honoured the module name");
}

#[test]
fn generated_designs_simulate_under_real_testbenches() {
    let (model, _) = trained_model(96, 41);
    let suite = chipdda::benchmarks::thakur_suite();
    let mut rng = SmallRng::seed_from_u64(9);
    // The easy basics should be solvable within pass@5 on the high-detail
    // prompt by a fully-trained 13B-profile model.
    let mut solved = 0;
    for id in ["basic1", "basic2", "basic4"] {
        let p = suite.iter().find(|p| p.id == id).expect("suite id");
        let prompt = &p.prompts[2];
        for _ in 0..5 {
            let out = model.generate(ALIGN_INSTRUCT, prompt, &GenOptions::default(), &mut rng);
            if chipdda::eval::run_testbench(p, &out) >= 1.0 {
                solved += 1;
                break;
            }
        }
    }
    assert!(solved >= 2, "only {solved}/3 basics solved");
}

#[test]
fn repair_closes_the_tool_feedback_loop() {
    let (model, _) = trained_model(64, 7);
    let suite = chipdda::benchmarks::rtllm_suite();
    let p = suite.iter().find(|p| p.id == "adder_16bit").expect("id");
    let mut rng = SmallRng::seed_from_u64(3);
    // Break → feedback → repair → verify, over a few injections.
    let mut lint_clean = 0;
    let mut functional = 0;
    let mut tried = 0;
    while tried < 5 {
        let Some(b) = break_verilog(p.reference, &RepairOptions::default(), &mut rng) else {
            continue;
        };
        let file = format!("{}.v", p.id);
        let report = chipdda::lint::check_source(&file, &b.source);
        if report.is_clean() {
            continue;
        }
        tried += 1;
        let input = format!("{}, {}", report.render().trim_end(), b.source);
        for _ in 0..3 {
            let fixed = model.generate(REPAIR_INSTRUCT, &input, &GenOptions::default(), &mut rng);
            if chipdda::lint::check_source(&file, &fixed).is_clean() {
                lint_clean += 1;
                if chipdda::eval::run_testbench(p, &fixed) >= 1.0 {
                    functional += 1;
                }
                break;
            }
        }
    }
    // Syntactic repair should usually succeed; functional repair fails when
    // the injected fault was semantically invisible (the paper's Table 3
    // shows the same gap).
    assert!(
        lint_clean >= 3,
        "only {lint_clean}/{tried} lint-clean repairs"
    );
    assert!(functional >= 1, "no injection repaired to full function");
}

#[test]
fn eda_script_agent_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut data = Dataset::new();
    for (k, e) in chipdda::core::edascript::generate_eda_entries(200, &mut rng) {
        data.push(k, e);
    }
    let model = Slm::finetune(SlmProfile::llama2(13.0), &data, &PROGRESSIVE_ORDER);
    for task in chipdda::benchmarks::sc_suite() {
        let mut ok = false;
        for _ in 0..3 {
            let script =
                model.generate(EDA_INSTRUCT, &task.prompt, &GenOptions::default(), &mut rng);
            if task.check_function(&script) {
                // The simulated flow accepts it too.
                let parsed = chipdda::scscript::parse(&script).expect("function implies parse");
                assert!(chipdda::scscript::simulate_flow(&parsed).is_some());
                ok = true;
                break;
            }
        }
        assert!(ok, "task {} not solved in 3 tries", task.level.label());
    }
}

#[test]
fn dataset_jsonl_round_trips_at_scale() {
    let (_, data) = trained_model(48, 21);
    for kind in TaskKind::ALL {
        let entries = data.entries(kind);
        let text = chipdda::core::json::to_jsonl(entries);
        let back = chipdda::core::json::from_jsonl(&text).expect("round trip parses");
        assert_eq!(back.len(), entries.len(), "{kind}");
        assert_eq!(back.as_slice(), entries, "{kind}");
    }
}

#[test]
fn stage_ablation_ordering_is_emergent() {
    // §4.2.2's claim at integration level: with the same corpus, alignment
    // data buys NL skill that completion-only training does not.
    let mut rng = SmallRng::seed_from_u64(31);
    let corpus = chipdda::corpus::generate_corpus(64, &mut rng);
    let mut r1 = SmallRng::seed_from_u64(32);
    let (full, _) = augment(&corpus, &PipelineOptions::default(), &mut r1);
    let mut r2 = SmallRng::seed_from_u64(32);
    let (general, _) = augment(
        &corpus,
        &PipelineOptions {
            stages: StageSet::GENERAL_AUG,
            ..PipelineOptions::default()
        },
        &mut r2,
    );
    let m_full = Slm::finetune(SlmProfile::llama2(13.0), &full, &PROGRESSIVE_ORDER);
    let m_general = Slm::finetune(SlmProfile::llama2(13.0), &general, &PROGRESSIVE_ORDER);
    assert!(m_full.skills().nl > m_general.skills().nl + 0.3);
    assert!(m_full.skills().repair > m_general.skills().repair + 0.2);
    assert!(m_full.skills().eda > m_general.skills().eda + 0.5);
}

#[test]
fn benchmark_references_all_verified() {
    // Every shipped reference implementation passes its own testbench —
    // the ground truth behind Tables 3 and 5.
    let mut all: Vec<_> = chipdda::benchmarks::thakur_suite();
    all.extend(chipdda::benchmarks::rtllm_suite());
    for p in &all {
        assert!(
            chipdda::lint::check_source(p.id, p.reference).is_clean(),
            "{} reference does not lint",
            p.id
        );
        let rate = chipdda::eval::run_testbench(p, p.reference);
        assert!(
            (rate - 1.0).abs() < 1e-9,
            "{} reference scores {rate} on its own testbench",
            p.id
        );
    }
}
